"""Table 2 — constraint parameters used during threshold extraction.

Static by design: the values are the paper's, and the experiment
verifies their intended qualitative behaviour — the default leaves the
LUTs uncut, tighter values cut progressively more.
"""

from __future__ import annotations

from repro.core.methods import DEFAULT_BOUNDS, SWEEP_VALUES
from repro.core.tuner import LibraryTuner
from repro.experiments.base import ExperimentContext, ExperimentResult


def _mean_window_fraction(result, library) -> float:
    """Average usable LUT-area fraction across pins (1.0 = untouched)."""
    from repro.core.restriction import pin_equivalent_sigma

    total, count = 0.0, 0
    for (cell_name, pin_name), window in result.windows.items():
        equivalent = pin_equivalent_sigma(library.cell(cell_name).pin(pin_name))
        count += 1
        if window is None:
            continue
        rows = (
            (equivalent.index_1 >= window.min_slew)
            & (equivalent.index_1 <= window.max_slew)
        ).sum()
        cols = (
            (equivalent.index_2 >= window.min_load)
            & (equivalent.index_2 <= window.max_load)
        ).sum()
        total += rows * cols / equivalent.values.size
    return total / count


def run(context: ExperimentContext) -> ExperimentResult:
    """Build this experiment's rows (see the module docstring)."""
    library = context.flow.statistical_library
    tuner = LibraryTuner(library)
    rows = []
    for kind, method in (
        ("load_slope", "cell_load_slope"),
        ("slew_slope", "cell_slew_slope"),
        ("sigma_ceiling", "sigma_ceiling"),
    ):
        for value in SWEEP_VALUES[kind]:
            result = tuner.tune(method, value)
            rows.append({
                "bound": kind,
                "value": value,
                "default": DEFAULT_BOUNDS[kind],
                "usable_lut_fraction": round(
                    _mean_window_fraction(result, library), 3
                ),
                "cells_excluded": len(result.excluded_cells),
            })
    return ExperimentResult(
        experiment_id="table2",
        title="Constraint parameters (paper Table 2) and their bite",
        rows=rows,
        notes=(
            "defaults (load 1 / slew 0.06 / ceiling 100) leave LUTs "
            "essentially uncut; tighter values remove progressively more"
        ),
    )
