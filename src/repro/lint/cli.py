"""The ``python -m repro lint`` subcommand.

Thin orchestration over the engine: discover files, run the default
rules, reconcile against the committed baseline, render console or
JSON output, and turn the result into an exit code —

* ``0`` — no findings beyond the baseline;
* ``1`` — new findings (the CI-failing case);
* ``2`` — the lint run itself could not proceed (bad path, malformed
  baseline).

``--update-baseline`` rewrites the baseline from the current findings
instead of failing on them — the ratchet's one sanctioned way down —
and reports how many entries the update added or retired.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.errors import LintError
from repro.lint.baseline import BASELINE_FILENAME, Baseline, write_baseline
from repro.lint.engine import LintEngine
from repro.lint.findings import Finding
from repro.lint.graph.cache import GraphBuildReport, build_graph_cached
from repro.lint.graph.layers import load_graph_settings
from repro.lint.graph.rules import graph_rule_catalog, run_graph_rules
from repro.lint.rules import DEFAULT_RULES, rule_catalog
from repro.lint.sarif import render_sarif_text


def default_lint_paths(root: Path) -> List[Path]:
    """What to lint when no paths are given: the ``src`` tree if the
    working directory is a checkout, else the installed package."""
    source_tree = root / "src"
    if source_tree.is_dir():
        return [source_tree]
    import repro

    return [Path(repro.__file__).parent]


def render_console(
    new: Sequence[Finding],
    baselined: Sequence[Finding],
    n_files: int,
    baseline_path: Optional[Path],
) -> str:
    """The human-facing report: one line per new finding + a summary."""
    lines = [finding.to_text() for finding in new]
    summary = (
        f"lint: {n_files} files, {len(new)} new finding"
        f"{'s' if len(new) != 1 else ''}"
    )
    if baselined:
        summary += (
            f", {len(baselined)} baselined ({baseline_path})"
        )
    lines.append(summary)
    return "\n".join(lines)


def _finding_sort_key(finding: Finding) -> tuple:
    return (finding.path, finding.line, finding.rule_id, finding.column,
            finding.message)


def render_json(
    new: Sequence[Finding],
    baselined: Sequence[Finding],
    n_files: int,
    with_graph_rules: bool = False,
) -> str:
    """The machine-facing report (the CI artifact format).

    Byte-deterministic: findings sorted by ``(path, line, rule)``,
    stable key order, trailing newline — two runs over identical
    sources produce identical bytes, so CI artifact diffs are real.
    """
    new = sorted(new, key=_finding_sort_key)
    baselined = sorted(baselined, key=_finding_sort_key)
    per_rule: dict = {}
    for finding in new:
        per_rule[finding.rule_id] = per_rule.get(finding.rule_id, 0) + 1
    rules = rule_catalog()
    if with_graph_rules:
        rules = rules + graph_rule_catalog()
    payload = {
        "version": 1,
        "rules": rules,
        "findings": [finding.to_payload() for finding in new],
        "baselined": [finding.to_payload() for finding in baselined],
        "summary": {
            "files": n_files,
            "new": len(new),
            "baselined": len(baselined),
            "per_rule": dict(sorted(per_rule.items())),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _render_rule_list() -> str:
    lines = []
    for rule in rule_catalog() + graph_rule_catalog():
        lines.append(f"{rule['id']}  {rule['title']} [{rule['severity']}]")
        lines.append(f"    why: {rule['rationale']}")
        lines.append(f"    fix: {rule['hint']}")
    return "\n".join(lines)


def run_lint_command(args: argparse.Namespace) -> int:
    """Execute the lint subcommand; returns the process exit code."""
    if getattr(args, "list_rules", False):
        print(_render_rule_list())
        return 0
    root = Path.cwd()
    paths = [Path(p) for p in (args.paths or [])]
    if not paths:
        paths = default_lint_paths(root)
    missing = [str(path) for path in paths if not path.exists()]
    if missing:
        print(f"lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    engine = LintEngine(DEFAULT_RULES)
    findings, n_files = engine.lint_paths(paths, root=root)

    use_graph = bool(getattr(args, "graph", False))
    graph_report: Optional[GraphBuildReport] = None
    graph_summary = ""
    if use_graph:
        settings = load_graph_settings(root / "pyproject.toml")
        graph, graph_report = build_graph_cached(paths, root=root)
        findings = sorted(findings + run_graph_rules(graph, settings))
        graph_summary = (
            f"lint: graph {len(graph.modules)} modules, "
            f"{len(graph.functions)} functions "
            f"({'cache hit' if graph_report.from_cache else 'built'}, "
            f"tree {graph_report.digest[:12]})"
        )

    baseline_path: Optional[Path] = (
        Path(args.baseline) if args.baseline else None
    )
    if baseline_path is None and (root / BASELINE_FILENAME).is_file():
        baseline_path = root / BASELINE_FILENAME

    if getattr(args, "update_baseline", False):
        target = baseline_path or root / BASELINE_FILENAME
        try:
            previous = Baseline.load(target)
        except LintError:
            previous = Baseline.empty()
        for key, count in previous.stale_entries(findings):
            rule_id, path, message = key
            print(
                f"lint: retiring stale baseline entry {rule_id} "
                f"{path} (x{count}): {message}"
            )
        summary = write_baseline(target, findings)
        print(
            f"lint: baseline rewritten with {summary['entries']} entries "
            f"(was {len(previous)}) -> {target}"
        )
        return 0

    try:
        baseline = (
            Baseline.load(baseline_path)
            if baseline_path is not None
            else Baseline.empty()
        )
    except LintError as error:
        print(f"lint: {error}", file=sys.stderr)
        return 2
    new, baselined = baseline.partition(findings)

    if args.format == "json":
        sys.stdout.write(
            render_json(new, baselined, n_files, with_graph_rules=use_graph)
        )
    elif args.format == "sarif":
        catalog = rule_catalog()
        if use_graph:
            catalog = catalog + graph_rule_catalog()
        sys.stdout.write(render_sarif_text(new, baselined, catalog=catalog))
    else:
        print(render_console(new, baselined, n_files, baseline_path))
        if graph_summary:
            print(graph_summary)
        stale = baseline.stale_count(findings)
        if stale:
            print(
                f"lint: {stale} baseline entries no longer match — run "
                "with --update-baseline to ratchet the debt down"
            )
    return 1 if new else 0


def configure_lint_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the lint subcommand's arguments to ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the src tree)",
    )
    parser.add_argument(
        "--format",
        choices=("console", "json", "sarif"),
        default="console",
        help="output format (json is the CI artifact shape; sarif is "
        "what GitHub code scanning ingests)",
    )
    parser.add_argument(
        "--graph",
        action="store_true",
        help="also run the whole-program rules (ASYNC001/LOCK001/"
        "DET003/ARCH001) on a single parse of the whole tree",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=f"baseline file (default: {BASELINE_FILENAME} beside the "
        "working directory when present)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings "
        "(deterministic: sorted entries, stable paths)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog (id, rationale, fix hint) and exit",
    )
