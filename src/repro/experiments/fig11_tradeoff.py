"""Fig. 11 — sigma decrease vs area increase across sigma-ceiling
bounds.

"The figure shows a clear tradeoff between sigma reduction and area
increase": tightening the ceiling buys more sigma reduction at an
increasing area price.

Operating point: the paper sweeps at its high-performance clock
(2.41 ns); our default is the *medium* point, where every Table 2
ceiling stays synthesizable on the surrogate — the quick-scale minimum
period is proportionally tighter than the paper's, leaving the
over-tight ceilings infeasible right at the minimum (they are still
reported, marked ``met=False``, when a caller requests the high point).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.methods import SWEEP_VALUES
from repro.experiments.base import ExperimentContext, ExperimentResult


def run(
    context: ExperimentContext,
    period: Optional[float] = None,
    ceilings: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """Build this experiment's rows (see the module docstring)."""
    flow = context.flow
    clock = period if period is not None else context.standard_periods()["medium"]
    values = list(ceilings) if ceilings is not None else list(
        SWEEP_VALUES["sigma_ceiling"]
    )
    rows = []
    for ceiling in values:
        comparison = flow.compare(clock, "sigma_ceiling", ceiling)
        rows.append({
            "ceiling_ns": ceiling,
            "met": comparison.tuned_met,
            "sigma_reduction": round(comparison.sigma_reduction, 3),
            "area_increase": round(comparison.area_increase, 3),
            "sigma_ns": round(comparison.tuned_sigma, 4),
            "area_um2": round(comparison.tuned_area, 0),
        })
    feasible = [r for r in rows if r["met"]]
    ordered = sorted(feasible, key=lambda r: -r["ceiling_ns"])
    reductions = [r["sigma_reduction"] for r in ordered]
    areas = [r["area_increase"] for r in ordered]
    tradeoff = (
        len(ordered) >= 2
        and reductions[-1] > reductions[0]
        and areas[-1] > areas[0]
    )
    return ExperimentResult(
        experiment_id="fig11",
        title=f"Sigma-ceiling tradeoff at {clock:g} ns",
        rows=rows,
        notes=(
            f"tighter ceiling -> more sigma reduction at more area: {tradeoff} "
            "(the paper's Fig. 11 tradeoff)"
        ),
    )
