"""Trace analytics, ledger trend reports and the regression gate.

Three read-side tools over the observability data the rest of the
package produces:

* **Trace summarize** (:func:`summarize_trace`) — collapse a JSONL
  trace into per-*span-path* aggregates (``experiment.fig10/stage.
  synth`` style paths, call counts, wall/CPU totals), the flat view
  that diffs well.
* **Trace diff** (:func:`diff_traces`) — align two traces by span
  path and flag wall-time growth beyond a relative threshold and an
  absolute floor; the CLI exits nonzero when regressions are found,
  so two traces of the same warm run gate a perf-sensitive change.
* **Ledger report and check** (:func:`render_report`,
  :func:`check_record`) — the longitudinal dashboard over
  :mod:`repro.observe.ledger` records and the baseline comparison
  behind ``python -m repro check``: every baseline metric must match
  the latest matching run within ``rtol``/``atol``, and optional
  per-stage wall-time budgets must hold.

All three are pure functions over parsed data — nothing here writes.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.observe.export import Trace
from repro.observe.ledger import RunRecord

#: Default relative wall-time growth tolerated by ``trace diff``.
DIFF_RTOL = 0.25

#: Default absolute wall-time growth (seconds) below which ``trace
#: diff`` never flags — jitter on sub-50ms spans is not a regression.
DIFF_MIN_SECONDS = 0.05

#: Default relative tolerance of the metrics regression gate.
CHECK_RTOL = 0.05

#: Default absolute tolerance of the metrics regression gate.
CHECK_ATOL = 1e-9


# ----------------------------------------------------------------------
# Span-path aggregation
# ----------------------------------------------------------------------


@dataclass
class PathStats:
    """Aggregate of every span sharing one root-to-name path."""

    path: str
    count: int = 0
    wall: float = 0.0
    cpu: float = 0.0
    unfinished: int = 0

    def add(self, span: Dict[str, Any]) -> None:
        """Fold one span record in; spans without a recorded wall time
        (unfinished) are counted but contribute no seconds."""
        wall = span.get("wall")
        self.count += 1
        if isinstance(wall, (int, float)):
            self.wall += wall
        else:
            self.unfinished += 1
        self.cpu += span.get("cpu") or 0.0


def aggregate_paths(spans: Sequence[Dict[str, Any]]) -> Dict[str, PathStats]:
    """Fold spans into per-path aggregates.

    A span's path is its ancestor chain of names joined with ``/``;
    spans whose parent record is missing (orphans from a killed
    writer) root their own path.  Sibling spans sharing a name merge —
    the flat shape that aligns across runs regardless of worker
    scheduling.
    """
    by_id = {
        span.get("id"): span for span in spans if span.get("id") is not None
    }
    paths: Dict[Any, str] = {}

    def path_of(span: Dict[str, Any]) -> str:
        span_id = span.get("id")
        if span_id in paths:
            return paths[span_id]
        chain: List[str] = []
        cursor = span
        seen = set()
        while cursor is not None and len(chain) < 64:
            cursor_id = cursor.get("id")
            if cursor_id in seen:
                break  # malformed cycle: stop rather than spin
            seen.add(cursor_id)
            chain.append(cursor.get("name", "?"))
            cursor = by_id.get(cursor.get("parent"))
        path = "/".join(reversed(chain))
        if span_id is not None:
            paths[span_id] = path
        return path

    aggregates: Dict[str, PathStats] = {}
    for span in spans:
        path = path_of(span)
        aggregates.setdefault(path, PathStats(path)).add(span)
    return aggregates


def summarize_trace(trace: Trace, top: int = 40) -> str:
    """The flat per-path table of one trace (plus counters).

    Sorted by total wall time; a file holding several interleaved
    trace ids (an appending exporter on a recycled path) is called out
    rather than silently summed.
    """
    lines: List[str] = []
    if len(trace.trace_ids) > 1:
        lines.append(
            f"warning: file holds {len(trace.trace_ids)} interleaved traces "
            "(appending exporter on a recycled path?)"
        )
    aggregates = sorted(
        aggregate_paths(trace.spans).values(), key=lambda s: -s.wall
    )
    total = sum(s.wall for s in aggregates if "/" not in s.path)
    lines.append(
        f"trace: {len(trace.spans)} spans over {len(aggregates)} paths, "
        f"{total:.3f}s at the root"
    )
    lines.append(f"{'path':<56s} {'calls':>6s} {'wall':>10s} {'cpu':>10s}")
    for stats in aggregates[:top]:
        marker = " [unfinished]" if stats.unfinished else ""
        lines.append(
            f"{stats.path + marker:<56s} {stats.count:>6d} "
            f"{stats.wall:9.3f}s {stats.cpu:9.3f}s"
        )
    if len(aggregates) > top:
        lines.append(f"... {len(aggregates) - top} more paths")
    if trace.counters:
        lines.append("counters:")
        for name in sorted(trace.counters):
            lines.append(f"  {name:<54s} {trace.counters[name]:>12g}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Trace diff
# ----------------------------------------------------------------------


@dataclass
class PathDelta:
    """Wall-time movement of one span path between two traces."""

    path: str
    count_a: int
    count_b: int
    wall_a: float
    wall_b: float

    @property
    def delta(self) -> float:
        return self.wall_b - self.wall_a

    @property
    def ratio(self) -> float:
        """Growth factor; new paths (``wall_a == 0``) read as ``inf``."""
        if self.wall_a <= 0:
            return float("inf") if self.wall_b > 0 else 1.0
        return self.wall_b / self.wall_a


@dataclass
class TraceDiff:
    """All path deltas of one comparison plus the flagged subset."""

    deltas: List[PathDelta] = field(default_factory=list)
    regressions: List[PathDelta] = field(default_factory=list)
    rtol: float = DIFF_RTOL
    min_seconds: float = DIFF_MIN_SECONDS

    def to_text(self, top: int = 25) -> str:
        """Console table: largest movements first, regressions marked."""
        flagged = {id(d) for d in self.regressions}
        ordered = sorted(self.deltas, key=lambda d: -abs(d.delta))
        lines = [
            f"{len(self.deltas)} aligned paths, "
            f"{len(self.regressions)} regressions "
            f"(rtol {self.rtol:g}, floor {self.min_seconds:g}s)",
            f"{'path':<56s} {'wall a':>10s} {'wall b':>10s} {'delta':>10s}",
        ]
        for delta in ordered[:top]:
            marker = "  << regression" if id(delta) in flagged else ""
            lines.append(
                f"{delta.path:<56s} {delta.wall_a:9.3f}s {delta.wall_b:9.3f}s "
                f"{delta.delta:+9.3f}s{marker}"
            )
        if len(ordered) > top:
            lines.append(f"... {len(ordered) - top} more paths")
        return "\n".join(lines)


def diff_traces(
    a: Trace,
    b: Trace,
    rtol: float = DIFF_RTOL,
    min_seconds: float = DIFF_MIN_SECONDS,
) -> TraceDiff:
    """Align two traces by span path and flag wall-time regressions.

    A path regresses when its total wall time in ``b`` exceeds the
    time in ``a`` by both the relative threshold *and* the absolute
    floor — the floor keeps scheduler jitter on fast spans from
    failing a gate.  Paths only in ``b`` regress when they cost more
    than the floor; paths only in ``a`` (work that disappeared) never
    regress.
    """
    paths_a = aggregate_paths(a.spans)
    paths_b = aggregate_paths(b.spans)
    diff = TraceDiff(rtol=rtol, min_seconds=min_seconds)
    for path in sorted(set(paths_a) | set(paths_b)):
        stats_a = paths_a.get(path)
        stats_b = paths_b.get(path)
        delta = PathDelta(
            path=path,
            count_a=stats_a.count if stats_a else 0,
            count_b=stats_b.count if stats_b else 0,
            wall_a=stats_a.wall if stats_a else 0.0,
            wall_b=stats_b.wall if stats_b else 0.0,
        )
        diff.deltas.append(delta)
        grew = delta.delta >= min_seconds
        if grew and (delta.wall_a <= 0 or delta.ratio > 1 + rtol):
            diff.regressions.append(delta)
    return diff


# ----------------------------------------------------------------------
# Ledger report
# ----------------------------------------------------------------------


def _when(timestamp: float) -> str:
    return time.strftime("%Y-%m-%d %H:%M", time.localtime(timestamp))


def render_report(
    records: Sequence[RunRecord],
    last: Optional[int] = None,
    trend_limit: int = 8,
) -> str:
    """The markdown dashboard over ledger records.

    One section per (experiment, scale): a run table (id, when, wall,
    stage seconds, store hit rate) and, when the group holds at least
    two runs, the metric and stage-time movements from the group's
    first to its latest record — largest relative movers first,
    stable metrics summarized in one line.
    """
    if not records:
        return "run ledger: empty (run an experiment first)"
    groups: Dict[tuple, List[RunRecord]] = {}
    for record in records:
        groups.setdefault((record.experiment, record.scale), []).append(record)
    lines = [f"# repro run ledger — {len(records)} records"]
    for (experiment, scale), group in sorted(groups.items()):
        shown = group[-last:] if last else group
        lines.append("")
        lines.append(f"## {experiment} @ {scale} — {len(group)} runs")
        lines.append("")
        lines.append("| run | when | wall | stages | hit rate |")
        lines.append("|---|---|---:|---:|---:|")
        for record in shown:
            rate = record.hit_rate()
            lines.append(
                f"| {record.run_id} | {_when(record.timestamp)} "
                f"| {record.wall:.2f}s | {record.stage_seconds():.2f}s "
                f"| {'-' if rate is None else f'{rate:.0%}'} |"
            )
        if len(shown) < 2:
            continue
        first, latest = shown[0], shown[-1]
        movers: List[tuple] = []
        stable = 0
        for name in sorted(set(first.metrics) & set(latest.metrics)):
            was, now = first.metrics[name], latest.metrics[name]
            scale_ref = max(abs(was), abs(now), 1e-12)
            rel = abs(now - was) / scale_ref
            if rel < 1e-9:
                stable += 1
            else:
                movers.append((rel, name, was, now))
        movers.sort(reverse=True)
        lines.append("")
        lines.append(
            f"metric movement, run {first.run_id} -> {latest.run_id}: "
            f"{stable} unchanged, {len(movers)} moved"
        )
        for rel, name, was, now in movers[:trend_limit]:
            lines.append(f"- `{name}`: {was:g} -> {now:g} ({rel:+.2%})")
        if len(movers) > trend_limit:
            lines.append(f"- ... {len(movers) - trend_limit} more")
        stage_lines = []
        for stage in sorted(set(first.stages) & set(latest.stages)):
            was = float(first.stages[stage].get("seconds", 0.0))
            now = float(latest.stages[stage].get("seconds", 0.0))
            stage_lines.append(f"{stage} {was:.2f}s->{now:.2f}s")
        if stage_lines:
            lines.append("stage seconds: " + ", ".join(stage_lines))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Baseline gate
# ----------------------------------------------------------------------


def load_baseline(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a committed baseline file (plain JSON)."""
    with open(path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    if not isinstance(baseline, dict) or "metrics" not in baseline:
        raise ValueError(f"not a baseline file (no 'metrics'): {path}")
    return baseline


def baseline_from_record(
    record: RunRecord,
    rtol: float = CHECK_RTOL,
    atol: Optional[float] = None,
    stage_budget_factor: Optional[float] = None,
) -> Dict[str, Any]:
    """A fresh baseline payload from a ledger record.

    This is the refresh path: after an intentional metrics change,
    rewrite the committed baseline from the latest good run.  With
    ``stage_budget_factor`` set, per-stage wall budgets are derived as
    ``factor x`` the record's stage seconds (headroom against host
    noise); without it no time budgets are emitted.
    """
    baseline: Dict[str, Any] = {
        "version": 1,
        "experiment": record.experiment,
        "scale": record.scale,
        "rtol": rtol,
        "metrics": dict(sorted(record.metrics.items())),
    }
    if atol is not None:
        baseline["atol"] = atol
    if stage_budget_factor is not None:
        baseline["stage_budget_seconds"] = {
            stage: round(
                max(1.0, stage_budget_factor * float(agg.get("seconds", 0.0))),
                2,
            )
            for stage, agg in sorted(record.stages.items())
        }
    return baseline


def check_record(
    record: RunRecord,
    baseline: Dict[str, Any],
    rtol: Optional[float] = None,
    atol: Optional[float] = None,
) -> List[str]:
    """Violations of a run against a baseline (empty = gate passes).

    Every baseline metric must exist in the record and match within
    ``rtol``/``atol`` (CLI override > baseline file > defaults); every
    stage named in ``stage_budget_seconds`` must have resolved within
    its wall-time budget.  Metrics the record has but the baseline
    does not are ignored — new columns must not fail old baselines.
    """
    rtol = rtol if rtol is not None else float(baseline.get("rtol", CHECK_RTOL))
    atol = atol if atol is not None else float(baseline.get("atol", CHECK_ATOL))
    violations: List[str] = []
    for name, expected in sorted(baseline.get("metrics", {}).items()):
        expected = float(expected)
        actual = record.metrics.get(name)
        if actual is None:
            violations.append(f"metric missing from run: {name}")
            continue
        if abs(actual - expected) > rtol * abs(expected) + atol:
            violations.append(
                f"metric drift: {name} = {actual:g}, "
                f"baseline {expected:g} (rtol {rtol:g})"
            )
    for stage, budget in sorted(
        baseline.get("stage_budget_seconds", {}).items()
    ):
        budget = float(budget)
        spent = float(record.stages.get(stage, {}).get("seconds", 0.0))
        if spent > budget:
            violations.append(
                f"stage over budget: {stage} took {spent:.2f}s "
                f"(budget {budget:.2f}s)"
            )
    return violations
