"""Ablation: literal Algorithm 1 vs the summed-area-table version.

The paper ships the quadruple-loop pseudo-code; this bench shows the
optimized implementation returns identical rectangles while scaling to
larger LUT grids.
"""

import numpy as np
import pytest

from repro.core.rectangle import largest_rectangle, largest_rectangle_paper


def _matrices(size, count=24, seed=6):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        sigma = np.add.outer(rng.random(size).cumsum(), rng.random(size).cumsum())
        out.append(sigma <= rng.uniform(sigma.min(), sigma.max()))
    return out


@pytest.mark.parametrize("size", [7, 12])
def test_optimized_equals_literal(size):
    for matrix in _matrices(size):
        assert largest_rectangle(matrix) == largest_rectangle_paper(matrix)


def test_ablation_rectangle_optimized(benchmark):
    matrices = _matrices(12)

    def run_all():
        return [largest_rectangle(m) for m in matrices]

    results = benchmark(run_all)
    assert all(r is not None for r in results)


def test_ablation_rectangle_literal_algorithm1(benchmark):
    matrices = _matrices(12)

    def run_all():
        return [largest_rectangle_paper(m) for m in matrices]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert all(r is not None for r in results)
