"""Bench: Fig. 13 — path sigma vs path depth."""

from conftest import show

from repro.experiments import fig13_sigma_vs_depth


def test_fig13_sigma_vs_depth(benchmark, context):
    result = benchmark.pedantic(
        fig13_sigma_vs_depth.run, args=(context,), rounds=1, iterations=1
    )
    show(result)
    baseline = [r for r in result.rows if r["design"] == "baseline"]
    tuned = [r for r in result.rows if r["design"] == "tuned"]
    assert baseline and tuned
    # paper's point: depth does not dictate sigma — paths of the same
    # depth spread widely in sigma
    spreads = [
        r["sigma_max"] - r["sigma_min"] for r in baseline if r["n_paths"] >= 3
    ]
    overall = max(r["sigma_max"] for r in baseline) - min(
        r["sigma_min"] for r in baseline
    )
    assert spreads and max(spreads) > 0.15 * overall
    # tuning lowers the sigma landscape overall
    base_worst = max(r["sigma_max"] for r in baseline)
    tuned_worst = max(r["sigma_max"] for r in tuned)
    assert tuned_worst <= base_worst
