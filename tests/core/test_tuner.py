"""Tuning methods and end-to-end tuner (paper Sec. VI + Table 2)."""

import math

import pytest

from repro.core.methods import (
    DEFAULT_BOUNDS,
    SWEEP_VALUES,
    TUNING_METHODS,
    method_by_name,
)
from repro.core.tuner import LibraryTuner
from repro.errors import TuningError


class TestMethods:
    def test_five_methods(self):
        assert len(TUNING_METHODS) == 5

    def test_paper_names(self):
        assert (
            method_by_name("sigma_ceiling").paper_name
            == "Cell based sigma ceiling"
        )
        assert "strength" in method_by_name("cell_strength_load_slope").paper_name.lower()

    def test_table2_defaults(self):
        assert DEFAULT_BOUNDS == {
            "load_slope": 1.0,
            "slew_slope": 0.06,
            "sigma_ceiling": 100.0,
        }

    def test_table2_sweeps(self):
        assert SWEEP_VALUES["load_slope"] == (1.0, 0.05, 0.03, 0.01)
        assert SWEEP_VALUES["slew_slope"] == (1.0, 0.05, 0.03, 0.01)
        assert SWEEP_VALUES["sigma_ceiling"] == (0.04, 0.03, 0.02, 0.01)

    def test_bounds_substitution(self):
        method = method_by_name("cell_load_slope")
        bounds = method.bounds(0.03)
        assert bounds == {"load_slope": 0.03, "slew_slope": 0.06, "sigma_ceiling": 100.0}

    def test_only_swept_bound_changes(self):
        method = method_by_name("cell_strength_slew_slope")
        bounds = method.bounds(0.01)
        assert bounds["slew_slope"] == 0.01
        assert bounds["load_slope"] == DEFAULT_BOUNDS["load_slope"]

    def test_invalid_parameter_rejected(self):
        with pytest.raises(TuningError):
            method_by_name("sigma_ceiling").bounds(-0.1)

    def test_unknown_method_rejected(self):
        with pytest.raises(TuningError):
            method_by_name("magic")


class TestLibraryTuner:
    def test_requires_statistical_library(self, nominal_library):
        with pytest.raises(TuningError):
            LibraryTuner(nominal_library)

    def test_windows_cover_every_output_pin(self, statistical_library):
        tuner = LibraryTuner(statistical_library)
        result = tuner.tune("sigma_ceiling", 0.02)
        expected = {
            (cell.name, pin.name)
            for cell in statistical_library
            for pin in cell.output_pins()
        }
        assert set(result.windows) == expected

    def test_ceiling_threshold_is_global(self, statistical_library):
        result = LibraryTuner(statistical_library).tune("sigma_ceiling", 0.02)
        assert result.thresholds == {"global": 0.02}

    def test_strength_methods_threshold_per_cluster(self, statistical_library):
        result = LibraryTuner(statistical_library).tune(
            "cell_strength_load_slope", 0.01
        )
        strengths = {
            cell.name.rsplit("_", 1)[0] for cell in statistical_library
        }
        assert all(key.startswith("strength_") for key in result.thresholds)
        assert len(result.thresholds) > 3

    def test_cell_methods_threshold_per_cell(self, statistical_library):
        result = LibraryTuner(statistical_library).tune("cell_load_slope", 0.01)
        assert set(result.thresholds) == set(statistical_library.cells)

    def test_tighter_parameter_restricts_more(self, statistical_library):
        tuner = LibraryTuner(statistical_library)
        mild = tuner.tune("sigma_ceiling", 0.04)
        tight = tuner.tune("sigma_ceiling", 0.01)

        def total_area(result):
            total = 0.0
            for window in result.windows.values():
                if window is not None:
                    total += (window.max_slew - window.min_slew) * (
                        window.max_load - window.min_load
                    )
            return total

        assert total_area(tight) < total_area(mild)
        assert len(tight.excluded_cells) >= len(mild.excluded_cells)

    def test_default_parameters_do_not_restrict(self, statistical_library):
        """Table 2 default bounds must leave every LUT fully usable."""
        tuner = LibraryTuner(statistical_library)
        for method in ("cell_load_slope", "cell_slew_slope"):
            result = tuner.tune(method, 1.0)
            assert result.usable_fraction() == 1.0
            assert not result.excluded_cells

    def test_excluded_cells_tracked(self, statistical_library):
        result = LibraryTuner(statistical_library).tune("sigma_ceiling", 0.002)
        assert result.excluded_cells  # tiny ceiling kills weak cells
        name = result.excluded_cells[0]
        assert not result.is_cell_usable(name)

    def test_sweep_covers_table2(self, statistical_library):
        tuner = LibraryTuner(statistical_library)
        results = tuner.sweep("sigma_ceiling")
        assert set(results) == {0.04, 0.03, 0.02, 0.01}

    def test_summary_readable(self, statistical_library):
        result = LibraryTuner(statistical_library).tune("sigma_ceiling", 0.02)
        text = result.summary()
        assert "sigma_ceiling" in text and "%" in text

    def test_window_lookup_unknown_pin(self, statistical_library):
        result = LibraryTuner(statistical_library).tune("sigma_ceiling", 0.02)
        with pytest.raises(TuningError):
            result.window("INV_1", "NOPE")
