"""Inverter-pair fanout splitting."""

import pytest

from repro.errors import SynthesisError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.model import PinRef
from repro.netlist.simulate import simulate
from repro.synth.buffering import plan_groups, split_fanout


def fanout_netlist(n_sinks=6):
    builder = NetlistBuilder("fan")
    a = builder.input("a")
    src = builder.inv(a)
    outs = [builder.inv(src) for _ in range(n_sinks)]
    for i, net in enumerate(outs):
        builder.output(f"y[{i}]", net)
    return builder.netlist, src


class TestPlanGroups:
    def test_round_robin_balance(self):
        sinks = [PinRef(f"i{k}", "A") for k in range(7)]
        kept, groups = plan_groups(sinks, 3)
        assert not kept
        assert sorted(len(g) for g in groups) == [2, 2, 3]

    def test_ports_kept_on_original_net(self):
        sinks = [PinRef(None, "y"), PinRef("i0", "A"), PinRef("i1", "A")]
        kept, groups = plan_groups(sinks, 2)
        assert kept == [PinRef(None, "y")]
        assert sum(len(g) for g in groups) == 2

    def test_no_movable_sinks_rejected(self):
        with pytest.raises(SynthesisError):
            plan_groups([PinRef(None, "y")], 1)

    def test_invalid_group_count(self):
        with pytest.raises(SynthesisError):
            plan_groups([PinRef("i", "A")], 0)


class TestSplitFanout:
    def test_structure_and_equivalence(self):
        netlist, src = fanout_netlist(6)
        before = simulate(netlist, {"a": True})
        sinks = [s for s in netlist.net(src).sinks]
        kept, groups = plan_groups(sinks, 2)
        created = split_fanout(netlist, src, groups, inverter_cell="INV_2")
        netlist.validate()
        # 1 first-stage + 2 second-stage inverters
        assert len(created) == 3
        assert all(netlist.instance(n).family == "INV" for n in created)
        after = simulate(netlist, {"a": True})
        assert after == before  # polarity preserved
        after_false = simulate(netlist, {"a": False})
        assert all(after_false[f"y[{i}]"] != before[f"y[{i}]"] for i in range(6))

    def test_sinks_moved(self):
        netlist, src = fanout_netlist(4)
        sinks = list(netlist.net(src).sinks)
        _kept, groups = plan_groups(sinks, 2)
        split_fanout(netlist, src, groups, inverter_cell="INV_2")
        assert len(netlist.net(src).sinks) == 1  # only the new INVa

    def test_cell_bound_on_new_instances(self):
        netlist, src = fanout_netlist(4)
        sinks = list(netlist.net(src).sinks)
        _kept, groups = plan_groups(sinks, 2)
        created = split_fanout(netlist, src, groups, inverter_cell="INV_4")
        assert all(netlist.instance(n).cell == "INV_4" for n in created)

    def test_foreign_sink_rejected(self):
        netlist, src = fanout_netlist(3)
        with pytest.raises(SynthesisError):
            split_fanout(netlist, src, [[PinRef("ghost", "A")]], "INV_1")

    def test_port_sink_rejected(self):
        netlist, src = fanout_netlist(2)
        netlist.add_output_port("tap", src)
        with pytest.raises(SynthesisError):
            split_fanout(netlist, src, [[PinRef(None, "tap")]], "INV_1")

    def test_empty_groups_rejected(self):
        netlist, src = fanout_netlist(2)
        with pytest.raises(SynthesisError):
            split_fanout(netlist, src, [], "INV_1")
