"""Process-pool fan-out for Monte-Carlo characterization.

Sharding strategy: cells are split into contiguous chunks (a few per
worker for load balance — drive strengths, and with them LUT sizes and
arc counts, vary across the catalog), and for per-sample libraries the
sample axis is additionally split into blocks, so one task is a
(cell chunk, sample block) tile.

Determinism: a worker receives only (characterizer, spec chunk,
n_samples, seed) and regenerates its cells' draws locally via
:meth:`~repro.characterization.characterize.Characterizer.
sample_arc_draws`.  Because draws are keyed per cell by
``(seed, sha256(cell name))``, the regenerated arrays are bit-identical
to the ones the serial loop draws, so the resulting LUTs are
bit-identical too (same IEEE-754 operations on the same inputs).  The
die-level global draws are a single tiny stream; they are drawn once in
the parent and shipped to every worker.

The hot payload crossing process boundaries is therefore small going in
(specs and configuration) and exactly the characterized cells coming
back.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.characterization.characterize import Characterizer, GlobalDraws
from repro.cells.catalog import CellSpec
from repro.liberty.model import Cell
from repro.observe import TraceHandle, get_tracer, install_worker_tracer


def chunk_indices(n_items: int, n_chunks: int) -> List[range]:
    """Split ``range(n_items)`` into at most ``n_chunks`` balanced,
    contiguous ranges (earlier chunks at most one element larger)."""
    n_chunks = max(1, min(n_chunks, n_items))
    base, extra = divmod(n_items, n_chunks)
    ranges: List[range] = []
    start = 0
    for chunk in range(n_chunks):
        size = base + (1 if chunk < extra else 0)
        ranges.append(range(start, start + size))
        start += size
    return ranges


def _statistical_chunk(
    characterizer: Characterizer,
    specs: Sequence[CellSpec],
    n_samples: int,
    seed: int,
    global_draws: Optional[GlobalDraws],
    trace: Optional[TraceHandle] = None,
) -> List[Cell]:
    """Worker: characterize one chunk of cells in statistical mode."""
    tracer = install_worker_tracer(trace)
    with tracer.span("characterize.chunk", n_cells=len(specs)):
        draws = characterizer.sample_arc_draws(specs, n_samples, seed)
        cells = [
            characterizer.characterize_cell(
                spec,
                draws=draws[spec.name],
                global_draws=global_draws,
                statistical=True,
            )
            for spec in specs
        ]
    tracer.flush_counters()
    return cells


def _sample_chunk(
    characterizer: Characterizer,
    specs: Sequence[CellSpec],
    n_samples: int,
    seed: int,
    global_draws: Optional[GlobalDraws],
    sample_indices: Sequence[int],
    trace: Optional[TraceHandle] = None,
) -> List[List[Cell]]:
    """Worker: characterize a (cell chunk, sample block) tile.

    Returns one list of cells per sample index, in block order.
    """
    tracer = install_worker_tracer(trace)
    with tracer.span(
        "characterize.chunk", n_cells=len(specs), n_samples=len(sample_indices)
    ):
        draws = characterizer.sample_arc_draws(specs, n_samples, seed)
        columns = [
            characterizer.characterize_cell_samples(
                spec, draws[spec.name], list(sample_indices), global_draws
            )
            for spec in specs
        ]
        tile: List[List[Cell]] = [
            [column[row] for column in columns]
            for row in range(len(sample_indices))
        ]
    tracer.flush_counters()
    return tile


def characterize_statistical_cells(
    characterizer: Characterizer,
    specs: Sequence[CellSpec],
    n_samples: int,
    seed: int,
    global_draws: Optional[GlobalDraws],
    n_workers: int,
) -> List[Cell]:
    """Fan the statistical characterization of ``specs`` out over
    ``n_workers`` processes; returns cells in catalog order."""
    specs = list(specs)
    chunks = chunk_indices(len(specs), 4 * n_workers)
    trace = get_tracer().handle()
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        futures = [
            pool.submit(
                _statistical_chunk,
                characterizer,
                [specs[i] for i in chunk],
                n_samples,
                seed,
                global_draws,
                trace,
            )
            for chunk in chunks
        ]
        cells: List[Cell] = []
        for future in futures:
            cells.extend(future.result())
    return cells


def characterize_sample_cells(
    characterizer: Characterizer,
    specs: Sequence[CellSpec],
    n_samples: int,
    seed: int,
    global_draws: Optional[GlobalDraws],
    n_workers: int,
) -> List[List[Cell]]:
    """Fan per-sample characterization out over (cell, sample) tiles.

    Returns ``cells[k][i]``: the cell of ``specs[i]`` under Monte-Carlo
    sample ``k``, bit-identical to the serial double loop.

    The vectorized kernel evaluates each cell's full sample tensor in
    one shot, so splitting the sample axis would only repeat that work
    per block — it shards over cells alone.  The scalar kernel keeps
    the (cell chunk, sample block) tiling for load balance.
    """
    specs = list(specs)
    if characterizer.kernel == "vectorized":
        cell_chunks = chunk_indices(len(specs), 4 * n_workers)
        sample_blocks = [range(n_samples)]
    else:
        cell_chunks = chunk_indices(len(specs), 2 * n_workers)
        sample_blocks = chunk_indices(n_samples, n_workers)
    trace = get_tracer().handle()
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        tiles: List[Tuple[range, range, object]] = []
        for block in sample_blocks:
            for chunk in cell_chunks:
                tiles.append((
                    block,
                    chunk,
                    pool.submit(
                        _sample_chunk,
                        characterizer,
                        [specs[i] for i in chunk],
                        n_samples,
                        seed,
                        global_draws,
                        list(block),
                        trace,
                    ),
                ))
        cells: List[List[Optional[Cell]]] = [
            [None] * len(specs) for _ in range(n_samples)
        ]
        for block, chunk, future in tiles:
            tile = future.result()
            for row, k in enumerate(block):
                for column, i in enumerate(chunk):
                    cells[k][i] = tile[row][column]
    return cells
