"""Clock-uncertainty / timing-yield model."""

import math

import pytest

from repro.errors import ReproError
from repro.flow.yieldmodel import (
    path_failure_probability,
    required_uncertainty,
    timing_yield,
    uncertainty_reduction,
)
from repro.sta.statistics import PathStatistics


def stats(mean, sigma, depth=5):
    return PathStatistics(mean=mean, sigma=sigma, depth=depth, step_sigmas=())


class TestFailureProbability:
    def test_half_at_mean(self):
        assert path_failure_probability(stats(2.0, 0.1), 2.0) == pytest.approx(0.5)

    def test_three_sigma(self):
        p = path_failure_probability(stats(2.0, 0.1), 2.3)
        assert p == pytest.approx(0.00135, rel=0.01)

    def test_zero_sigma_is_step(self):
        assert path_failure_probability(stats(2.0, 0.0), 2.1) == 0.0
        assert path_failure_probability(stats(2.0, 0.0), 1.9) == 1.0

    def test_monotone_in_period(self):
        s = stats(2.0, 0.05)
        probs = [path_failure_probability(s, t) for t in (1.9, 2.0, 2.1, 2.2)]
        assert probs == sorted(probs, reverse=True)


class TestTimingYield:
    def test_single_path(self):
        y = timing_yield([stats(2.0, 0.1)], 2.3)
        assert y == pytest.approx(1 - 0.00135, rel=0.01)

    def test_many_paths_multiply(self):
        paths = [stats(2.0, 0.1)] * 10
        single = timing_yield([stats(2.0, 0.1)], 2.3)
        assert timing_yield(paths, 2.3) == pytest.approx(single**10, rel=1e-6)

    def test_lower_sigma_higher_yield(self):
        tight = timing_yield([stats(2.0, 0.05)] * 20, 2.2)
        loose = timing_yield([stats(2.0, 0.10)] * 20, 2.2)
        assert tight > loose

    def test_hopeless_period_zero_yield(self):
        assert timing_yield([stats(2.0, 0.0)], 1.0) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            timing_yield([], 2.0)


class TestRequiredUncertainty:
    def test_single_path_matches_z_value(self):
        """For one Gaussian path the uncertainty is z(yield) * sigma."""
        sigma = 0.05
        g = required_uncertainty([stats(2.0, sigma)], clock_period=5.0,
                                 target_yield=0.99865)  # one-sided 3 sigma
        assert g == pytest.approx(3 * sigma, rel=0.02)

    def test_scales_with_sigma(self):
        g_small = required_uncertainty([stats(2.0, 0.02)] * 5, 5.0)
        g_large = required_uncertainty([stats(2.0, 0.08)] * 5, 5.0)
        assert g_large > g_small
        assert g_large / g_small == pytest.approx(4.0, rel=0.1)

    def test_more_paths_need_more_margin(self):
        few = required_uncertainty([stats(2.0, 0.05)] * 2, 5.0)
        many = required_uncertainty([stats(2.0, 0.05)] * 200, 5.0)
        assert many > few

    def test_invalid_target_rejected(self):
        with pytest.raises(ReproError):
            required_uncertainty([stats(2.0, 0.05)], 5.0, target_yield=1.5)


class TestGoldenValues:
    """Frozen reference outputs of the yield model at tiny scale.

    Hard-coded values computed from the current closed-form/bisection
    implementation — the regression tripwire for any arithmetic change.
    """

    def test_path_failure_probability_golden(self):
        assert path_failure_probability(stats(2.0, 0.1), 2.25) == pytest.approx(
            0.006209665325776159, rel=1e-12
        )

    def test_timing_yield_golden(self):
        paths = [stats(2.0, 0.1), stats(1.9, 0.08), stats(1.7, 0.05)]
        assert timing_yield(paths, 2.25) == pytest.approx(
            0.993784300753065, rel=1e-12
        )

    def test_required_uncertainty_golden(self):
        """Bisection is deterministic, so even the solver output pins."""
        g = required_uncertainty(
            [stats(2.0, 0.05), stats(1.8, 0.04)],
            clock_period=5.0,
            target_yield=0.999,
        )
        assert g == pytest.approx(0.154571533203125, rel=1e-9)

    def test_uncertainty_reduction_golden(self):
        reduction = uncertainty_reduction(
            [stats(2.0, 0.08), stats(1.8, 0.06)],
            [stats(2.0, 0.05), stats(1.8, 0.04)],
            clock_period=5.0,
        )
        assert reduction == pytest.approx(0.3750867453157529, rel=1e-9)


class TestUncertaintyReduction:
    def test_tuning_reduces_uncertainty(self):
        """The paper's motivation: lower sigma -> smaller guard band."""
        baseline = [stats(2.0, 0.08), stats(1.8, 0.06), stats(1.5, 0.05)]
        tuned = [stats(2.0, 0.05), stats(1.85, 0.04), stats(1.5, 0.03)]
        reduction = uncertainty_reduction(baseline, tuned, clock_period=5.0)
        assert 0.1 < reduction < 0.9

    def test_identical_stats_no_reduction(self):
        paths = [stats(2.0, 0.05)] * 3
        assert uncertainty_reduction(paths, paths, 5.0) == pytest.approx(0.0, abs=1e-2)

    def test_on_real_design(self, statistical_library):
        """End-to-end: the tuned design needs a smaller guard band."""
        from repro.core.tuner import LibraryTuner
        from repro.netlist.builder import NetlistBuilder
        from repro.sta.paths import extract_worst_paths
        from repro.sta.statistics import path_statistics
        from repro.synth.constraints import SynthesisConstraints
        from repro.synth.synthesizer import synthesize

        def design():
            builder = NetlistBuilder("y")
            builder.clock()
            a = builder.register(builder.input_bus("a", 8))
            b = builder.register(builder.input_bus("b", 8))
            total, carry = builder.ripple_adder(a, b)
            builder.register(total + [carry])
            return builder.netlist

        baseline = synthesize(
            design(), statistical_library, SynthesisConstraints(clock_period=2.2)
        )
        tuning = LibraryTuner(statistical_library).tune("sigma_ceiling", 0.02)
        tuned = synthesize(
            design(), statistical_library,
            SynthesisConstraints(clock_period=2.2, windows=tuning.windows),
        )
        base_stats = [
            path_statistics(p, statistical_library)
            for p in extract_worst_paths(baseline.timing)
        ]
        tuned_stats = [
            path_statistics(p, statistical_library)
            for p in extract_worst_paths(tuned.timing)
        ]
        reduction = uncertainty_reduction(base_stats, tuned_stats, 2.2)
        assert reduction > 0.0
