"""On-disk library cache keyed by characterization content.

A statistical (or per-sample) library is a pure function of a small
configuration: the catalog specs, the characterization grid, the
technology/corner/mismatch parameters, the power switch, the seed and
the sample count.  The cache hashes exactly that configuration
(sha256 over a canonical JSON rendering) and stores the resulting LUT
value arrays in a compressed ``.npz`` file; everything else — cell
shells, pin capacitances, axes, templates — is rebuilt from the specs
on load, which keeps files small and immune to model-object drift.

Durability: files are written to a temporary sibling and moved into
place with :func:`os.replace`, which is atomic on POSIX and Windows —
a killed run leaves at worst a stray ``*.tmp`` file, never a truncated
cache entry.  Unreadable or structurally wrong entries are treated as
misses and deleted, so a corrupted cache heals itself on the next run.

The cache directory is ``$REPRO_CACHE_DIR`` when set, else
``~/.cache/repro``.  Bump :data:`CACHE_VERSION` whenever the delay
model or the stored layout changes meaning.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.catalog import CellSpec
from repro.liberty.model import Library
from repro.observe.catalog import STORE_LIBRARY_BYTES, STORE_LIBRARY_EVENTS

#: Format/semantics version folded into every cache key.
CACHE_VERSION = 1

#: LUT slots a statistical-library entry may store, core slots first.
STATISTICAL_SLOTS = (
    "cell_rise",
    "cell_fall",
    "rise_transition",
    "fall_transition",
    "sigma_rise",
    "sigma_fall",
    "power_rise",
    "power_fall",
    "sigma_power_rise",
    "sigma_power_fall",
)
#: Slots required for a statistical entry to be considered intact.
_STATISTICAL_REQUIRED = STATISTICAL_SLOTS[:6]

#: LUT slots a per-sample entry may store (stacked along axis 0).
SAMPLE_SLOTS = (
    "cell_rise",
    "cell_fall",
    "rise_transition",
    "fall_transition",
    "power_rise",
    "power_fall",
)
_SAMPLE_REQUIRED = SAMPLE_SLOTS[:4]


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro"


def spec_fingerprint(spec: CellSpec) -> dict:
    """Everything about a spec that characterization results depend on.

    Shared by the library cache key and the artifact pipeline's catalog
    stage fingerprint (:mod:`repro.flow.pipeline`).
    """
    function = spec.function
    return {
        "name": spec.name,
        "family": spec.family,
        "strength": spec.strength,
        "area": spec.area,
        "max_load": spec.max_load,
        "input_cap_factor": dict(sorted(spec.input_cap_factor.items())),
        "drives": {
            pin: dataclasses.asdict(drive)
            for pin, drive in sorted(spec.drives.items())
        },
        "function": function.name,
        "arcs": function.arcs(),
        "senses": [
            [inp, out, getattr(function.sense(inp, out), "value", str(function.sense(inp, out)))]
            for inp, out in function.arcs()
        ],
    }


def characterization_key(
    characterizer,
    specs: Sequence[CellSpec],
    n_samples: int,
    seed: int,
    include_global: bool,
    kind: str,
) -> str:
    """Content hash identifying one characterization run.

    Everything that can change a single LUT entry is in the hash; the
    library *name* is deliberately excluded (it is presentation, not
    content) and re-applied when a cached library is rebuilt.
    """
    payload = {
        "version": CACHE_VERSION,
        "kind": kind,
        "n_samples": n_samples,
        "seed": seed,
        "include_global": include_global,
        "include_power": characterizer.include_power,
        "tech": dataclasses.asdict(characterizer.base_tech),
        "corner": dataclasses.asdict(characterizer.corner),
        "pelgrom": dataclasses.asdict(characterizer.pelgrom),
        "grid": dataclasses.asdict(characterizer.grid),
        "global_sigmas": dataclasses.asdict(characterizer.global_sigmas),
        "specs": [spec_fingerprint(spec) for spec in specs],
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _arc_key(cell: str, output_pin: str, related_pin: str, slot: str) -> str:
    return "\t".join((cell, output_pin, related_pin, slot))


@dataclass(frozen=True)
class CacheStats:
    """Summary of a cache directory's contents."""

    directory: Path
    entries: int
    total_bytes: int

    def to_text(self) -> str:
        """One-line human-readable rendering."""
        mib = self.total_bytes / (1024 * 1024)
        return f"{self.directory}: {self.entries} entries, {mib:.1f} MiB"


class LibraryCache:
    """Content-addressed on-disk store of characterized libraries."""

    def __init__(self, directory: Optional[Path] = None):
        self.directory = Path(directory) if directory else default_cache_dir()

    # ------------------------------------------------------------------
    # Statistical libraries
    # ------------------------------------------------------------------

    def has_statistical(
        self,
        characterizer,
        specs: Sequence[CellSpec],
        n_samples: int,
        seed: int,
        include_global: bool,
    ) -> bool:
        """Cheap existence probe for a statistical entry (no integrity
        check) — used by the pipeline manifest to label hit vs miss."""
        return self._path(
            characterizer, specs, n_samples, seed, include_global, "stat"
        ).is_file()

    def load_statistical(
        self,
        characterizer,
        specs: Sequence[CellSpec],
        n_samples: int,
        seed: int,
        include_global: bool,
        name: Optional[str] = None,
    ) -> Optional[Library]:
        """Rebuild a cached statistical library, or ``None`` on miss.

        A file that exists but cannot be read back intact (truncated,
        garbage, missing arrays) counts as a miss and is deleted.
        """
        path = self._path(characterizer, specs, n_samples, seed, include_global, "stat")
        arrays = self._read(path, "stat", n_samples, len(list(specs)))
        if arrays is None:
            return None
        library = characterizer.library_shell(
            name or f"{characterizer.corner.name}_stat"
        )
        library.is_statistical = True
        try:
            for spec in specs:
                tables = self._cell_tables(
                    arrays, spec, STATISTICAL_SLOTS, _STATISTICAL_REQUIRED
                )
                library.add_cell(characterizer.cell_from_tables(spec, tables))
        except (KeyError, ValueError):
            self._discard(path)
            return None
        return library

    def store_statistical(
        self,
        characterizer,
        specs: Sequence[CellSpec],
        n_samples: int,
        seed: int,
        include_global: bool,
        library: Library,
    ) -> Path:
        """Persist a statistical library's LUT arrays (atomically)."""
        arrays: Dict[str, np.ndarray] = {}
        for cell in library:
            for pin in cell.output_pins():
                for arc in pin.timing:
                    for slot in STATISTICAL_SLOTS:
                        table = getattr(arc, slot)
                        if table is not None:
                            arrays[_arc_key(cell.name, pin.name, arc.related_pin, slot)] = (
                                table.values
                            )
        path = self._path(characterizer, specs, n_samples, seed, include_global, "stat")
        self._write(path, arrays, "stat", n_samples, len(list(specs)))
        return path

    # ------------------------------------------------------------------
    # Per-sample libraries
    # ------------------------------------------------------------------

    def load_samples(
        self,
        characterizer,
        specs: Sequence[CellSpec],
        n_samples: int,
        seed: int,
        include_global: bool,
    ) -> Optional[List[Library]]:
        """Rebuild the N cached Monte-Carlo sample libraries, or ``None``."""
        path = self._path(
            characterizer, specs, n_samples, seed, include_global, "samples"
        )
        arrays = self._read(path, "samples", n_samples, len(list(specs)))
        if arrays is None:
            return None
        libraries: List[Library] = []
        try:
            for k in range(n_samples):
                library = characterizer.library_shell(
                    f"{characterizer.corner.name}_mc{k:03d}"
                )
                for spec in specs:
                    stacked = self._cell_tables(
                        arrays, spec, SAMPLE_SLOTS, _SAMPLE_REQUIRED
                    )
                    tables = {
                        arc: {slot: values[k] for slot, values in slots.items()}
                        for arc, slots in stacked.items()
                    }
                    library.add_cell(characterizer.cell_from_tables(spec, tables))
                libraries.append(library)
        except (KeyError, ValueError, IndexError):
            self._discard(path)
            return None
        return libraries

    def store_samples(
        self,
        characterizer,
        specs: Sequence[CellSpec],
        n_samples: int,
        seed: int,
        include_global: bool,
        libraries: Sequence[Library],
    ) -> Path:
        """Persist N sample libraries as per-arc (N, slews, loads) stacks."""
        arrays: Dict[str, np.ndarray] = {}
        reference = libraries[0]
        for cell in reference:
            for pin in cell.output_pins():
                for arc_index, arc in enumerate(pin.timing):
                    for slot in SAMPLE_SLOTS:
                        if getattr(arc, slot) is None:
                            continue
                        stack = np.stack([
                            getattr(
                                library.cell(cell.name).pin(pin.name).timing[arc_index],
                                slot,
                            ).values
                            for library in libraries
                        ])
                        arrays[_arc_key(cell.name, pin.name, arc.related_pin, slot)] = stack
        path = self._path(
            characterizer, specs, n_samples, seed, include_global, "samples"
        )
        self._write(path, arrays, "samples", n_samples, len(list(specs)))
        return path

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def stats(self) -> CacheStats:
        """Entry count and total size of the cache directory."""
        entries = 0
        total = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.npz"):
                entries += 1
                total += path.stat().st_size
        return CacheStats(directory=self.directory, entries=entries, total_bytes=total)

    def clear(self) -> int:
        """Delete every cache entry (and stray temp file); returns the
        number of entries removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.npz"):
                self._discard(path)
                removed += 1
            for path in self.directory.glob("*.tmp"):
                self._discard(path)
        return removed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _path(self, characterizer, specs, n_samples, seed, include_global, kind) -> Path:
        key = characterization_key(
            characterizer, specs, n_samples, seed, include_global, kind
        )
        return self.directory / f"{kind}-{key[:40]}.npz"

    def _write(
        self,
        path: Path,
        arrays: Dict[str, np.ndarray],
        kind: str,
        n_samples: int,
        n_cells: int,
    ) -> None:
        """Atomic write: temp file in the same directory + os.replace."""
        meta = json.dumps({
            "version": CACHE_VERSION,
            "kind": kind,
            "n_samples": n_samples,
            "n_cells": n_cells,
        })
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=path.stem + "-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(handle, __meta__=np.array(meta), **arrays)
            os.replace(tmp_name, path)
            STORE_LIBRARY_BYTES.labels(direction="written").inc(
                path.stat().st_size
            )
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _read(
        self, path: Path, kind: str, n_samples: int, n_cells: int
    ) -> Optional[Dict[str, np.ndarray]]:
        """Load and validate an entry; any defect is a miss + delete."""
        if not path.is_file():
            STORE_LIBRARY_EVENTS.labels(event="miss").inc()
            return None
        try:
            size = path.stat().st_size
            with np.load(path, allow_pickle=False) as data:
                meta = json.loads(str(data["__meta__"]))
                if (
                    meta.get("version") != CACHE_VERSION
                    or meta.get("kind") != kind
                    or meta.get("n_samples") != n_samples
                    or meta.get("n_cells") != n_cells
                ):
                    raise ValueError("cache metadata mismatch")
                arrays = {
                    key: data[key] for key in data.files if key != "__meta__"
                }
            STORE_LIBRARY_EVENTS.labels(event="hit").inc()
            STORE_LIBRARY_BYTES.labels(direction="read").inc(size)
            return arrays
        except Exception:
            self._discard(path)
            STORE_LIBRARY_EVENTS.labels(event="miss").inc()
            return None

    @staticmethod
    def _cell_tables(
        arrays: Dict[str, np.ndarray],
        spec: CellSpec,
        slots: Tuple[str, ...],
        required: Tuple[str, ...],
    ) -> Dict[Tuple[str, str], Dict[str, np.ndarray]]:
        """Group one cell's stored arrays by arc, checking completeness."""
        tables: Dict[Tuple[str, str], Dict[str, np.ndarray]] = {}
        for input_pin, output_pin in spec.function.arcs():
            arc_tables: Dict[str, np.ndarray] = {}
            for slot in slots:
                key = _arc_key(spec.name, output_pin, input_pin, slot)
                if key in arrays:
                    arc_tables[slot] = arrays[key]
            missing = [slot for slot in required if slot not in arc_tables]
            if missing:
                raise KeyError(
                    f"{spec.name} {input_pin}->{output_pin}: missing {missing}"
                )
            tables[(input_pin, output_pin)] = arc_tables
        return tables

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
