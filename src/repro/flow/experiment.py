"""The end-to-end tuning experiment flow, as a staged artifact pipeline.

One :class:`TuningFlow` owns the evaluation's stage chain::

    catalog -> statistical library -> tuning -> synthesis -> paths
            -> design statistics          (+ the minimum-period search)

Every stage is a pure function of a content-addressed fingerprint (see
:mod:`repro.flow.pipeline`) and its artifact is persisted in the
on-disk store under ``$REPRO_CACHE_DIR``, so a warm run of the Fig. 10
/ Table 3 evaluation sweep (5 methods x Table 2 parameters x 4 clock
periods) skips synthesis entirely — not just characterization.  The
in-process memos remain in front of the store, so repeated access
within a flow stays allocation-free.

Three scales are provided: ``FlowConfig.paper()`` (the ~18k-gate
microcontroller, 50 MC samples — the paper's setup), ``FlowConfig.
quick()`` (a scaled-down controller, 30 samples) which keeps the
trends but runs each synthesis in a few seconds, and ``FlowConfig.
tiny()`` (a few hundred gates, 10 samples) for smoke runs and CI.

Execution knobs (see :mod:`repro.parallel`): ``n_workers`` fans both
the Monte-Carlo characterization *and* the evaluation sweep points out
over processes with bit-identical results (``REPRO_JOBS`` /
``--jobs``), and ``cache`` memoizes characterized libraries and every
downstream stage artifact on disk.  Each flow records a
:class:`~repro.flow.pipeline.RunManifest` of stage resolutions
(fingerprint, hit/miss, wall time), surfaced via ``--manifest``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cells.catalog import CellSpec, build_catalog
from repro.characterization.characterize import Characterizer
from repro.core.methods import TuningMethod, method_by_name
from repro.core.tuner import LibraryTuner, TuningResult
from repro.errors import ConfigError, ReproError
from repro.kernels.dispatch import DEFAULT_KERNEL, set_kernel, validate_kernel
from repro.parallel.backends import DEFAULT_BACKEND, validate_backend
from repro.observe import Tracer, get_tracer, set_metrics_enabled, set_tracer
from repro.flow.metrics import TuningComparison, compare_runs
from repro.flow.minperiod import minimum_clock_period
from repro.flow.pipeline import (
    BASELINE_WINDOWS,
    ArtifactPipeline,
    RunManifest,
    SweepPoint,
    catalog_fingerprint,
    design_fingerprint,
    minperiod_fingerprint,
    paths_fingerprint,
    stats_fingerprint,
    synthesis_fingerprint,
    sweep_comparisons,
    tuning_fingerprint,
)
from repro.liberty.model import Library
from repro.netlist.generators.microcontroller import (
    MicrocontrollerParams,
    build_microcontroller,
)
from repro.netlist.model import Netlist
from repro.sta.engine import TimingResult
from repro.sta.paths import TimingPath, extract_worst_paths
from repro.sta.statistics import DesignStatistics, design_statistics
from repro.synth.constraints import SynthesisConstraints
from repro.synth.synthesizer import SynthesisResult, synthesize
from repro.units import GUARD_BAND_NS

#: Accepted spellings of the boolean environment knobs.
_BOOL_KNOB_VALUES = {
    "1": True, "true": True, "on": True, "yes": True,
    "0": False, "false": False, "off": False, "no": False,
}


def _parse_bool_knob(name: str, value: str) -> bool:
    """Parse an on/off environment knob, failing loudly on typos."""
    parsed = _BOOL_KNOB_VALUES.get(value.strip().lower())
    if parsed is None:
        raise ConfigError(
            f"{name} must be one of "
            f"{', '.join(sorted(_BOOL_KNOB_VALUES))}; got {value!r}"
        )
    return parsed


@dataclass(frozen=True)
class FlowConfig:
    """Scale, determinism and execution knobs of a flow."""

    design: MicrocontrollerParams = field(default_factory=MicrocontrollerParams)
    n_samples: int = 50
    seed: int = 0
    guard_band: float = GUARD_BAND_NS
    #: Worker processes for characterization and sweep fan-out
    #: (1 = serial, 0 = one per CPU).
    n_workers: int = 1
    #: Persist characterized libraries and stage artifacts on disk
    #: (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``); results are
    #: bit-identical either way.
    cache: bool = True
    #: Evaluation kernel (``"vectorized"`` or ``"scalar"``, see
    #: :mod:`repro.kernels`); results are bit-identical either way, so
    #: the choice never enters fingerprints or cache keys.
    kernel: str = DEFAULT_KERNEL
    #: Execution backend every fan-out dispatches through
    #: (``"serial"``, ``"process"`` or ``"queue"``, see
    #: :mod:`repro.parallel.backends`); like the kernel, results are
    #: bit-identical on every backend, so the choice never enters
    #: fingerprints or cache keys.
    backend: str = DEFAULT_BACKEND
    #: Optional :class:`~repro.observe.Tracer` the flow installs as the
    #: process-wide active tracer; travels (as a trace handle) into the
    #: sweep worker processes so their spans merge into the same trace.
    #: Excluded from comparison — tracing never changes results.
    tracer: Optional[Tracer] = field(default=None, compare=False, repr=False)
    #: Live metrics collection (:mod:`repro.observe.metrics`) on/off;
    #: the flow applies it process-wide on construction.  Excluded from
    #: comparison — telemetry never changes results.
    metrics: bool = field(default=True, compare=False)

    @staticmethod
    def paper() -> "FlowConfig":
        """The paper's setup: ~18k-gate design, 50 MC libraries."""
        return FlowConfig()

    @staticmethod
    def quick() -> "FlowConfig":
        """Scaled-down setup preserving the trends (for benches/tests)."""
        return FlowConfig(
            design=MicrocontrollerParams(
                width=16,
                regfile_bits=3,
                mult_width=10,
                n_timers=2,
                timer_width=12,
                control_gates=2200,
                status_width=48,
                n_uarts=1,
                gpio_width=8,
            ),
            n_samples=30,
        )

    @staticmethod
    def tiny() -> "FlowConfig":
        """A few hundred gates, 10 samples — smoke runs and CI."""
        return FlowConfig(
            design=MicrocontrollerParams(
                width=12,
                regfile_bits=2,
                mult_width=8,
                n_timers=1,
                timer_width=8,
                control_gates=400,
                status_width=16,
                n_uarts=1,
                gpio_width=4,
            ),
            n_samples=10,
        )

    #: The recognized ``REPRO_SCALE`` values and their factories.
    SCALES = ("quick", "paper", "tiny")

    def scale_name(self) -> str:
        """The named scale this config matches, or ``custom``.

        Matches on the science-defining knobs (design parameters,
        sample count, seed, guard band) only — worker count, caching
        and tracing never change results, so a ``tiny`` run stays
        ``tiny`` however it executes.  The run ledger records this so
        metric trends never mix scales.
        """
        for name in self.SCALES:
            factory = getattr(FlowConfig, name)()
            if (
                factory.design,
                factory.n_samples,
                factory.seed,
                factory.guard_band,
            ) == (self.design, self.n_samples, self.seed, self.guard_band):
                return name
        return "custom"

    @staticmethod
    def from_env(
        scale: Optional[str] = None,
        jobs: Optional[int] = None,
        kernel: Optional[str] = None,
        backend: Optional[str] = None,
        cache: Optional[bool] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[bool] = None,
    ) -> "FlowConfig":
        """The single resolver for every execution knob.

        Each knob resolves with the same precedence: **explicit
        argument > environment variable > default**.  The knob table:

        =========  =================  ====================================
        argument   environment        meaning (default)
        =========  =================  ====================================
        scale      ``REPRO_SCALE``    named scale, ``quick``/``paper``/
                                      ``tiny`` (``quick``)
        jobs       ``REPRO_JOBS``     worker count, 0 = one per CPU (1)
        kernel     ``REPRO_KERNEL``   evaluation kernel (``vectorized``)
        backend    ``REPRO_BACKEND``  execution backend (``process``)
        cache      —                  artifact store on/off (on)
        tracer     —                  tracer the flow installs (none)
        metrics    ``REPRO_METRICS``  live metrics collection on/off (on)
        =========  =================  ====================================

        ``REPRO_LEDGER`` (run-ledger path, or ``off``) is deliberately
        *not* a flow knob; it is resolved the same way by
        :func:`repro.observe.ledger.resolve_ledger`, and
        ``REPRO_CACHE_DIR`` by the artifact store.  Any invalid value —
        a typo'd scale, kernel or backend, a non-integer or negative
        job count — raises :class:`~repro.errors.ConfigError` instead
        of silently falling back to a default.  The CLI, the experiment
        runner and the tuning service all build their configs here, so
        a knob means the same thing on every entry point.
        """
        if scale is None:
            scale = os.environ.get("REPRO_SCALE", "quick")
        scale = scale.strip().lower()
        if scale not in FlowConfig.SCALES:
            raise ConfigError(
                f"unknown REPRO_SCALE {scale!r} "
                f"(use one of {', '.join(FlowConfig.SCALES)})"
            )
        config = getattr(FlowConfig, scale)()
        if jobs is None:
            env_jobs = os.environ.get("REPRO_JOBS")
            if env_jobs is not None:
                try:
                    jobs = int(env_jobs.strip())
                except ValueError:
                    raise ConfigError(
                        f"REPRO_JOBS must be an integer, got {env_jobs!r}"
                    ) from None
        if jobs is not None:
            if jobs < 0:
                raise ConfigError(
                    f"REPRO_JOBS must be >= 0 (0 = one per CPU), got {jobs}"
                )
            config = replace(config, n_workers=jobs)
        if kernel is None:
            kernel = os.environ.get("REPRO_KERNEL")
        if kernel is not None:
            config = replace(
                config, kernel=validate_kernel(kernel.strip().lower())
            )
        if backend is None:
            backend = os.environ.get("REPRO_BACKEND")
        if backend is not None:
            config = replace(
                config, backend=validate_backend(backend.strip().lower())
            )
        if cache is not None:
            config = replace(config, cache=cache)
        if tracer is not None:
            config = replace(config, tracer=tracer)
        if metrics is None:
            env_metrics = os.environ.get("REPRO_METRICS")
            if env_metrics is not None:
                metrics = _parse_bool_knob("REPRO_METRICS", env_metrics)
        if metrics is not None:
            config = replace(config, metrics=metrics)
        return config

    @staticmethod
    def from_environment() -> "FlowConfig":
        """Build a config from environment knobs alone.

        Thin alias of :meth:`from_env` with no explicit overrides,
        kept for the original call sites; new code should call
        :meth:`from_env` directly.
        """
        return FlowConfig.from_env()


@dataclass(frozen=True)
class RunSummary:
    """Serializable summary of a synthesis outcome (stage ``synth``).

    Everything the evaluation reads off a run that is *not* the paths
    or the statistics: feasibility, area, the sizing/buffering effort,
    and the bound-cell usage of the final netlist.
    """

    met: bool
    area: float
    wns: float
    sizing_iterations: int
    buffer_instances: int
    failure_reason: str
    legality_violations: int
    n_instances: int
    cell_counts: Tuple[Tuple[str, int], ...]

    @staticmethod
    def from_result(result: SynthesisResult) -> "RunSummary":
        """Summarize a live synthesis result."""
        return RunSummary(
            met=result.met,
            area=result.area,
            wns=float(result.timing.wns),
            sizing_iterations=result.sizing_iterations,
            buffer_instances=result.buffer_instances,
            failure_reason=result.failure_reason,
            legality_violations=result.legality_violations,
            n_instances=len(result.netlist),
            cell_counts=tuple(sorted(result.cell_histogram().items())),
        )

    def to_payload(self) -> dict:
        """JSON-serializable rendering (artifact pipeline)."""
        return {
            "met": self.met,
            "area": self.area,
            "wns": self.wns,
            "sizing_iterations": self.sizing_iterations,
            "buffer_instances": self.buffer_instances,
            "failure_reason": self.failure_reason,
            "legality_violations": self.legality_violations,
            "n_instances": self.n_instances,
            "cell_counts": [list(item) for item in self.cell_counts],
        }

    @staticmethod
    def from_payload(payload: dict) -> "RunSummary":
        """Rebuild a summary stored with :meth:`to_payload`."""
        return RunSummary(
            met=bool(payload["met"]),
            area=float(payload["area"]),
            wns=float(payload["wns"]),
            sizing_iterations=int(payload["sizing_iterations"]),
            buffer_instances=int(payload["buffer_instances"]),
            failure_reason=payload["failure_reason"],
            legality_violations=int(payload["legality_violations"]),
            n_instances=int(payload["n_instances"]),
            cell_counts=tuple(
                (name, int(count)) for name, count in payload["cell_counts"]
            ),
        )


@dataclass
class SynthesisRun:
    """A synthesis outcome plus the paper's measurements on it.

    Live runs keep the full :class:`~repro.synth.synthesizer.
    SynthesisResult` (netlist, timing graph); runs assembled from the
    artifact store carry ``result=None`` — every evaluation metric
    (area, sigma, histograms, paths) is available either way, only the
    raw timing graph is live-only.
    """

    clock_period: float
    summary: RunSummary
    paths: List[TimingPath]
    stats: DesignStatistics
    #: Live-synthesis handle; ``None`` when served from the store.
    result: Optional[SynthesisResult] = None

    @property
    def met(self) -> bool:
        return self.summary.met

    @property
    def area(self) -> float:
        return self.summary.area

    @property
    def design_sigma(self) -> float:
        """Eq. (11) design sigma over worst endpoint paths."""
        return self.stats.sigma

    @property
    def n_instances(self) -> int:
        """Instances in the synthesized netlist (buffers included)."""
        return self.summary.n_instances

    @property
    def timing(self) -> TimingResult:
        """The live timing result — raises for store-served runs."""
        if self.result is None:
            raise ReproError(
                "timing graph not retained in a cached synthesis artifact; "
                "re-run with FlowConfig(cache=False) or clear the store to "
                "synthesize live"
            )
        return self.result.timing

    def cell_histogram(self) -> Dict[str, int]:
        """Bound-cell usage of the run (paper Fig. 9)."""
        return dict(self.summary.cell_counts)

    def depth_histogram(self) -> Dict[int, int]:
        """Worst-path count per depth (paper Fig. 12)."""
        histogram: Dict[int, int] = {}
        for path in self.paths:
            histogram[path.depth] = histogram.get(path.depth, 0) + 1
        return dict(sorted(histogram.items()))


class TuningFlow:
    """Characterize once, tune and synthesize many times — every stage
    memoized in-process and content-addressed on disk."""

    def __init__(self, config: Optional[FlowConfig] = None):
        self.config = config or FlowConfig.paper()
        if self.config.tracer is not None:
            set_tracer(self.config.tracer)
        set_kernel(self.config.kernel)
        set_metrics_enabled(self.config.metrics)
        self.manifest = RunManifest()
        self._store = None
        if self.config.cache:
            from repro.parallel import ArtifactStore

            self._store = ArtifactStore()
        self._pipeline = ArtifactPipeline(self._store, self.manifest)
        self._specs: Optional[List[CellSpec]] = None
        self._characterizer: Optional[Characterizer] = None
        self._statistical: Optional[Library] = None
        self._tuner: Optional[LibraryTuner] = None
        self._statlib_key: Optional[str] = None
        self._design_key: Optional[str] = None
        self._tunings: Dict[Tuple[str, float], TuningResult] = {}
        #: Memoized runs, keyed disjointly: ``("baseline", period)``
        #: for untuned synthesis, ``("tuned", method, parameter,
        #: period)`` for tuned — no tuning-method name can collide
        #: with the baseline entry.
        self._runs: Dict[tuple, SynthesisRun] = {}
        self._minimum_periods: Dict[float, float] = {}

    # ------------------------------------------------------------------
    # Lazy stages
    # ------------------------------------------------------------------

    @property
    def tracer(self) -> Tracer:
        """The tracer instrumentation reports to: the config's, or the
        process-wide active tracer (a no-op tracer by default)."""
        return self.config.tracer or get_tracer()

    @property
    def specs(self) -> List[CellSpec]:
        if self._specs is None:
            with self.tracer.span("stage.catalog", status="computed"):
                start = time.perf_counter()
                self._specs = build_catalog()
                self._pipeline.note(
                    "catalog",
                    catalog_fingerprint(self._specs),
                    "computed",
                    time.perf_counter() - start,
                )
        return self._specs

    @property
    def characterizer(self) -> Characterizer:
        if self._characterizer is None:
            from repro.parallel import LibraryCache

            self._characterizer = Characterizer(
                cache=LibraryCache() if self.config.cache else None,
                n_workers=self.config.n_workers,
                kernel=self.config.kernel,
                backend=self.config.backend,
            )
        return self._characterizer

    @property
    def statlib_key(self) -> str:
        """Content fingerprint of the statistical-library stage."""
        if self._statlib_key is None:
            from repro.parallel.cache import characterization_key

            self._statlib_key = characterization_key(
                self.characterizer,
                self.specs,
                self.config.n_samples,
                self.config.seed,
                include_global=False,
                kind="stat",
            )
        return self._statlib_key

    @property
    def design_key(self) -> str:
        """Content fingerprint of the evaluation design's parameters."""
        if self._design_key is None:
            self._design_key = design_fingerprint(self.config.design)
        return self._design_key

    @property
    def statistical_library(self) -> Library:
        if self._statistical is None:
            with self.tracer.span("stage.statlib", key=self.statlib_key[:12]) as span:
                start = time.perf_counter()
                cache = self.characterizer.cache
                if cache is None:
                    status = "computed"
                elif cache.has_statistical(
                    self.characterizer,
                    self.specs,
                    self.config.n_samples,
                    self.config.seed,
                    include_global=False,
                ):
                    status = "hit"
                else:
                    status = "miss"
                span.set(status=status)
                self._statistical = self.characterizer.statistical_library(
                    self.specs, n_samples=self.config.n_samples, seed=self.config.seed
                )
                self._pipeline.note(
                    "statlib", self.statlib_key, status, time.perf_counter() - start
                )
        return self._statistical

    @property
    def tuner(self) -> LibraryTuner:
        if self._tuner is None:
            self._tuner = LibraryTuner(self.statistical_library)
        return self._tuner

    def _method(self, method) -> TuningMethod:
        """Resolve (and validate) a method given by name or value."""
        return method_by_name(method) if isinstance(method, str) else method

    def tuning(self, method: str, parameter: float) -> TuningResult:
        """Tuning result for (method, parameter) — memoized in-process,
        content-addressed on disk."""
        resolved = self._method(method)
        key = (resolved.name, parameter)
        if key not in self._tunings:
            self._tunings[key] = self._pipeline.resolve(
                "tuning",
                tuning_fingerprint(self.statlib_key, resolved, parameter),
                compute=lambda: self.tuner.tune(resolved, parameter),
                encode=lambda result: result.to_payload(),
                decode=TuningResult.from_payload,
            )
        return self._tunings[key]

    def build_design(self) -> Netlist:
        """A fresh copy of the evaluation design."""
        return build_microcontroller(self.config.design)

    # ------------------------------------------------------------------
    # Synthesis runs (stages: synth -> paths -> stats)
    # ------------------------------------------------------------------

    def _resolve_run(
        self,
        windows_key: str,
        constraints: SynthesisConstraints,
        windows_factory: Optional[Callable[[], object]] = None,
    ) -> SynthesisRun:
        """Serve a synthesis run from the store, or synthesize live.

        ``constraints`` arrives *without* windows (they are represented
        by ``windows_key`` in the fingerprint); ``windows_factory``
        materializes them only when the run must actually synthesize —
        a warm hit never touches the tuning stage.

        The three downstream stages (synth summary, worst paths,
        design statistics) are stored under chained fingerprints; a
        partially populated store (e.g. an interrupted run) counts as a
        full miss so the artifacts can never disagree with each other.
        """
        synth_key = synthesis_fingerprint(
            self.statlib_key, self.design_key, windows_key, constraints
        )
        path_key = paths_fingerprint(synth_key)
        stat_key = stats_fingerprint(synth_key)
        store = self._store
        tracer = self.tracer
        if store is not None:
            start = time.perf_counter()
            summary_payload = store.load("synth", synth_key)
            paths_payload = store.load("paths", path_key)
            stats_payload = store.load("stats", stat_key)
            if (
                summary_payload is not None
                and paths_payload is not None
                and stats_payload is not None
            ):
                elapsed = (time.perf_counter() - start) / 3
                for stage, key in (
                    ("synth", synth_key),
                    ("paths", path_key),
                    ("stats", stat_key),
                ):
                    self._pipeline.note(stage, key, "hit", elapsed)
                    tracer.record_span(
                        f"stage.{stage}", elapsed, key=key[:12], status="hit"
                    )
                    tracer.add("store.artifact.hit", 1)
                return SynthesisRun(
                    clock_period=constraints.clock_period,
                    summary=RunSummary.from_payload(summary_payload),
                    paths=[TimingPath.from_payload(p) for p in paths_payload],
                    stats=DesignStatistics.from_payload(stats_payload),
                )
        if windows_factory is not None:
            constraints = replace(constraints, windows=windows_factory())
        status = "computed" if store is None else "miss"

        with tracer.span("stage.synth", key=synth_key[:12], status=status):
            start = time.perf_counter()
            netlist = self.build_design()
            result = synthesize(netlist, self.statistical_library, constraints)
            summary = RunSummary.from_result(result)
            if store is not None:
                store.store("synth", synth_key, summary.to_payload())
                tracer.add("store.artifact.miss", 1)
            self._pipeline.note(
                "synth", synth_key, status, time.perf_counter() - start
            )

        with tracer.span("stage.paths", key=path_key[:12], status=status):
            start = time.perf_counter()
            paths = extract_worst_paths(result.timing)
            if store is not None:
                store.store("paths", path_key, [p.to_payload() for p in paths])
                tracer.add("store.artifact.miss", 1)
            self._pipeline.note(
                "paths", path_key, status, time.perf_counter() - start
            )

        with tracer.span("stage.stats", key=stat_key[:12], status=status):
            start = time.perf_counter()
            stats = design_statistics(paths, self.statistical_library)
            if store is not None:
                store.store("stats", stat_key, stats.to_payload())
                tracer.add("store.artifact.miss", 1)
            self._pipeline.note(
                "stats", stat_key, status, time.perf_counter() - start
            )

        return SynthesisRun(
            clock_period=constraints.clock_period,
            summary=summary,
            paths=paths,
            stats=stats,
            result=result,
        )

    def baseline(self, clock_period: float) -> SynthesisRun:
        """Baseline (untuned) synthesis at a clock period (memoized)."""
        key = ("baseline", clock_period)
        if key not in self._runs:
            self._runs[key] = self._resolve_run(
                BASELINE_WINDOWS,
                SynthesisConstraints(
                    clock_period=clock_period, guard_band=self.config.guard_band
                ),
            )
        return self._runs[key]

    def tuned(self, clock_period: float, method: str, parameter: float) -> SynthesisRun:
        """Tuned synthesis at a clock period (memoized)."""
        resolved = self._method(method)
        key = ("tuned", resolved.name, parameter, clock_period)
        if key not in self._runs:
            self._runs[key] = self._resolve_run(
                tuning_fingerprint(self.statlib_key, resolved, parameter),
                SynthesisConstraints(
                    clock_period=clock_period, guard_band=self.config.guard_band
                ),
                windows_factory=lambda: self.tuning(resolved, parameter).windows,
            )
        return self._runs[key]

    def compare(
        self, clock_period: float, method: str, parameter: float
    ) -> TuningComparison:
        """Baseline-vs-tuned comparison (paper Figs. 10-11 data point)."""
        baseline = self.baseline(clock_period)
        tuned = self.tuned(clock_period, method, parameter)
        return compare_runs(baseline, tuned, self._method(method).name, parameter)

    def sweep_method(
        self, clock_period: float, method: str, parameters: Optional[List[float]] = None
    ) -> List[TuningComparison]:
        """Compare every Table 2 parameter of a method at one period."""
        values = parameters or list(self._method(method).sweep_values())
        return self.sweep_comparisons(
            [(clock_period, self._method(method).name, value) for value in values]
        )

    def sweep_comparisons(
        self, points: Sequence[SweepPoint]
    ) -> List[TuningComparison]:
        """Evaluate many (period, method, parameter) points.

        With an out-of-process backend *and* the on-disk store enabled,
        the points fan out over the configured
        :class:`~repro.parallel.backends.ExecutorBackend` (the store is
        the shared medium — baselines are synthesized once, artifacts
        are written atomically, and reassembly follows ``points``
        order, so the result list is bit-identical to the serial path).
        Otherwise the points run serially through :meth:`compare`.
        """
        from repro.parallel.backends import resolve_backend

        points = [(p, self._method(m).name, v) for (p, m, v) in points]
        backend = resolve_backend(self.config.backend, self.config.n_workers)
        if backend.in_process or self._store is None or len(points) <= 1:
            return [self.compare(p, m, v) for (p, m, v) in points]
        # characterize (and persist) the library before dispatching so
        # the workers all load the same cached artifact instead of
        # racing to recompute it
        self.statistical_library
        tracer = self.tracer
        with tracer.span(
            "flow.sweep",
            points=len(points),
            workers=backend.n_workers,
            backend=backend.name,
        ):
            start = time.perf_counter()
            comparisons = sweep_comparisons(
                self.config, points, backend.n_workers, backend=backend
            )
            self._pipeline.note(
                "sweep",
                f"{len(points)}pts@{backend.n_workers}w",
                "computed",
                time.perf_counter() - start,
            )
        return comparisons

    # ------------------------------------------------------------------
    # Minimum-period search (stage: minperiod)
    # ------------------------------------------------------------------

    def _probe(self, period: float) -> Tuple[bool, float]:
        """Reduced-effort feasibility probe for the minimum search.

        One buffering round is enough to decide met/fail; the operating
        points are later synthesized at full effort, which can only do
        better — so a probe-feasible minimum stays feasible.
        """
        period = round(period, 4)
        netlist = self.build_design()
        constraints = SynthesisConstraints(
            clock_period=period,
            guard_band=self.config.guard_band,
            max_buffer_rounds=1,
        )
        result = synthesize(netlist, self.statistical_library, constraints)
        return result.met, result.area

    def _search_minimum_period(self, resolution: float) -> float:
        """Paper Sec. VII: reduce the clock until synthesis fails."""
        guard = self.config.guard_band
        # seed the bracket from the logic depth (~55 ps/stage)
        depth = max(self.build_design().levelize().values())
        guess = guard + 0.055 * depth
        lower = round(guard + 0.55 * (guess - guard), 2)
        upper = round(guess * 1.15, 2)
        while self._probe(upper)[0] is False:
            lower = upper
            upper = round(upper * 1.4, 2)
        while self._probe(lower)[0] is True:
            upper = lower
            lower = round(guard + 0.6 * (lower - guard), 2)
        return round(
            minimum_clock_period(self._probe, lower, upper, resolution=resolution), 4
        )

    def minimum_period(self, resolution: float = 0.05) -> float:
        """The smallest feasible clock period (content-addressed).

        A warm store serves the search result without running a single
        probe synthesis — the stage that otherwise dominates a warm
        evaluation's cost.
        """
        if resolution not in self._minimum_periods:
            self._minimum_periods[resolution] = self._pipeline.resolve(
                "minperiod",
                minperiod_fingerprint(
                    self.statlib_key,
                    self.design_key,
                    self.config.guard_band,
                    resolution,
                ),
                compute=lambda: self._search_minimum_period(resolution),
                encode=lambda minimum: {"minimum": minimum},
                decode=lambda payload: float(payload["minimum"]),
            )
        return self._minimum_periods[resolution]
