"""Service-core behaviour: config resolution, dispatch, status."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ConfigError, TuningError
from repro.flow.experiment import FlowConfig
from repro.flow.metrics import TuningComparison
from repro.serve.handlers import TuningService
from repro.serve.schema import StatusRequest, SweepRequest, TuneRequest


def stub_comparison(point):
    """A comparison shaped like the flow's, without any synthesis."""
    clock, method, parameter = point
    return TuningComparison(
        method=method or "baseline",
        parameter=parameter,
        clock_period=clock,
        baseline_sigma=0.10,
        tuned_sigma=0.05,
        baseline_area=100.0,
        tuned_area=104.0,
    )


@pytest.fixture
def service():
    """A serial-backend service with a synthesis-free evaluator."""
    calls = []

    def evaluate(config, point):
        calls.append((config, point))
        return stub_comparison(point)

    config = FlowConfig.from_env(scale="tiny", backend="serial", jobs=1)
    built = TuningService(config=config, max_pending=2, evaluate=evaluate)
    built.test_calls = calls
    return built


class TestServiceConstruction:
    def test_cache_is_required(self):
        config = FlowConfig.from_env(scale="tiny", cache=False)
        with pytest.raises(ConfigError, match="cache"):
            TuningService(config=config)

    def test_max_pending_must_be_positive(self):
        config = FlowConfig.from_env(scale="tiny", backend="serial")
        with pytest.raises(ConfigError):
            TuningService(config=config, max_pending=0)


class TestRequestConfig:
    def test_server_config_applies_by_default(self, service):
        request = TuneRequest(
            method="cell_load_slope", parameter=0.2, clock_period=3.0
        )
        config = service.request_config(request)
        assert config.scale_name() == "tiny"
        assert config.backend == "serial"

    def test_request_scale_wins_over_server_scale(self, service):
        """Explicit request field > server config > environment."""
        request = TuneRequest(
            method="cell_load_slope",
            parameter=0.2,
            clock_period=3.0,
            scale="quick",
        )
        config = service.request_config(request)
        assert config.scale_name() == "quick"
        # execution knobs still come from the server, not the env
        assert config.backend == "serial"
        assert config.n_workers == 1

    def test_request_design_resolves_through_family(self, service):
        request = TuneRequest(
            method="cell_load_slope",
            parameter=0.2,
            clock_period=3.0,
            design="dsp",
        )
        config = service.request_config(request)
        assert config.design != service.config.design

    def test_unknown_design_raises_config_error(self, service):
        request = TuneRequest(
            method="cell_load_slope",
            parameter=0.2,
            clock_period=3.0,
            design="mainframe",
        )
        with pytest.raises(ConfigError, match="mainframe"):
            service.request_config(request)

    def test_bad_scale_raises_config_error(self, service):
        request = TuneRequest(
            method="cell_load_slope",
            parameter=0.2,
            clock_period=3.0,
            scale="tiyn",
        )
        with pytest.raises(ConfigError, match="tiyn"):
            service.request_config(request)


class TestTuneHandler:
    def test_cold_burst_coalesces_to_one_evaluation(self):
        """N identical cold requests -> exactly one evaluation.

        The evaluator blocks on a gate until every request has reached
        the coalescer, so the leader/follower split is deterministic.
        """
        import threading

        gate = threading.Event()
        calls = []

        def evaluate(config, point):
            calls.append(point)
            assert gate.wait(timeout=30)
            return stub_comparison(point)

        config = FlowConfig.from_env(scale="tiny", backend="serial", jobs=1)
        service = TuningService(
            config=config, max_pending=8, evaluate=evaluate
        )

        async def scenario():
            request = TuneRequest(
                method="cell_load_slope", parameter=0.2, clock_period=3.0
            )
            tasks = [
                asyncio.ensure_future(service.handle(request, f"t{i}"))
                for i in range(6)
            ]
            # wait until every request probed the store and reached the
            # coalescer (inflight stays 1: one shared computation)
            for _ in range(2000):
                if service.coalescer.coalesced == 5:
                    break
                await asyncio.sleep(0.005)
            gate.set()
            responses = await asyncio.gather(*tasks)
            outcomes = sorted(r.outcome for r in responses)
            assert outcomes.count("computed") == 1
            assert outcomes.count("coalesced") == 5
            assert len(calls) == 1
            assert {r.trace_id for r in responses} == {
                f"t{i}" for i in range(6)
            }
            first = responses[0]
            assert first.sigma_reduction == pytest.approx(0.5)
            assert first.area_increase == pytest.approx(0.04)

        asyncio.run(scenario())

    def test_distinct_points_compute_independently(self, service):
        async def scenario():
            a = TuneRequest(
                method="cell_load_slope", parameter=0.1, clock_period=3.0
            )
            b = TuneRequest(
                method="cell_load_slope", parameter=0.3, clock_period=3.0
            )
            responses = await asyncio.gather(
                service.handle(a, "ta"), service.handle(b, "tb")
            )
            assert [r.outcome for r in responses] == ["computed", "computed"]
            assert len(service.test_calls) == 2

        asyncio.run(scenario())

    def test_unknown_method_raises_tuning_error(self, service):
        async def scenario():
            request = TuneRequest(
                method="does_not_exist", parameter=0.2, clock_period=3.0
            )
            with pytest.raises(TuningError, match="does_not_exist"):
                await service.handle(request, "t")

        asyncio.run(scenario())

    def test_status_counts_outcomes(self, service):
        async def scenario():
            request = TuneRequest(
                method="cell_load_slope", parameter=0.2, clock_period=3.0
            )
            await service.handle(request, "t1")
            response = await service.handle(StatusRequest(), "t2")
            status = response.status
            assert status["requests"]["computed"] == 1
            assert status["requests"]["status"] == 1
            assert status["backend"] == "serial"
            assert status["capacity"] == 2
            assert status["scale"] == "tiny"
            assert status["computations"] == 1

        asyncio.run(scenario())


class TestSweepHandler:
    def test_sweep_validates_grid_before_dispatch(self, service):
        async def scenario():
            request = SweepRequest(
                designs=("microcontroller",),
                methods=("bogus_method",),
                clock_periods=(3.0,),
            )
            with pytest.raises(TuningError, match="bogus_method"):
                await service.handle(request, "t")
            assert service.test_calls == []

        asyncio.run(scenario())
