"""Table 3 — the constraint parameter winning Fig. 10's selection,
per tuning method and clock period."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import ExperimentContext, ExperimentResult
from repro.experiments.fig10_method_comparison import METHOD_ORDER, sweep_all
from repro.flow.metrics import best_under_area_cap

#: The paper's Table 3 (clock periods 2.41 / 2.5 / 4 / 10 ns).
PAPER_TABLE3 = {
    "cell_strength_load_slope": (0.01, 0.05, 0.03, 0.03),
    "cell_strength_slew_slope": (0.01, 0.01, 0.05, 0.03),
    "cell_load_slope": (0.01, 0.01, 0.03, 1.00),
    "cell_slew_slope": (0.05, 0.01, 0.03, 0.01),
    "sigma_ceiling": (0.02, 0.02, 0.03, 0.03),
}


def run(
    context: ExperimentContext,
    periods: Optional[Sequence[float]] = None,
    area_cap: float = 0.10,
) -> ExperimentResult:
    """Build this experiment's rows (see the module docstring)."""
    sweeps = sweep_all(context, periods)
    chosen = sorted({period for (_m, period) in sweeps})
    rows = []
    for method in METHOD_ORDER:
        row = {"method": method}
        for index, period in enumerate(chosen):
            best = best_under_area_cap(sweeps[(method, period)], area_cap=area_cap)
            row[f"@{period:g}ns"] = best.parameter if best else None
            if index < len(PAPER_TABLE3[method]):
                row[f"paper_{index}"] = PAPER_TABLE3[method][index]
        rows.append(row)
    return ExperimentResult(
        experiment_id="table3",
        title="Winning constraint parameter per method and clock period",
        rows=rows,
        notes=(
            "paper_k columns give the paper's winners at its periods "
            "(2.41/2.5/4/10 ns); ours are selected by the same <10%-area, "
            "highest-sigma-reduction rule on the surrogate"
        ),
    )
