"""SARIF 2.1.0 output: schema validity, determinism, suppression.

No network in tests, so the official schema is distilled here into
the subset the emitter exercises — required top-level keys, the run /
tool / result shapes GitHub code scanning rejects uploads without.
When ``jsonschema`` is importable the document is validated against
that subset properly; otherwise the same constraints are asserted by
hand, so the test never silently weakens.
"""

import json

import pytest

from repro.lint import Finding, graph_rule_catalog, rule_catalog
from repro.lint.sarif import (
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    render_sarif,
    render_sarif_text,
)

try:
    import jsonschema
except ImportError:  # pragma: no cover - optional validator
    jsonschema = None

# The load-bearing subset of the official sarif-schema-2.1.0.json:
# what GitHub's ingestion actually requires of an upload.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string", "format": "uri"},
        "version": {"enum": ["2.1.0"]},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {
                                    "type": "integer", "minimum": 0
                                },
                                "level": {
                                    "enum": [
                                        "none", "note", "warning", "error"
                                    ]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "required": ["uri"],
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                                "suppressions": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "required": ["kind"],
                                        "properties": {
                                            "kind": {
                                                "enum": [
                                                    "inSource", "external"
                                                ]
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def finding(rule="DET001", path="src/repro/flow/x.py", line=8, message="m"):
    return Finding(
        path=path, line=line, column=5, rule_id=rule, message=message
    )


def full_catalog():
    return rule_catalog() + graph_rule_catalog()


def validate_subset(document):
    """Schema-validate when jsonschema exists, hand-assert otherwise."""
    if jsonschema is not None:
        jsonschema.validate(document, SARIF_SUBSET_SCHEMA)
        return
    assert document["version"] == "2.1.0"
    (run,) = document["runs"]
    assert run["tool"]["driver"]["name"]
    for result in run["results"]:
        assert result["message"]["text"]


class TestDocumentShape:
    def test_validates_against_schema_subset(self):
        document = render_sarif(
            [finding(), finding(rule="ASYNC001", line=3)],
            [finding(rule="API001", message="accepted")],
            catalog=full_catalog(),
        )
        validate_subset(document)
        assert document["$schema"] == SARIF_SCHEMA_URI
        assert document["version"] == SARIF_VERSION

    def test_rules_and_rule_index_agree(self):
        document = render_sarif([finding()], catalog=full_catalog())
        (run,) = document["runs"]
        rules = run["tool"]["driver"]["rules"]
        assert {r["id"] for r in rules} >= {
            "DET001", "ASYNC001", "LOCK001", "DET003", "ARCH001",
        }
        (result,) = run["results"]
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_locations_carry_region_and_srcroot(self):
        document = render_sarif([finding(line=42)], catalog=full_catalog())
        (result,) = document["runs"][0]["results"]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/flow/x.py"
        assert location["artifactLocation"]["uriBaseId"] == "SRCROOT"
        assert location["region"] == {"startLine": 42, "startColumn": 5}
        assert "SRCROOT" in document["runs"][0]["originalUriBaseIds"]

    def test_severity_maps_to_level(self):
        warning = Finding(
            path="a.py", line=1, column=1, rule_id="OBS001",
            message="m", severity="warning",
        )
        document = render_sarif([warning, finding()], catalog=full_catalog())
        levels = {
            r["ruleId"]: r["level"]
            for r in document["runs"][0]["results"]
        }
        assert levels == {"OBS001": "warning", "DET001": "error"}


class TestSuppressions:
    def test_baselined_findings_are_marked_suppressed(self):
        document = render_sarif(
            [finding()],
            [finding(rule="API001", message="debt")],
            catalog=full_catalog(),
        )
        results = document["runs"][0]["results"]
        by_rule = {r["ruleId"]: r for r in results}
        assert "suppressions" not in by_rule["DET001"]
        (suppression,) = by_rule["API001"]["suppressions"]
        assert suppression["kind"] == "external"


class TestDeterminism:
    def test_text_is_byte_deterministic_and_order_free(self):
        shuffled = [
            finding(path="src/b.py", line=9),
            finding(path="src/a.py", line=2, rule="API001"),
            finding(path="src/a.py", line=1),
        ]
        first = render_sarif_text(shuffled, catalog=full_catalog())
        second = render_sarif_text(
            list(reversed(shuffled)), catalog=full_catalog()
        )
        assert first == second
        assert first.endswith("\n")
        json.loads(first)  # stays parseable

    @pytest.mark.parametrize("payload", [[], [finding()]])
    def test_always_emits_a_runs_array(self, payload):
        document = render_sarif(payload, catalog=full_catalog())
        validate_subset(document)
        assert len(document["runs"]) == 1
