"""The redesigned top-level surface: lazy exports, CLI, config errors.

``import repro`` must stay cheap (the curated names resolve lazily on
first touch), the CLI must accept the shared execution flags everywhere
(and reject the removed ``cache`` alias), and the environment knobs
must fail loudly on typos.
"""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.errors import ConfigError, ReproError


class TestLazyPackage:
    """`import repro` is light; attributes resolve on first access."""

    def test_import_is_lazy(self):
        """Importing the package must not pull in the numeric stack or
        the flow machinery (checked in a pristine interpreter)."""
        import os
        from pathlib import Path

        import repro

        src_dir = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir
        code = (
            "import sys; import repro; "
            "heavy = [m for m in ('numpy', 'repro.flow', 'repro.synth', "
            "'repro.characterization') if m in sys.modules]; "
            "assert not heavy, f'eagerly imported: {heavy}'; "
            "print('lazy-ok')"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env=env,
        )
        assert "lazy-ok" in result.stdout

    def test_all_public_names_resolve(self):
        """Every name in ``__all__`` is importable from the top level."""
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_expected_surface(self):
        """The curated API covers the flow, pipeline, characterization,
        catalog and tracing entry points."""
        import repro

        for name in (
            "TuningFlow",
            "FlowConfig",
            "SynthesisRun",
            "ArtifactPipeline",
            "Tracer",
            "build_catalog",
            "Characterizer",
        ):
            assert name in repro.__all__

    def test_unknown_attribute_raises(self):
        """A missing attribute raises AttributeError, not ImportError."""
        import repro

        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_dir_lists_exports(self):
        """``dir(repro)`` advertises the lazy names for tab completion."""
        import repro

        assert set(repro.__all__) <= set(dir(repro))

    def test_top_level_import_matches_deep_import(self):
        """The lazy re-export is the same object as the deep import."""
        import repro
        from repro.flow.experiment import TuningFlow
        from repro.observe.tracer import Tracer

        assert repro.TuningFlow is TuningFlow
        assert repro.Tracer is Tracer


class TestConfigValidation:
    """Environment knobs fail loudly instead of silently defaulting."""

    def test_bad_scale_raises_config_error(self, monkeypatch):
        """A typo'd REPRO_SCALE names the bad value and the options."""
        from repro.flow.experiment import FlowConfig

        monkeypatch.setenv("REPRO_SCALE", "tiyn")
        with pytest.raises(ConfigError, match="tiyn"):
            FlowConfig.from_environment()

    def test_config_error_is_a_repro_error(self):
        """ConfigError slots into the package exception hierarchy."""
        assert issubclass(ConfigError, ReproError)

    def test_non_integer_jobs_raises(self, monkeypatch):
        """REPRO_JOBS must be an integer."""
        from repro.flow.experiment import FlowConfig

        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ConfigError, match="REPRO_JOBS"):
            FlowConfig.from_environment()

    def test_negative_jobs_raises(self, monkeypatch):
        """REPRO_JOBS must be >= 0 (0 = one worker per CPU)."""
        from repro.flow.experiment import FlowConfig

        monkeypatch.setenv("REPRO_JOBS", "-2")
        with pytest.raises(ConfigError, match=">= 0"):
            FlowConfig.from_environment()

    def test_valid_environment_accepted(self, monkeypatch):
        """The happy path still works, whitespace and case tolerated."""
        from repro.flow.experiment import FlowConfig

        monkeypatch.setenv("REPRO_SCALE", " Tiny ")
        monkeypatch.setenv("REPRO_JOBS", "3")
        config = FlowConfig.from_environment()
        assert config.n_workers == 3


class TestFromEnvPrecedence:
    """from_env: explicit argument > environment > default, per knob."""

    def test_defaults_without_env(self, monkeypatch):
        from repro.flow.experiment import FlowConfig

        for name in ("REPRO_SCALE", "REPRO_JOBS", "REPRO_KERNEL",
                     "REPRO_BACKEND"):
            monkeypatch.delenv(name, raising=False)
        config = FlowConfig.from_env()
        assert config.scale_name() == "quick"
        assert config.n_workers == 1
        assert config.cache is True
        assert config.tracer is None

    def test_environment_beats_default(self, monkeypatch):
        from repro.flow.experiment import FlowConfig

        monkeypatch.setenv("REPRO_SCALE", "tiny")
        monkeypatch.setenv("REPRO_JOBS", "4")
        monkeypatch.setenv("REPRO_KERNEL", "scalar")
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        config = FlowConfig.from_env()
        assert config.scale_name() == "tiny"
        assert config.n_workers == 4
        assert config.kernel == "scalar"
        assert config.backend == "serial"

    def test_explicit_argument_beats_environment(self, monkeypatch):
        from repro.flow.experiment import FlowConfig

        monkeypatch.setenv("REPRO_SCALE", "tiny")
        monkeypatch.setenv("REPRO_JOBS", "4")
        monkeypatch.setenv("REPRO_KERNEL", "scalar")
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        config = FlowConfig.from_env(
            scale="quick", jobs=2, kernel="vectorized", backend="process",
            cache=False,
        )
        assert config.scale_name() == "quick"
        assert config.n_workers == 2
        assert config.kernel == "vectorized"
        assert config.backend == "process"
        assert config.cache is False

    def test_explicit_bad_values_fail_loudly(self):
        from repro.flow.experiment import FlowConfig

        with pytest.raises(ConfigError, match="bogus"):
            FlowConfig.from_env(scale="bogus")
        with pytest.raises(ConfigError, match=">= 0"):
            FlowConfig.from_env(jobs=-1)
        with pytest.raises(ConfigError, match="unknown kernel"):
            FlowConfig.from_env(kernel="turbo")
        with pytest.raises(ConfigError, match="unknown backend"):
            FlowConfig.from_env(backend="cloud")

    def test_metrics_knob_resolves_with_same_precedence(self, monkeypatch):
        from repro.flow.experiment import FlowConfig

        monkeypatch.delenv("REPRO_METRICS", raising=False)
        assert FlowConfig.from_env().metrics is True
        monkeypatch.setenv("REPRO_METRICS", "off")
        assert FlowConfig.from_env().metrics is False
        assert FlowConfig.from_env(metrics=True).metrics is True
        monkeypatch.setenv("REPRO_METRICS", "maybe")
        with pytest.raises(ConfigError, match="REPRO_METRICS"):
            FlowConfig.from_env()

    def test_metrics_field_does_not_change_config_identity(self):
        """Flow memo keys and fingerprints ignore the metrics toggle."""
        from dataclasses import replace

        from repro.flow.experiment import FlowConfig

        config = FlowConfig.tiny()
        assert replace(config, metrics=False) == config

    def test_from_environment_is_a_thin_alias(self, monkeypatch):
        """The original entry point and from_env agree."""
        from repro.flow.experiment import FlowConfig

        monkeypatch.setenv("REPRO_SCALE", "tiny")
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert FlowConfig.from_environment() == FlowConfig.from_env()

    def test_build_context_goes_through_from_env(self, monkeypatch):
        """CLI knobs override the environment via the one resolver."""
        from repro.experiments.runner import build_context

        monkeypatch.setenv("REPRO_SCALE", "tiny")
        monkeypatch.setenv("REPRO_JOBS", "4")
        context = build_context(jobs=2, backend="serial")
        assert context.flow.config.n_workers == 2
        assert context.flow.config.backend == "serial"
        assert context.flow.config.scale_name() == "tiny"


class TestCliSurface:
    """Subcommand layout: shared flags, store, id shorthand."""

    def test_experiment_id_shorthand(self):
        """``python -m repro fig10 ...`` rewrites to ``run fig10 ...``."""
        from repro.__main__ import _normalize_argv

        assert _normalize_argv(["fig10", "--profile"]) == [
            "run",
            "fig10",
            "--profile",
        ]
        assert _normalize_argv(["list"]) == ["list"]
        assert _normalize_argv([]) == []

    def test_run_accepts_shared_flags(self):
        """The parent parser wires every execution flag into ``run``."""
        from repro.__main__ import _build_parser

        args = _build_parser().parse_args(
            ["run", "fig10", "-j", "2", "--no-cache", "--manifest",
             "--trace", "out.jsonl", "--profile"]
        )
        assert args.ids == ["fig10"]
        assert args.jobs == 2
        assert args.no_cache and args.manifest and args.profile
        assert args.trace == "out.jsonl"

    def test_store_stats(self, capsys):
        """``store stats`` reports both on-disk halves and exits 0."""
        from repro.__main__ import main

        assert main(["store", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "artifacts" in out

    def test_cache_alias_removed(self, capsys):
        """The deprecated ``cache`` alias is gone: the parser rejects it
        with a usage error naming the surviving subcommands."""
        from repro.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main(["cache", "stats"])
        assert excinfo.value.code == 2
        assert "invalid choice: 'cache'" in capsys.readouterr().err

    def test_serve_subcommand_parses(self):
        """``serve`` accepts its own flags plus the shared execution
        flags (one parent parser — the consolidated knob surface)."""
        from repro.__main__ import _build_parser

        args = _build_parser().parse_args(
            ["serve", "--port", "0", "--scale", "tiny",
             "--backend", "serial", "--max-pending", "3", "-j", "2"]
        )
        assert args.command == "serve"
        assert args.port == 0
        assert args.scale == "tiny"
        assert args.backend == "serial"
        assert args.max_pending == 3
        assert args.jobs == 2

    def test_serve_rejects_no_cache(self, capsys):
        """``serve --no-cache`` fails loudly: warm hits stream from the
        artifact store, so the service cannot run without it."""
        from repro.__main__ import main

        assert main(["serve", "--no-cache", "--port", "0"]) == 2
        assert "cache" in capsys.readouterr().err

    def test_traced_run_writes_jsonl_and_profile(
        self, tmp_path, monkeypatch, capsys
    ):
        """A traced CLI run (against a stub experiment) writes a
        readable JSONL trace and prints the time tree."""
        import repro.__main__ as cli
        import repro.experiments.runner as runner
        from repro.experiments.base import ExperimentResult
        from repro.observe import get_tracer, load_trace

        def fake_run(context):
            """Stub experiment recording one span and one counter."""
            tracer = get_tracer()
            with tracer.span("fake.work"):
                tracer.add("fake.items", 3)
            return ExperimentResult("fake", "stub", rows=[])

        fake_table = {"fake": fake_run}
        monkeypatch.setattr(runner, "ALL_EXPERIMENTS", fake_table)
        monkeypatch.setattr(cli, "ALL_EXPERIMENTS", fake_table)
        path = tmp_path / "out.jsonl"
        assert cli.main(["fake", "--trace", str(path), "--profile"]) == 0
        out = capsys.readouterr().out
        assert "spans written to" in out
        assert "experiment.fake" in out  # the rendered tree
        trace = load_trace(path)
        assert "fake.work" in trace.span_names()
        assert trace.counters["fake.items"] == 3

    def test_trace_dir_writes_per_experiment_artifacts(
        self, tmp_path, monkeypatch
    ):
        """``--trace-dir`` produces one ``<id>.trace.jsonl`` per
        experiment, each a self-contained trace."""
        import repro.__main__ as cli
        import repro.experiments.runner as runner
        from repro.experiments.base import ExperimentResult
        from repro.observe import get_tracer, load_trace

        def make_run(experiment_id):
            """A stub experiment factory recording one counted span."""

            def run(context):
                """Stub experiment body."""
                with get_tracer().span("stub.work"):
                    get_tracer().add("stub.items", 1)
                return ExperimentResult(experiment_id, "stub", rows=[])

            return run

        fake_table = {"one": make_run("one"), "two": make_run("two")}
        monkeypatch.setattr(runner, "ALL_EXPERIMENTS", fake_table)
        monkeypatch.setattr(cli, "ALL_EXPERIMENTS", fake_table)
        directory = tmp_path / "traces"
        assert cli.main(["run", "--all", "--trace-dir", str(directory)]) == 0
        for experiment_id in ("one", "two"):
            trace = load_trace(directory / f"{experiment_id}.trace.jsonl")
            assert f"experiment.{experiment_id}" in trace.span_names()
            assert "stub.work" in trace.span_names()
            assert trace.counters["stub.items"] == 1
