"""Threshold extraction (paper Sec. VI.B) and clustering."""

import numpy as np
import pytest

from repro.core.clusters import (
    cell_strength,
    cluster_by_strength,
    cluster_individually,
    strength_key,
)
from repro.core.threshold import (
    ceiling_threshold,
    equivalent_sigma_lut,
    extract_slope_threshold,
    slope_binary_lut,
    threshold_for_cluster,
)
from repro.errors import TuningError


class TestClustering:
    def test_strength_clusters_partition_library(self, statistical_library):
        clusters = cluster_by_strength(statistical_library)
        total = sum(len(cells) for cells in clusters.values())
        assert total == len(statistical_library)

    def test_strength_cluster_members_share_strength(self, statistical_library):
        clusters = cluster_by_strength(statistical_library)
        for key, cells in clusters.items():
            strengths = {cell_strength(c) for c in cells}
            assert len(strengths) == 1
            assert key == strength_key(strengths.pop())

    def test_strength_6_cluster_spans_families(self, statistical_library):
        clusters = cluster_by_strength(statistical_library)
        families = {c.name.split("_")[0] for c in clusters["strength_6"]}
        assert len(families) >= 4  # the Fig. 5 population

    def test_individual_clusters_are_singletons(self, statistical_library):
        clusters = cluster_individually(statistical_library)
        assert len(clusters) == len(statistical_library)
        assert all(len(cells) == 1 for cells in clusters.values())


class TestEquivalentLut:
    def test_is_entrywise_maximum(self, statistical_library):
        cells = [statistical_library.cell("INV_1"), statistical_library.cell("INV_8")]
        equivalent = equivalent_sigma_lut(cells)
        tables = [
            t.values
            for c in cells
            for _p, arc in c.arcs()
            for t in arc.sigma_tables()
        ]
        assert np.allclose(equivalent.values, np.stack(tables).max(axis=0))

    def test_dominated_by_weakest_cell(self, statistical_library):
        """INV_1 has the highest sigma, so it dominates the cluster max."""
        weak = equivalent_sigma_lut([statistical_library.cell("INV_1")])
        both = equivalent_sigma_lut(
            [statistical_library.cell("INV_1"), statistical_library.cell("INV_8")]
        )
        assert np.allclose(weak.values, both.values)

    def test_nominal_cells_rejected(self, nominal_library):
        with pytest.raises(TuningError):
            equivalent_sigma_lut([nominal_library.cell("INV_1")])


class TestSlopeThreshold:
    def test_loose_bounds_keep_whole_lut(self, statistical_library):
        cells = [statistical_library.cell("INV_1")]
        equivalent = equivalent_sigma_lut(cells)
        binary = slope_binary_lut(equivalent, load_bound=100.0, slew_bound=100.0)
        assert binary.all()
        threshold, rect = extract_slope_threshold(cells, 100.0, 100.0)
        assert threshold == pytest.approx(equivalent.values.max())
        assert rect.area == equivalent.values.size

    def test_tight_bounds_shrink_region(self, statistical_library):
        cells = [statistical_library.cell("INV_1")]
        loose, rect_loose = extract_slope_threshold(cells, 1.0, 0.06)
        tight, rect_tight = extract_slope_threshold(cells, 0.005, 0.005)
        assert tight <= loose
        assert rect_tight.area <= rect_loose.area

    def test_origin_always_flat(self, statistical_library):
        """Zero-filled first row/column guarantee a nonempty region."""
        cells = [statistical_library.cell("INV_1")]
        threshold, rect = extract_slope_threshold(cells, 1e-9, 1e-9)
        assert rect.area >= 1
        assert threshold > 0

    def test_threshold_read_at_far_corner(self, statistical_library):
        cells = [statistical_library.cell("INV_4")]
        equivalent = equivalent_sigma_lut(cells)
        threshold, rect = extract_slope_threshold(cells, 0.01, 0.06)
        row, col = rect.far_corner
        assert threshold == pytest.approx(equivalent.values[row, col])

    def test_invalid_bounds_rejected(self, statistical_library):
        cells = [statistical_library.cell("INV_1")]
        with pytest.raises(TuningError):
            extract_slope_threshold(cells, -1.0, 0.06)


class TestDispatch:
    def test_sigma_ceiling_is_identity(self):
        assert ceiling_threshold(0.02) == 0.02
        with pytest.raises(TuningError):
            ceiling_threshold(0.0)

    def test_dispatch_ceiling(self, statistical_library):
        threshold = threshold_for_cluster(
            [statistical_library.cell("INV_1")],
            kind="sigma_ceiling", load_bound=1.0, slew_bound=0.06,
            sigma_ceiling=0.02,
        )
        assert threshold == 0.02

    def test_dispatch_slope_kinds(self, statistical_library):
        cells = [statistical_library.cell("INV_1")]
        for kind in ("load_slope", "slew_slope"):
            threshold = threshold_for_cluster(
                cells, kind=kind, load_bound=0.01, slew_bound=0.06,
                sigma_ceiling=100.0,
            )
            assert threshold > 0

    def test_unknown_kind_rejected(self, statistical_library):
        with pytest.raises(TuningError):
            threshold_for_cluster(
                [statistical_library.cell("INV_1")],
                kind="nonsense", load_bound=1, slew_bound=1, sigma_ceiling=1,
            )
