"""Cross-module integration: the paper's pipeline end to end, small.

One deliberately compact run of the *entire* flow — catalog slice ->
MC characterization -> Fig. 2 combine -> tuning -> synthesis under
windows -> statistical STA — asserting the paper's causal chain:
restriction changes cell selection, which lowers design sigma, at an
area cost.
"""

import pytest

from repro.cells.catalog import build_catalog
from repro.characterization.characterize import Characterizer
from repro.core.tuner import LibraryTuner
from repro.liberty.parser import parse_liberty
from repro.liberty.writer import write_liberty
from repro.netlist.builder import NetlistBuilder
from repro.sta.paths import extract_worst_paths
from repro.sta.statistics import design_statistics
from repro.statlib.builder import build_statistical_library
from repro.synth.constraints import SynthesisConstraints
from repro.synth.synthesizer import synthesize


@pytest.fixture(scope="module")
def pipeline():
    """Everything up to the tuned library, built the paper-faithful way."""
    specs = build_catalog(
        families=["INV", "ND2", "NR2", "XNR2", "MUX2", "ADDF", "ADDH", "DFF"]
    )
    characterizer = Characterizer()
    samples = characterizer.sample_libraries(specs, n_samples=16, seed=42)
    statistical = build_statistical_library(samples)
    tuner = LibraryTuner(statistical)
    return specs, statistical, tuner


def build_design():
    builder = NetlistBuilder("datapath")
    builder.clock()
    a = builder.register(builder.input_bus("a", 10))
    b = builder.register(builder.input_bus("b", 10))
    total, carry = builder.ripple_adder(a, b)
    sel = builder.dff(builder.input("sel"))
    muxed = builder.mux_word(total, builder.xor_word(a, b), sel)
    builder.register(muxed + [carry])
    netlist = builder.netlist
    netlist.validate()
    return netlist


class TestEndToEnd:
    def test_full_causal_chain(self, pipeline):
        _specs, statistical, tuner = pipeline
        period = 2.2

        baseline = synthesize(
            build_design(), statistical, SynthesisConstraints(clock_period=period)
        )
        assert baseline.met

        tuning = tuner.tune("sigma_ceiling", 0.02)
        tuned = synthesize(
            build_design(),
            statistical,
            SynthesisConstraints(clock_period=period, windows=tuning.windows),
        )
        assert tuned.met

        base_paths = extract_worst_paths(baseline.timing)
        tuned_paths = extract_worst_paths(tuned.timing)
        base_stats = design_statistics(base_paths, statistical)
        tuned_stats = design_statistics(tuned_paths, statistical)

        # the headline causal chain of the paper:
        assert tuned.cell_histogram() != baseline.cell_histogram()
        assert tuned_stats.sigma < base_stats.sigma
        assert tuned.area >= baseline.area * 0.95  # no free lunch

    def test_statistical_library_roundtrips_through_liberty(self, pipeline):
        _specs, statistical, _tuner = pipeline
        parsed = parse_liberty(write_liberty(statistical))
        assert parsed.is_statistical
        tuner = LibraryTuner(parsed)
        original = LibraryTuner(statistical).tune("sigma_ceiling", 0.02)
        reparsed = tuner.tune("sigma_ceiling", 0.02)
        # tuning a round-tripped library yields the same windows
        assert set(reparsed.windows) == set(original.windows)
        for key, window in original.windows.items():
            other = reparsed.windows[key]
            if window is None:
                assert other is None
            else:
                assert other is not None
                assert other.max_load == pytest.approx(window.max_load, rel=1e-6)
                assert other.max_slew == pytest.approx(window.max_slew, rel=1e-6)

    def test_design_sigma_scales_with_correlation_assumption(self, pipeline):
        """Ablation of the paper's rho=0 assumption (Sec. V.B)."""
        _specs, statistical, _tuner = pipeline
        baseline = synthesize(
            build_design(), statistical, SynthesisConstraints(clock_period=2.2)
        )
        paths = extract_worst_paths(baseline.timing)
        sigmas = [
            design_statistics(paths, statistical, rho=rho).sigma
            for rho in (0.0, 0.25, 0.5, 1.0)
        ]
        assert sigmas == sorted(sigmas)
