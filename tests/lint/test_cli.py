"""End-to-end coverage of ``python -m repro lint``.

Drives :func:`repro.__main__.main` the way the shell would, against
small synthetic source trees — a clean tree exits 0, a seeded
violation exits 1, a baselined violation exits 0 again, and
``--update-baseline`` ratchets deterministically.
"""

import json

import pytest

from repro.__main__ import main

CLEAN = (
    "\"\"\"A clean deterministic stage.\"\"\"\n\n"
    "import numpy as np\n\n\n"
    "def draw(seed):\n"
    "    \"\"\"Seeded draw.\"\"\"\n"
    "    return np.random.default_rng(seed).normal()\n"
)

VIOLATION = (
    "\"\"\"A stage with a wall-clock read.\"\"\"\n\n"
    "import time\n\n\n"
    "def stage():\n"
    "    \"\"\"Nondeterministic on purpose (test seed).\"\"\"\n"
    "    return time.time()\n"
)


@pytest.fixture
def tree(tmp_path, monkeypatch):
    """A tiny src/repro checkout as the working directory."""
    package = tmp_path / "src" / "repro" / "flow"
    package.mkdir(parents=True)
    (package / "clean.py").write_text(CLEAN)
    monkeypatch.chdir(tmp_path)
    return tmp_path


def seed_violation(tree):
    (tree / "src" / "repro" / "flow" / "bad.py").write_text(VIOLATION)


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tree, capsys):
        assert main(["lint"]) == 0
        assert "0 new findings" in capsys.readouterr().out

    def test_seeded_violation_exits_one(self, tree, capsys):
        seed_violation(tree)
        assert main(["lint"]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "src/repro/flow/bad.py" in out

    def test_missing_path_exits_two(self, tree, capsys):
        assert main(["lint", "does/not/exist"]) == 2

    def test_noqa_suppresses_via_cli(self, tree):
        bad = tree / "src" / "repro" / "flow" / "bad.py"
        bad.write_text(
            VIOLATION.replace(
                "time.time()",
                "time.time()  # repro: noqa[DET001] wall time wanted here",
            )
        )
        assert main(["lint"]) == 0


class TestBaselineFlow:
    def test_update_then_pass_then_ratchet(self, tree, capsys):
        seed_violation(tree)
        assert main(["lint"]) == 1

        # Commit the debt: the same violation now passes...
        assert main(["lint", "--update-baseline"]) == 0
        assert (tree / "lint-baseline.json").is_file()
        assert main(["lint"]) == 0

        # ...a *new* violation still fails...
        worse = tree / "src" / "repro" / "flow" / "worse.py"
        worse.write_text(VIOLATION.replace("stage", "other_stage"))
        assert main(["lint"]) == 1

        # ...and fixing everything leaves stale entries the console
        # points at, which --update-baseline then retires.
        worse.unlink()
        (tree / "src" / "repro" / "flow" / "bad.py").unlink()
        capsys.readouterr()
        assert main(["lint"]) == 0
        assert "no longer match" in capsys.readouterr().out
        assert main(["lint", "--update-baseline"]) == 0
        payload = json.loads((tree / "lint-baseline.json").read_text())
        assert payload["findings"] == []

    def test_update_baseline_is_deterministic(self, tree):
        seed_violation(tree)
        (tree / "src" / "repro" / "flow" / "worse.py").write_text(
            VIOLATION.replace("stage", "other_stage")
        )
        assert main(["lint", "--update-baseline"]) == 0
        first = (tree / "lint-baseline.json").read_bytes()
        assert main(["lint", "--update-baseline"]) == 0
        assert (tree / "lint-baseline.json").read_bytes() == first

    def test_explicit_baseline_path(self, tree):
        seed_violation(tree)
        target = tree / "debt.json"
        assert main(["lint", "--baseline", str(target), "--update-baseline"]) == 0
        assert target.is_file()
        assert main(["lint", "--baseline", str(target)]) == 0
        assert main(["lint"]) == 1  # default baseline name unaffected

    def test_malformed_baseline_exits_two(self, tree):
        (tree / "lint-baseline.json").write_text("{broken")
        assert main(["lint"]) == 2


class TestJsonFormat:
    def test_json_payload_shape(self, tree, capsys):
        seed_violation(tree)
        assert main(["lint", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["summary"]["new"] == 1
        assert payload["summary"]["per_rule"] == {"DET001": 1}
        (entry,) = payload["findings"]
        assert entry["rule"] == "DET001"
        assert entry["path"] == "src/repro/flow/bad.py"
        assert entry["line"] == 8
        assert {r["id"] for r in payload["rules"]} == {
            "DET001", "DET002", "PROC001", "PROC002", "PROC003", "API001",
            "OBS001",
        }

    def test_json_counts_baselined(self, tree, capsys):
        seed_violation(tree)
        assert main(["lint", "--update-baseline"]) == 0
        capsys.readouterr()
        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"] == {
            "baselined": 1, "files": 2, "new": 0, "per_rule": {},
        }


class TestJsonDeterminism:
    def test_json_output_is_byte_identical_across_runs(self, tree, capsys):
        seed_violation(tree)
        (tree / "src" / "repro" / "flow" / "worse.py").write_text(
            VIOLATION.replace("stage", "other_stage")
        )
        assert main(["lint", "--format", "json"]) == 1
        first = capsys.readouterr().out
        assert main(["lint", "--format", "json"]) == 1
        second = capsys.readouterr().out
        assert first == second
        assert first.endswith("\n")

    def test_findings_sorted_by_path_line_rule(self, tree, capsys):
        seed_violation(tree)
        (tree / "src" / "repro" / "flow" / "worse.py").write_text(
            VIOLATION.replace("stage", "other_stage")
        )
        assert main(["lint", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        keys = [
            (entry["path"], entry["line"], entry["rule"])
            for entry in payload["findings"]
        ]
        assert keys == sorted(keys)


class TestStaleDebtFlow:
    def test_vanished_file_entry_is_reported_and_pruned(self, tree, capsys):
        seed_violation(tree)
        assert main(["lint", "--update-baseline"]) == 0
        (tree / "src" / "repro" / "flow" / "bad.py").unlink()
        capsys.readouterr()
        assert main(["lint", "--update-baseline"]) == 0
        out = capsys.readouterr().out
        assert "retiring stale baseline entry DET001" in out
        assert "src/repro/flow/bad.py" in out
        assert "(was 1)" in out
        payload = json.loads((tree / "lint-baseline.json").read_text())
        assert payload["findings"] == []

    def test_dropped_duplicate_count_is_reported(self, tree, capsys):
        seed_violation(tree)
        worse = tree / "src" / "repro" / "flow" / "worse.py"
        worse.write_text(VIOLATION.replace("stage", "other_stage"))
        assert main(["lint", "--update-baseline"]) == 0
        worse.unlink()
        capsys.readouterr()
        assert main(["lint", "--update-baseline"]) == 0
        out = capsys.readouterr().out
        assert "retiring stale baseline entry DET001" in out
        assert "(x1)" in out
        payload = json.loads((tree / "lint-baseline.json").read_text())
        assert len(payload["findings"]) == 1


class TestSarifFormat:
    def test_sarif_document_from_cli(self, tree, capsys):
        seed_violation(tree)
        assert main(["lint", "--format", "sarif"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        (result,) = document["runs"][0]["results"]
        assert result["ruleId"] == "DET001"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/flow/bad.py"
        assert location["region"]["startLine"] == 8

    def test_sarif_marks_baselined_as_suppressed(self, tree, capsys):
        seed_violation(tree)
        assert main(["lint", "--update-baseline"]) == 0
        capsys.readouterr()
        assert main(["lint", "--format", "sarif"]) == 0
        document = json.loads(capsys.readouterr().out)
        (result,) = document["runs"][0]["results"]
        assert result["suppressions"][0]["kind"] == "external"


class TestGraphFlag:
    def test_graph_run_on_clean_tree(self, tree, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tree / ".cache"))
        assert main(["lint", "--graph"]) == 0
        out = capsys.readouterr().out
        assert "lint: graph" in out
        assert "built" in out
        assert main(["lint", "--graph"]) == 0
        assert "cache hit" in capsys.readouterr().out

    def test_graph_finds_async_blocking(self, tree, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tree / ".cache"))
        serve = tree / "src" / "repro" / "serve"
        serve.mkdir()
        (serve / "handler.py").write_text(
            "\"\"\"A blocking handler.\"\"\"\n\n"
            "import time\n\n\n"
            "async def handle():\n"
            "    \"\"\"Blocks the loop (bad on purpose).\"\"\"\n"
            "    time.sleep(1)\n"
        )
        assert main(["lint", "--graph"]) == 1
        out = capsys.readouterr().out
        assert "ASYNC001" in out
        assert main(["lint"]) == 0  # per-file rules alone stay quiet

    def test_graph_rules_join_json_catalog(self, tree, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tree / ".cache"))
        assert main(["lint", "--graph", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        ids = {r["id"] for r in payload["rules"]}
        assert {"ASYNC001", "LOCK001", "DET003", "ARCH001"} <= ids


class TestListRules:
    def test_list_rules_prints_catalog(self, tree, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "DET001", "DET002", "PROC001", "PROC002", "API001",
            "ASYNC001", "LOCK001", "DET003", "ARCH001",
        ):
            assert rule_id in out
