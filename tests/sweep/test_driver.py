"""The incremental sweep driver: cold/warm behaviour, statuses,
backend equivalence, and the zero-recharacterization guarantee.

Sweeps here run at the tiny scale on a per-test cache directory so
every test controls exactly which artifacts are warm.
"""

from __future__ import annotations

import pytest

from repro.characterization.characterize import (
    characterization_call_count,
    reset_characterization_call_count,
)
from repro.errors import ConfigError, ReproError
from repro.flow.experiment import FlowConfig
from repro.sweep import SweepGrid, run_sweep
from repro.synth.synthesizer import (
    reset_synthesis_call_count,
    synthesis_call_count,
)

#: The one-point grid most tests reuse (cheapest possible sweep).
POINT_GRID = SweepGrid(
    designs=("microcontroller",),
    methods=("sigma_ceiling",),
    parameters=(0.5,),
    clock_periods=(3.0,),
)


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    """A fresh cache/store so each test starts fully cold."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path / "cache"


def _config(**overrides) -> FlowConfig:
    from dataclasses import replace

    return replace(FlowConfig.tiny(), **overrides)


class TestGrid:
    def test_default_grid_expands_every_method(self):
        from repro.core.methods import TUNING_METHODS

        grid = SweepGrid(parameters=(0.5,), clock_periods=(3.0,))
        points = grid.points()
        assert {point.method for point in points} == set(TUNING_METHODS)
        assert all(point.design == "microcontroller" for point in points)

    def test_default_parameters_follow_each_method(self):
        from repro.core.methods import method_by_name

        grid = SweepGrid(methods=("sigma_ceiling",), clock_periods=(3.0,))
        expected = method_by_name("sigma_ceiling").sweep_values()
        assert tuple(p.parameter for p in grid.points()) == expected

    def test_nested_axis_order_is_deterministic(self):
        grid = SweepGrid(
            designs=("microcontroller", "sensor"),
            methods=("sigma_ceiling",),
            parameters=(0.25, 0.5),
            clock_periods=(3.0, 4.0),
        )
        labels = [point.label() for point in grid.points()]
        assert labels == sorted(labels, key=labels.index)  # stable
        assert labels[0] == "microcontroller/sigma_ceiling/0.25@3"
        assert len(labels) == 8

    def test_empty_axes_rejected(self):
        with pytest.raises(ConfigError):
            SweepGrid(designs=())
        with pytest.raises(ConfigError):
            SweepGrid(clock_periods=())
        with pytest.raises(ConfigError):
            SweepGrid(methods=())

    def test_unknown_design_fails_before_any_work(self, cache_dir):
        grid = SweepGrid(
            designs=("mcu",), methods=("sigma_ceiling",),
            parameters=(0.5,), clock_periods=(3.0,),
        )
        with pytest.raises(ConfigError, match="unknown design"):
            run_sweep(_config(), grid, ledger=False)

    def test_unknown_method_fails_before_any_work(self):
        with pytest.raises(ReproError, match="unknown tuning method"):
            SweepGrid(
                methods=("sigma_ceilings",), clock_periods=(3.0,)
            ).points()

    def test_cache_required(self):
        with pytest.raises(ConfigError, match="artifact store"):
            run_sweep(_config(cache=False), POINT_GRID, ledger=False)


class TestIncremental:
    def test_cold_runs_then_warm_hits_everything(self, cache_dir):
        """Acceptance: a warm re-run of the full grid schedules nothing
        and performs zero synthesis and characterization calls."""
        cold = run_sweep(_config(), POINT_GRID, ledger=False)
        assert cold.scheduled > 0
        assert [r.status for r in cold.results] == ["run"]

        reset_synthesis_call_count()
        reset_characterization_call_count()
        warm = run_sweep(_config(), POINT_GRID, ledger=False)
        assert warm.scheduled == 0
        assert [r.status for r in warm.results] == ["hit"]
        assert synthesis_call_count() == 0
        assert characterization_call_count() == 0
        assert warm.comparisons() == cold.comparisons()

    def test_new_design_schedules_only_its_points(self, cache_dir):
        run_sweep(_config(), POINT_GRID, ledger=False)
        widened = SweepGrid(
            designs=("microcontroller", "sensor"),
            methods=POINT_GRID.methods,
            parameters=POINT_GRID.parameters,
            clock_periods=POINT_GRID.clock_periods,
        )
        result = run_sweep(_config(), widened, ledger=False)
        statuses = {
            r.point.design: r.status for r in result.results
        }
        assert statuses == {"microcontroller": "hit", "sensor": "run"}

    def test_new_clock_schedules_only_new_points(self, cache_dir):
        run_sweep(_config(), POINT_GRID, ledger=False)
        widened = SweepGrid(
            designs=POINT_GRID.designs,
            methods=POINT_GRID.methods,
            parameters=POINT_GRID.parameters,
            clock_periods=(3.0, 3.5),
        )
        result = run_sweep(_config(), widened, ledger=False)
        statuses = {
            r.point.clock_period: r.status for r in result.results
        }
        assert statuses == {3.0: "hit", 3.5: "run"}

    def test_missing_baseline_only_is_a_skip(self, cache_dir):
        """A point whose tuned chain is warm but whose shared baseline
        artifacts vanished is 'skip': one baseline task covers it."""
        from repro.core.methods import method_by_name
        from repro.flow.experiment import TuningFlow
        from repro.parallel import ArtifactStore
        from repro.sweep.driver import point_keys

        run_sweep(_config(), POINT_GRID, ledger=False)
        flow = TuningFlow(_config())
        (point,) = POINT_GRID.points()
        _tuning, _tuned, baseline = point_keys(
            flow.statlib_key,
            flow.design_key,
            method_by_name(point.method),
            point,
            flow.config.guard_band,
        )
        store = ArtifactStore()
        for stage, key in baseline:
            store.path_for(stage, key).unlink()

        result = run_sweep(_config(), POINT_GRID, ledger=False)
        assert [r.status for r in result.results] == ["skip"]
        assert result.scheduled == 1  # the one baseline task

        warm = run_sweep(_config(), POINT_GRID, ledger=False)
        assert warm.scheduled == 0

    def test_ledger_records_counts(self, cache_dir, tmp_path):
        from repro.observe.ledger import RunLedger

        ledger = RunLedger(tmp_path / "ledger.jsonl")
        run_sweep(_config(), POINT_GRID, ledger=ledger)
        (record,) = ledger.read(experiment="sweep")
        assert record.counters["sweep.points"] == 1
        assert record.counters["sweep.run"] == 1
        assert record.counters["sweep.scheduled"] > 0
        assert record.scale == "tiny"
        assert "statlib" in record.fingerprints
        assert "design/microcontroller" in record.fingerprints
        assert any(
            key.startswith("sigma_reduction[") for key in record.metrics
        )


class TestBackendEquivalence:
    def test_sweep_results_identical_across_backends(
        self, tmp_path, monkeypatch
    ):
        """Acceptance: the same cold grid produces identical comparison
        lists on the serial, process and queue backends."""
        reference = None
        for backend in ("serial", "process", "queue"):
            monkeypatch.setenv(
                "REPRO_CACHE_DIR", str(tmp_path / f"cache-{backend}")
            )
            result = run_sweep(
                _config(backend=backend, n_workers=2),
                POINT_GRID,
                ledger=False,
            )
            assert result.backend in (backend, "serial")
            if reference is None:
                reference = result.comparisons()
            else:
                assert result.comparisons() == reference
