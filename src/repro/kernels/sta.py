"""Whole-level STA evaluation: many arc groups, one interpolation.

The STA engine walks the timing graph level by level; each level holds
many arc groups (same cell, same arc), each needing the max over its
delay (or transition, or sigma) tables at its own query points.
:func:`evaluate_table_groups` resolves all groups of a level at once:

* ``"vectorized"`` — stack every table of every group into one
  :class:`~repro.kernels.lut.LutBatch` and gather-interpolate the
  concatenated queries in one shot, max-merging table variants with a
  masked second pass.  Falls back to per-group
  :func:`~repro.liberty.lut.bilinear_interpolate_many` when table
  shapes are heterogeneous (never the case for one characterizer's
  grids) or when there is only one group (a batch of one would only
  add stacking overhead).
* ``"scalar"`` — the reference: one scalar bilinear lookup per query
  per table.

Max-merging is exact and commutative for floats, and both paths use
identical interpolation arithmetic, so results are bit-identical —
``tests/kernels`` holds both to the scalar lookup.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import LibertyError
from repro.kernels.dispatch import resolve_kernel
from repro.kernels.lut import LutBatch, batch_interpolate, interpolate_many_scalar
from repro.liberty.lut import bilinear_interpolate_many
from repro.liberty.model import Lut


def _maxmerge_many(
    tables: Sequence[Lut], slews: np.ndarray, loads: np.ndarray
) -> np.ndarray:
    """Max over per-table vectorized interpolation (one group)."""
    merged: Optional[np.ndarray] = None
    for table in tables:
        values = bilinear_interpolate_many(table, slews, loads)
        merged = values if merged is None else np.maximum(merged, values)
    if merged is None:
        raise LibertyError("cannot interpolate an empty table group")
    return merged


def _maxmerge_scalar(
    tables: Sequence[Lut], slews: np.ndarray, loads: np.ndarray
) -> np.ndarray:
    """Max over per-table scalar-reference interpolation (one group)."""
    merged: Optional[np.ndarray] = None
    for table in tables:
        values = interpolate_many_scalar(table, slews, loads)
        merged = values if merged is None else np.maximum(merged, values)
    if merged is None:
        raise LibertyError("cannot interpolate an empty table group")
    return merged


def _evaluate_batched(
    groups: Sequence[Sequence[Lut]],
    slews_list: Sequence[np.ndarray],
    loads_list: Sequence[np.ndarray],
) -> List[np.ndarray]:
    """All groups through one stacked gather-interpolation."""
    broadcasts = [
        np.broadcast_arrays(
            np.asarray(slews, dtype=float), np.asarray(loads, dtype=float)
        )
        for slews, loads in zip(slews_list, loads_list)
    ]
    shapes = [pair[0].shape for pair in broadcasts]
    sizes = np.array([pair[0].size for pair in broadcasts], dtype=np.intp)
    starts = np.concatenate([[0], np.cumsum(sizes)])
    q_slew = np.concatenate([pair[0].ravel() for pair in broadcasts])
    q_load = np.concatenate([pair[1].ravel() for pair in broadcasts])

    batch = LutBatch([table for group in groups for table in group])
    offsets = np.concatenate(
        [[0], np.cumsum([len(group) for group in groups])]
    )
    out = np.empty(q_slew.size)
    max_variants = max(len(group) for group in groups)
    for variant in range(max_variants):
        selected = [
            index for index, group in enumerate(groups) if len(group) > variant
        ]
        tids = np.concatenate([
            np.full(sizes[index], offsets[index] + variant, dtype=np.intp)
            for index in selected
        ])
        query_index = np.concatenate([
            np.arange(starts[index], starts[index] + sizes[index])
            for index in selected
        ])
        values = batch_interpolate(
            batch, tids, q_slew[query_index], q_load[query_index]
        )
        if variant == 0:  # every group has at least one table
            out[query_index] = values
        else:
            out[query_index] = np.maximum(out[query_index], values)
    return [
        out[starts[index]:starts[index] + sizes[index]].reshape(shapes[index])
        for index in range(len(groups))
    ]


def evaluate_table_groups(
    groups: Sequence[Sequence[Lut]],
    slews_list: Sequence[np.ndarray],
    loads_list: Sequence[np.ndarray],
    kernel: Optional[str] = None,
) -> List[np.ndarray]:
    """Per group: elementwise max over its tables at its query points.

    ``groups[g]`` is a non-empty sequence of LUTs (e.g. the rise/fall
    delay tables of one arc); ``slews_list[g]``/``loads_list[g]`` are
    its broadcast-compatible query arrays.  Returns one value array per
    group, bit-identical across kernels.
    """
    if len(groups) != len(slews_list) or len(groups) != len(loads_list):
        raise LibertyError("groups and query lists must align")
    for group in groups:
        if not group:
            raise LibertyError("cannot interpolate an empty table group")
    kernel = resolve_kernel(kernel)
    if kernel == "scalar":
        return [
            _maxmerge_scalar(group, slews, loads)
            for group, slews, loads in zip(groups, slews_list, loads_list)
        ]
    if len(groups) == 1:
        return [_maxmerge_many(groups[0], slews_list[0], loads_list[0])]
    shapes = {table.values.shape for group in groups for table in group}
    if len(shapes) != 1:
        return [
            _maxmerge_many(group, slews, loads)
            for group, slews, loads in zip(groups, slews_list, loads_list)
        ]
    return _evaluate_batched(groups, slews_list, loads_list)
