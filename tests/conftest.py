"""Shared fixtures: a reduced catalog and its libraries.

The reduced catalog covers every structural feature (single-stage
gates, stacked gates, multi-output adders, sequential cells, buffers)
while keeping characterization fast; full-catalog behaviour is covered
by dedicated tests in ``tests/cells`` and the benchmarks.
"""

from __future__ import annotations

import pytest

from repro.cells.catalog import build_catalog
from repro.characterization.characterize import Characterizer

#: Families exercising every cell topology the code distinguishes.
SMALL_FAMILIES = [
    "INV",
    "BUF",
    "ND2",
    "ND4",
    "NR2",
    "NR2B",
    "OR2",
    "XNR2",
    "MUX2",
    "ADDH",
    "ADDF",
    "DFF",
    "DFFR",
    "LATQ",
]


@pytest.fixture(scope="session")
def small_specs():
    """Catalog slice with every topology class."""
    return build_catalog(families=SMALL_FAMILIES)


@pytest.fixture(scope="session")
def full_specs():
    """The full 304-cell Appendix A catalog."""
    return build_catalog()


@pytest.fixture(scope="session")
def characterizer():
    return Characterizer()


@pytest.fixture(scope="session")
def nominal_library(characterizer, small_specs):
    """Nominal library of the reduced catalog."""
    return characterizer.nominal_library(small_specs)


@pytest.fixture(scope="session")
def statistical_library(characterizer, small_specs):
    """Statistical library (30 MC samples) of the reduced catalog."""
    return characterizer.statistical_library(small_specs, n_samples=30, seed=7)


@pytest.fixture(scope="session")
def full_statistical_library(characterizer, full_specs):
    """Statistical library of the full 304-cell catalog."""
    return characterizer.statistical_library(full_specs, n_samples=30, seed=7)
