"""Bench: extension — power-targeted tuning (paper Sec. III).

The paper notes its metric "can also be adjusted to measure the
influence of local variation on other properties, such as transition
power".  This bench runs that adjustment: switching-energy sigma LUTs
drive the same restriction machinery, and — because energy mismatch
*grows* with device width while delay mismatch shrinks — the power
windows cut the strong variants the delay windows leave alone.
"""

import numpy as np
from conftest import show

from repro.cells.catalog import build_catalog
from repro.characterization.characterize import Characterizer
from repro.core.power_tuning import (
    compare_window_maps,
    pin_equivalent_power_sigma,
    power_sigma_windows,
)
from repro.core.tuner import LibraryTuner
from repro.experiments.base import ExperimentResult

_FAMILIES = ["INV", "ND2", "NR2", "XNR2", "ADDF"]


def test_ext_power_tuning(benchmark, context):
    specs = build_catalog(families=_FAMILIES)
    library = Characterizer(include_power=True).statistical_library(
        specs, n_samples=30, seed=13
    )

    def run():
        sigmas = np.stack([
            pin_equivalent_power_sigma(cell.pin(pin.name)).values
            for cell in library
            for pin in cell.output_pins()
        ])
        ceiling = float(np.quantile(sigmas, 0.7))
        power = power_sigma_windows(library, ceiling)
        delay = LibraryTuner(library).tune("sigma_ceiling", 0.03).windows
        overlaps = compare_window_maps(delay, power)
        rows = []
        for name in ("INV_1", "INV_4", "INV_8", "INV_16", "INV_32"):
            window = power[(name, "Z")]
            grid = pin_equivalent_power_sigma(library.cell(name).pin("Z"))
            rows.append({
                "cell": name,
                "power_sigma_max_pJ": float(grid.values.max()),
                "power_max_slew_ns": window.max_slew if window else 0.0,
                "delay_vs_power_overlap": round(overlaps[(name, "Z")], 3),
            })
        return rows, ceiling

    rows, ceiling = benchmark.pedantic(run, rounds=1, iterations=1)
    result = ExperimentResult(
        experiment_id="ext-power",
        title=f"Power-sigma tuning (ceiling {ceiling:.2e} pJ) vs delay tuning",
        rows=rows,
        notes=(
            "energy sigma grows with drive strength (short-circuit current "
            "scales with width), so the power windows clamp the slow-edge "
            "region of the STRONG cells — the mirror image of delay tuning"
        ),
    )
    show(result)
    sigma_maxima = [r["power_sigma_max_pJ"] for r in rows]
    assert sigma_maxima == sorted(sigma_maxima)  # grows with strength
    # the strong inverter's slew axis gets clamped, the weak one's not
    assert rows[-1]["power_max_slew_ns"] < rows[0]["power_max_slew_ns"]
