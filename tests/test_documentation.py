"""Documentation-quality regression tests.

Every public module, class and function of the library must carry a
docstring — the deliverable is a library someone else adopts, and
these tests keep the bar from eroding.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _public_modules():
    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "__main__" in info.name:
            continue
        modules.append(importlib.import_module(info.name))
    return modules


MODULES = _public_modules()


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and len(module.__doc__.strip()) > 10


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_callables_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_") or not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, f"{module.__name__}: missing docstrings on {undocumented}"


def test_design_doc_covers_every_figure_and_table():
    with open("DESIGN.md", encoding="utf-8") as handle:
        design = handle.read()
    for item in [f"Fig. {i}" for i in range(1, 17)] + ["Table 1", "Table 2", "Table 3"]:
        assert item in design, f"DESIGN.md misses {item}"


def test_experiments_doc_covers_every_figure_and_table():
    with open("EXPERIMENTS.md", encoding="utf-8") as handle:
        text = handle.read()
    for experiment_id in (
        [f"fig{i:02d}" for i in range(1, 17)] + ["table1", "table2", "table3"]
    ):
        assert experiment_id in text, f"EXPERIMENTS.md misses {experiment_id}"
