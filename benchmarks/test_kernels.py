"""Bench: scalar reference vs vectorized kernel, cold fig10-style slice.

One cold pass per kernel through the pipeline the Fig. 10 experiment
exercises — Monte-Carlo statistical characterization, synthesis-side
STA, worst-path extraction and design statistics — with no cache in
play.  The two legs must be bit-identical (that is the whole contract
of :mod:`repro.kernels`), and the vectorized leg must be at least
``MIN_SPEEDUP`` x faster; both land in ``BENCH_<runid>.json``.
"""

from __future__ import annotations

import time

from conftest import show

from repro.cells.catalog import build_catalog, family_strengths
from repro.cells.naming import format_cell_name, parse_cell_name
from repro.characterization.characterize import Characterizer
from repro.experiments.base import ExperimentResult
from repro.kernels.dispatch import use_kernel
from repro.netlist.builder import NetlistBuilder
from repro.sta.paths import extract_worst_paths
from repro.sta.statistics import design_statistics
from repro.synth.constraints import SynthesisConstraints
from repro.synth.synthesizer import synthesize

#: Acceptance floor for the vectorized kernel on the cold slice.
MIN_SPEEDUP = 5.0

#: A catalog slice with every topology class the bench design binds.
FAMILIES = ["INV", "BUF", "ND2", "NR2", "ADDF", "DFF"]


def _bind(netlist, specs, strength=2.0):
    cache = {}
    for instance in netlist:
        if instance.family not in cache:
            strengths = family_strengths(specs, instance.family)
            chosen = min(strengths, key=lambda s: abs(s - strength))
            parsed = parse_cell_name(f"{instance.family}_1")
            cache[instance.family] = format_cell_name(
                parsed.function, chosen, n_inputs=parsed.n_inputs,
                ability=parsed.ability,
            )
        instance.cell = cache[instance.family]
    return netlist


def _design(specs):
    """Registered 8-bit ripple adder — deep carry chain, wide levels."""
    builder = NetlistBuilder("kernelbench")
    builder.clock()
    a = builder.register(builder.input_bus("a", 8))
    b = builder.register(builder.input_bus("b", 8))
    total, carry = builder.ripple_adder(a, b)
    builder.register(total + [carry])
    builder.output("co", carry)
    netlist = builder.netlist
    netlist.validate()
    return _bind(netlist, specs)


def _cold_slice(kernel, specs):
    """Cold characterize + synthesize + statistics under one kernel."""
    with use_kernel(kernel):
        library = Characterizer(kernel=kernel).statistical_library(
            specs, n_samples=10, seed=3, use_cache=False
        )
        synthesis = synthesize(
            _design(specs), library, SynthesisConstraints(clock_period=2.4)
        )
        paths = extract_worst_paths(synthesis.timing)
        return design_statistics(paths, library, kernel=kernel)


def test_kernel_speedup(benchmark):
    specs = build_catalog(families=FAMILIES)

    start = time.perf_counter()
    scalar_stats = _cold_slice("scalar", specs)
    scalar_s = time.perf_counter() - start

    start = time.perf_counter()
    vectorized_stats = _cold_slice("vectorized", specs)
    vectorized_s = time.perf_counter() - start

    # the contract first: identical science, or the speedup is moot
    assert scalar_stats == vectorized_stats

    speedup = scalar_s / vectorized_s
    benchmark.extra_info["n_cells"] = len(specs)
    benchmark.extra_info["scalar_s"] = round(scalar_s, 4)
    benchmark.extra_info["vectorized_s"] = round(vectorized_s, 4)
    benchmark.extra_info["speedup"] = round(speedup, 3)

    show(ExperimentResult(
        experiment_id="kernels",
        title="Cold fig10-style slice: scalar reference vs vectorized kernel",
        rows=[
            {
                "leg": "scalar",
                "wall_s": round(scalar_s, 4),
                "speedup": 1.0,
                "design_sigma": round(scalar_stats.sigma, 6),
            },
            {
                "leg": "vectorized",
                "wall_s": round(vectorized_s, 4),
                "speedup": round(speedup, 3),
                "design_sigma": round(vectorized_stats.sigma, 6),
            },
        ],
        notes=f"bit-identical legs; floor {MIN_SPEEDUP:.0f}x",
    ))
    print(
        f"\nscalar {scalar_s:.2f}s  vectorized {vectorized_s:.2f}s  "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized kernel only {speedup:.1f}x faster than scalar "
        f"(floor {MIN_SPEEDUP}x)"
    )

    # timed leg for the bench JSON: one cold vectorized slice
    benchmark.pedantic(
        _cold_slice, args=("vectorized", specs), rounds=1, iterations=1
    )
