"""Corner validation of extracted paths (paper Sec. VII.C).

Extracts a short, a medium and a long worst path from the baseline
design, Monte-Carlos each (N=200) across the fast/typical/slow corners
and with/without global variation, and prints the paper's Figs. 15-16
series: corner scaling of mean vs sigma, and the local-variation share
decaying with path depth.

Run:  python examples/corner_validation.py
"""

from __future__ import annotations

from repro.experiments.base import ExperimentContext
from repro.flow.pathmc import PathMonteCarlo, pick_paths_by_depth
from repro.variation.process import CORNERS


def main() -> None:
    context = ExperimentContext()
    flow = context.flow
    period = context.high_performance_period
    baseline = flow.baseline(period)
    targets = (3, 18, 57) if context.is_paper_scale else (3, 12, 28)
    paths = pick_paths_by_depth(baseline.paths, targets)
    mc = PathMonteCarlo(flow.specs)

    print(f"baseline @ {period:g} ns; extracted paths:")
    for label, path in zip(("short", "medium", "long"), paths):
        print(f"  {label}: {path.depth} cells, mean arrival {path.arrival:.3f} ns")

    print("\nFig. 15 — corner Monte Carlo (N=200), relative to typical:")
    for label, path in zip(("short", "medium", "long"), paths):
        typical = mc.sample_path(path, corner=CORNERS["typical"], seed=15)
        for name, corner in CORNERS.items():
            result = mc.sample_path(path, corner=corner, seed=15)
            print(
                f"  {label:6s} {name:8s} mean {result.mean:7.4f} ns "
                f"({result.mean / typical.mean:5.3f}x)  sigma {result.sigma:7.5f} ns "
                f"({result.sigma / typical.sigma:5.3f}x)"
            )

    print("\nFig. 16 — local share of total variation:")
    for label, path in zip(("short", "medium", "long"), paths):
        total = mc.sample_path(path, seed=16, include_global=True)
        local = mc.sample_path(path, seed=16, include_global=False)
        print(
            f"  {label:6s} depth {path.depth:3d}: sigma local {local.sigma:.5f} / "
            f"total {total.sigma:.5f} ns -> local share "
            f"{local.sigma / total.sigma:.0%}"
        )
    print("(paper: ~65% short, ~37% medium, ~6% long — decaying with depth)")


if __name__ == "__main__":
    main()
