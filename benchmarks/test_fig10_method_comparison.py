"""Bench: Fig. 10 — the headline result.

For every tuning method, its best feasible parameter under the 10%
area cap, at every Table 1 operating point.  The shape to reproduce:
the sigma ceiling achieves the largest sigma reduction (paper: 37% at
7% area on the high-performance design), the strength-based methods
give decent reductions at near-zero area overhead, and relaxed timing
has a higher absolute design sigma than constrained timing.
"""

from conftest import show

from repro.experiments import fig10_method_comparison


def test_fig10_method_comparison(benchmark, context):
    result = benchmark.pedantic(
        fig10_method_comparison.run, args=(context,), rounds=1, iterations=1
    )
    show(result)
    rows = [r for r in result.rows if r["sigma_reduction"] is not None]
    assert rows, "no feasible tuning run under the area cap"

    # every reported bar respects the paper's <10% area selection rule
    assert all(r["area_increase"] < 0.10 for r in rows)

    # the sigma ceiling delivers a substantial reduction somewhere
    ceiling = [r for r in rows if "ceiling" in r["method"]]
    assert ceiling
    best_ceiling = max(r["sigma_reduction"] for r in ceiling)
    assert best_ceiling > 0.20  # paper: 0.37 at the high-perf point

    # relaxed timing -> higher absolute design sigma (paper annotation)
    periods = sorted({r["clock_ns"] for r in result.rows})
    baseline_sigma = {
        p: context.flow.baseline(p).design_sigma for p in periods
    }
    assert baseline_sigma[periods[-1]] > baseline_sigma[periods[0]]

    # strength-based methods exist with low area cost
    strength = [
        r for r in rows
        if "strength" in r["method"] and r["sigma_reduction"] > 0
    ]
    assert strength
    assert min(r["area_increase"] for r in strength) < 0.06
