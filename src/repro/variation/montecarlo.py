"""Monte-Carlo sampling of process variation (paper Sec. III/IV).

The paper creates N distinct libraries "from a Monte Carlo sampling
that includes the effect of local variations" and combines them into a
statistical library.  The sampler here produces exactly the random
inputs that per-library characterization needs:

* one :class:`GlobalVariation` per library sample (shared by every
  cell on the die — only used when global variation is enabled, e.g.
  for the Fig. 16 experiment);
* one :class:`ArcVariation` per (cell, timing-arc) — two independent
  networks (pull-up for rise, pull-down for fall), each with a
  threshold-voltage and a relative-beta perturbation whose sigmas
  follow the Pelgrom law for the network geometry.

Sampling is driven by a ``numpy.random.Generator`` so every experiment
is reproducible from a single integer seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.variation.pelgrom import PelgromModel


@dataclass(frozen=True)
class NetworkGeometry:
    """Geometry of one switching network (pull-up or pull-down).

    ``width`` is the per-device gate width (um), ``length`` the channel
    length (um) and ``stack`` the number of series devices on the worst
    switching path.
    """

    width: float
    length: float
    stack: int = 1


@dataclass(frozen=True)
class GlobalVariation:
    """Die-level (inter-die) parameter shifts, shared by all cells."""

    dvth: float = 0.0
    dbeta_rel: float = 0.0
    dlength_rel: float = 0.0

    @staticmethod
    def none() -> "GlobalVariation":
        """The zero global variation (local-only Monte Carlo)."""
        return GlobalVariation(0.0, 0.0, 0.0)


@dataclass(frozen=True)
class ArcVariation:
    """Local (mismatch) perturbation of one timing arc.

    Rise delays are produced by the pull-up network, fall delays by the
    pull-down network; the two are perturbed independently.
    """

    dvth_rise: float = 0.0
    dbeta_rise: float = 0.0
    dvth_fall: float = 0.0
    dbeta_fall: float = 0.0

    @staticmethod
    def none() -> "ArcVariation":
        """The zero local variation (nominal characterization)."""
        return ArcVariation(0.0, 0.0, 0.0, 0.0)


#: Per-cell variation: arc key (input_pin, output_pin) -> ArcVariation.
CellVariation = Dict[Tuple[str, str], ArcVariation]


@dataclass(frozen=True)
class GlobalSigmas:
    """Inter-die sigma budget (used by Fig. 15/16 experiments).

    Calibrated so the local-variation share of a short path's total
    sigma lands near the paper's ~65% (Fig. 16a); corner-to-corner
    shifts are modelled separately by :class:`~repro.variation.process.
    Corner`, so these sigmas cover only the within-corner die-to-die
    spread.
    """

    vth: float = 0.006
    beta_rel: float = 0.009
    length_rel: float = 0.007


class MonteCarloSampler:
    """Draws global and local variation samples.

    Parameters
    ----------
    pelgrom:
        Mismatch model providing local sigmas from network geometry.
    seed:
        Seed for the internal ``numpy`` generator.  Two samplers built
        with the same seed produce identical sample streams.
    global_sigmas:
        Inter-die sigma budget; only consumed by :meth:`sample_global`.
    """

    def __init__(
        self,
        pelgrom: Optional[PelgromModel] = None,
        seed: int = 0,
        global_sigmas: Optional[GlobalSigmas] = None,
    ):
        self.pelgrom = pelgrom or PelgromModel()
        self.global_sigmas = global_sigmas or GlobalSigmas()
        self._rng = np.random.default_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        """The underlying generator (exposed for composed samplers)."""
        return self._rng

    def sample_global(self) -> GlobalVariation:
        """Draw one die-level variation sample."""
        sigmas = self.global_sigmas
        return GlobalVariation(
            dvth=float(self._rng.normal(0.0, sigmas.vth)),
            dbeta_rel=float(self._rng.normal(0.0, sigmas.beta_rel)),
            dlength_rel=float(self._rng.normal(0.0, sigmas.length_rel)),
        )

    def sample_network(self, geometry: NetworkGeometry) -> Tuple[float, float]:
        """Draw (dvth, dbeta_rel) for one switching network.

        The sigmas follow the Pelgrom law for the network's device
        geometry, reduced by ``sqrt(stack)`` for the series average.
        """
        sigma_vth = self.pelgrom.sigma_vth_stack(geometry.width, geometry.length, geometry.stack)
        sigma_beta = self.pelgrom.sigma_beta_rel_stack(
            geometry.width, geometry.length, geometry.stack
        )
        return (
            float(self._rng.normal(0.0, sigma_vth)),
            float(self._rng.normal(0.0, sigma_beta)),
        )

    def sample_arc(
        self, pull_up: NetworkGeometry, pull_down: NetworkGeometry
    ) -> ArcVariation:
        """Draw the local perturbation of one timing arc."""
        dvth_rise, dbeta_rise = self.sample_network(pull_up)
        dvth_fall, dbeta_fall = self.sample_network(pull_down)
        return ArcVariation(
            dvth_rise=dvth_rise,
            dbeta_rise=dbeta_rise,
            dvth_fall=dvth_fall,
            dbeta_fall=dbeta_fall,
        )
