"""Generalized content-addressed artifact store for pipeline stages.

Where :mod:`repro.parallel.cache` stores characterized *libraries* (big
numeric arrays, ``.npz``), this module stores the artifacts of every
*downstream* stage of the flow — tuning windows, synthesis-run
summaries, extracted worst paths, design statistics, the minimum-period
search — as gzip-compressed canonical JSON.  An artifact is addressed
by ``(stage, fingerprint)`` where the fingerprint is a sha256 over a
canonical JSON rendering of every input that can change the stage's
output (see :func:`fingerprint` and the per-stage payload builders in
:mod:`repro.flow.pipeline`).

The durability contract matches the library cache: writes go to a
temporary sibling and are moved into place with :func:`os.replace`
(atomic on POSIX and Windows), and any entry that cannot be read back
intact — truncated, garbage, wrong stage/key/version — is treated as a
miss and deleted, so a corrupted store heals itself.  Because writes
are atomic and keys are content hashes, concurrent writers (the sweep
fan-out workers) can only ever race to write *identical* bytes.

Artifacts live next to the library cache (``$REPRO_CACHE_DIR`` or
``~/.cache/repro``) as ``<stage>-<fingerprint[:40]>.json.gz``.  Bump
:data:`ARTIFACT_VERSION` whenever a stage's semantics or stored layout
changes meaning.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from repro.observe import get_tracer
from repro.observe.catalog import STORE_ARTIFACT_BYTES, STORE_ARTIFACT_EVENTS
from repro.parallel.cache import default_cache_dir

#: Format/semantics version folded into every artifact key and file.
ARTIFACT_VERSION = 1

#: File suffix of every store entry.
ARTIFACT_SUFFIX = ".json.gz"


def canonical_json(payload: Any) -> str:
    """Canonical (sorted, compact) JSON rendering of a payload."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def fingerprint(payload: Any) -> str:
    """sha256 hex digest of the canonical JSON rendering of ``payload``.

    Payloads must be built from JSON-serializable primitives only;
    every stage folds :data:`ARTIFACT_VERSION` and its stage name into
    the payload so fingerprints can never collide across stages or
    format revisions.
    """
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ArtifactStats:
    """Summary of an artifact store directory's contents."""

    directory: Path
    entries: int
    total_bytes: int
    #: Entry count per stage prefix (``synth``, ``paths``, ...) — the
    #: store-side aggregate mirroring the run manifest's stage ids.
    by_stage: Dict[str, int] = field(default_factory=dict)

    def to_text(self) -> str:
        """One-line human-readable rendering (plus stage breakdown)."""
        kib = self.total_bytes / 1024
        text = f"{self.directory}: {self.entries} artifacts, {kib:.1f} KiB"
        if self.by_stage:
            breakdown = ", ".join(
                f"{count} {stage}" for stage, count in sorted(self.by_stage.items())
            )
            text += f" ({breakdown})"
        return text


class ArtifactStore:
    """Content-addressed on-disk store of JSON stage artifacts."""

    def __init__(self, directory: Optional[Path] = None):
        self.directory = Path(directory) if directory else default_cache_dir()

    # ------------------------------------------------------------------

    def path_for(self, stage: str, key: str) -> Path:
        """File an artifact of ``(stage, key)`` lives at."""
        return self.directory / f"{stage}-{key[:40]}{ARTIFACT_SUFFIX}"

    def has(self, stage: str, key: str) -> bool:
        """Cheap existence probe (no integrity check)."""
        return self.path_for(stage, key).is_file()

    def load(self, stage: str, key: str) -> Optional[Any]:
        """The stored payload of ``(stage, key)``, or ``None`` on miss.

        An entry that exists but cannot be decoded, or whose envelope
        does not match the requested stage/key/version, counts as a
        miss and is deleted.
        """
        path = self.path_for(stage, key)
        if not path.is_file():
            STORE_ARTIFACT_EVENTS.labels(event="miss").inc()
            return None
        try:
            size = path.stat().st_size
            with gzip.open(path, "rt", encoding="utf-8") as handle:
                envelope = json.load(handle)
            if (
                envelope.get("version") != ARTIFACT_VERSION
                or envelope.get("stage") != stage
                or envelope.get("key") != key
            ):
                raise ValueError("artifact envelope mismatch")
            STORE_ARTIFACT_EVENTS.labels(event="hit").inc()
            STORE_ARTIFACT_BYTES.labels(direction="read").inc(size)
            return envelope["payload"]
        except Exception as error:
            # Self-healing: an unreadable entry becomes a miss.  The
            # anomaly is worth a trace event — silent healing hides an
            # unhealthy store (disk trouble, version skew, races).
            self._discard(path)
            STORE_ARTIFACT_EVENTS.labels(event="healed").inc()
            tracer = get_tracer()
            tracer.add("store.artifact.healed", 1)
            tracer.event(
                "store.self_heal",
                stage=stage,
                file=path.name,
                error=type(error).__name__,
            )
            return None

    def store(self, stage: str, key: str, payload: Any) -> Path:
        """Persist ``payload`` under ``(stage, key)`` (atomically)."""
        envelope = {
            "version": ARTIFACT_VERSION,
            "stage": stage,
            "key": key,
            "payload": payload,
        }
        path = self.path_for(stage, key)
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=path.stem + "-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as raw:
                with gzip.open(raw, "wt", encoding="utf-8") as handle:
                    json.dump(envelope, handle, sort_keys=True, separators=(",", ":"))
            os.replace(tmp_name, path)
            STORE_ARTIFACT_BYTES.labels(direction="written").inc(
                path.stat().st_size
            )
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def stats(self) -> ArtifactStats:
        """Entry count, total size and per-stage breakdown."""
        entries = 0
        total = 0
        by_stage: Dict[str, int] = {}
        if self.directory.is_dir():
            for path in self.directory.glob(f"*{ARTIFACT_SUFFIX}"):
                entries += 1
                total += path.stat().st_size
                stage = path.name.rsplit("-", 1)[0]
                by_stage[stage] = by_stage.get(stage, 0) + 1
        return ArtifactStats(
            directory=self.directory,
            entries=entries,
            total_bytes=total,
            by_stage=by_stage,
        )

    def clear(self) -> int:
        """Delete every artifact entry; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob(f"*{ARTIFACT_SUFFIX}"):
                self._discard(path)
                removed += 1
            for path in self.directory.glob("*.tmp"):
                self._discard(path)
        return removed

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
