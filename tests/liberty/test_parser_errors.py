"""Parser error handling and diagnostics."""

import pytest

from repro.errors import LibertyParseError
from repro.liberty.parser import parse_liberty, tokenize


class TestDiagnostics:
    def test_unexpected_character_reports_line(self):
        with pytest.raises(LibertyParseError) as info:
            tokenize('library (x) {\n  bad : "unterminated\n}')
        assert info.value.line >= 2

    def test_missing_colon_or_paren(self):
        text = "library (x) { orphan_word }"
        with pytest.raises(LibertyParseError):
            parse_liberty(text)

    def test_group_without_braces(self):
        with pytest.raises(LibertyParseError):
            parse_liberty("library (x) ;")

    def test_values_without_template_or_indices(self):
        text = """
        library (x) {
          cell (INV_1) {
            pin (Z) {
              direction : output;
              timing () {
                related_pin : "A";
                cell_rise (ghost_template) {
                  values ("1, 2");
                }
              }
            }
          }
        }
        """
        with pytest.raises(LibertyParseError):
            parse_liberty(text)

    def test_table_indices_override_template(self):
        text = """
        library (x) {
          lu_table_template (t) {
            index_1 ("9, 10");
            index_2 ("9, 10");
          }
          cell (INV_1) {
            pin (A) { direction : input; capacitance : 0.001; }
            pin (Z) {
              direction : output;
              timing () {
                related_pin : "A";
                timing_sense : negative_unate;
                cell_rise (t) {
                  index_1 ("0.1, 0.2");
                  index_2 ("0.001, 0.002");
                  values ("1, 2", "3, 4");
                }
                cell_fall (t) {
                  index_1 ("0.1, 0.2");
                  index_2 ("0.001, 0.002");
                  values ("1, 2", "3, 4");
                }
              }
            }
          }
        }
        """
        library = parse_liberty(text)
        lut = library.cell("INV_1").pin("Z").arc_from("A").cell_rise
        assert list(lut.index_1) == [0.1, 0.2]

    def test_template_supplies_missing_indices(self):
        text = """
        library (x) {
          lu_table_template (t) {
            index_1 ("0.1, 0.2");
            index_2 ("0.001, 0.002");
          }
          cell (INV_1) {
            pin (Z) {
              direction : output;
              timing () {
                related_pin : "A";
                cell_rise (t) { values ("1, 2", "3, 4"); }
                cell_fall (t) { values ("1, 2", "3, 4"); }
              }
            }
          }
        }
        """
        library = parse_liberty(text)
        lut = library.cell("INV_1").pin("Z").arc_from("A").cell_rise
        assert list(lut.index_2) == [0.001, 0.002]
        assert lut.values[1, 1] == 4.0

    def test_boolean_and_number_coercion(self):
        text = """
        library (x) {
          statistical : true;
          cell (C_1) { area : 2.5; }
        }
        """
        library = parse_liberty(text)
        assert library.is_statistical is True
        assert library.cell("C_1").area == 2.5
