"""Library-level experiments (figs. 1-7, table 2)."""

import pytest

from repro.experiments import (
    fig01_metric,
    fig02_statlib,
    fig03_bilinear,
    fig04_inv_surfaces,
    fig05_strength6,
    fig06_rectangle,
    fig07_library_surface,
    table2_parameters,
)


class TestFig01:
    def test_pitfall_reproduced(self, tiny_context):
        result = fig01_metric.run(tiny_context)
        left, right = result.rows
        assert left["variability"] == right["variability"]
        assert right["sigma"] > left["sigma"]

    def test_mc_confirms_analytic_sigma(self, tiny_context):
        result = fig01_metric.run(tiny_context, n_samples=50_000, seed=4)
        for row in result.rows:
            assert row["mc_sigma"] == pytest.approx(row["sigma"], rel=0.05)


class TestFig02:
    def test_combine_equals_direct(self, tiny_context):
        result = fig02_statlib.run(tiny_context, n_samples=10)
        assert "~0" in result.notes
        for row in result.rows:
            assert row["entry_sigma"] == pytest.approx(row["lib_sigma[0,0]"])


class TestFig03:
    def test_fast_equals_literal(self, tiny_context):
        result = fig03_bilinear.run(tiny_context)
        for row in result.rows:
            assert row["X_interp"] == pytest.approx(row["X_eq2_4"], abs=1e-12)


class TestFig04:
    def test_sigma_falls_with_strength(self, tiny_context):
        """With only 15 MC samples the per-entry estimates are noisy
        (~18% rel.), so check the trend on well-separated strengths."""
        result = fig04_inv_surfaces.run(tiny_context)
        maxima = result.column("sigma_max")
        assert maxima[0] > maxima[2] > maxima[4]  # INV_1 > INV_4 > INV_16
        assert maxima[0] > 3 * maxima[-1]

    def test_rows_cover_requested_strengths(self, tiny_context):
        result = fig04_inv_surfaces.run(tiny_context)
        assert result.column("cell")[0] == "INV_1"
        assert result.column("cell")[-1] == "INV_32"


class TestFig05:
    def test_cluster_mixes_topologies(self, tiny_context):
        result = fig05_strength6.run(tiny_context)
        families = {c.split("_")[0] for c in result.column("cell")}
        assert "ND4" in families or "NR4" in families
        assert "INV" in families


class TestFig06:
    def test_rectangle_inside_flat_region(self, tiny_context):
        result = fig06_rectangle.run(tiny_context)
        for row in result.rows:
            for flag, bit in zip(row["in_rect"], row["binary_row"]):
                assert flag != "#" or bit == "1"


class TestFig07:
    def test_envelope_rises_from_origin(self, tiny_context):
        result = fig07_library_surface.run(tiny_context)
        by_pos = {(r["slew_idx"], r["load_idx"]): r for r in result.rows}
        assert by_pos[max(by_pos)]["sigma_max"] > by_pos[(0, 0)]["sigma_max"]


class TestTable2:
    def test_monotone_restriction(self, tiny_context):
        result = table2_parameters.run(tiny_context)
        by_bound = {}
        for row in result.rows:
            by_bound.setdefault(row["bound"], []).append(
                row["usable_lut_fraction"]
            )
        for fractions in by_bound.values():
            assert all(a >= b - 1e-9 for a, b in zip(fractions, fractions[1:]))


class TestResultRendering:
    def test_to_text_layout(self, tiny_context):
        result = fig01_metric.run(tiny_context)
        text = result.to_text()
        assert text.startswith("== fig01")
        assert "distribution" in text.splitlines()[1]

    def test_column_accessor(self, tiny_context):
        result = fig01_metric.run(tiny_context)
        assert result.column("distribution") == ["left", "right"]
