"""The end-to-end tuning experiment flow.

One :class:`TuningFlow` owns everything the evaluation needs:

* the 304-cell catalog and its statistical library (N Monte-Carlo
  samples at the typical corner);
* the :class:`~repro.core.tuner.LibraryTuner`;
* a memo of synthesis runs keyed by (method, parameter, clock period),
  since both Fig. 10 and Table 3 reuse the same sweep.

Two scales are provided: ``FlowConfig.paper()`` (the ~18k-gate
microcontroller, 50 MC samples — the paper's setup) and
``FlowConfig.quick()`` (a scaled-down controller, 30 samples) which
keeps the full pipeline and its trends but runs each synthesis in a few
seconds; benchmarks default to quick and honor ``REPRO_SCALE=paper``.

Execution knobs (see :mod:`repro.parallel`): ``n_workers`` fans the
characterization out over processes with bit-identical results
(``REPRO_JOBS`` / ``--jobs``), and ``cache`` memoizes characterized
libraries on disk (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``) so
repeated runs skip characterization entirely.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.cells.catalog import CellSpec, build_catalog
from repro.characterization.characterize import Characterizer
from repro.core.tuner import LibraryTuner, TuningResult
from repro.errors import ReproError
from repro.flow.metrics import TuningComparison, compare_runs
from repro.liberty.model import Library
from repro.netlist.generators.microcontroller import (
    MicrocontrollerParams,
    build_microcontroller,
)
from repro.netlist.model import Netlist
from repro.sta.engine import TimingResult
from repro.sta.paths import TimingPath, extract_worst_paths
from repro.sta.statistics import DesignStatistics, design_statistics
from repro.synth.constraints import SynthesisConstraints
from repro.synth.synthesizer import SynthesisResult, synthesize
from repro.units import GUARD_BAND_NS


@dataclass(frozen=True)
class FlowConfig:
    """Scale, determinism and execution knobs of a flow."""

    design: MicrocontrollerParams = field(default_factory=MicrocontrollerParams)
    n_samples: int = 50
    seed: int = 0
    guard_band: float = GUARD_BAND_NS
    #: Characterization worker processes (1 = serial, 0 = one per CPU).
    n_workers: int = 1
    #: Memoize characterized libraries on disk (``$REPRO_CACHE_DIR`` or
    #: ``~/.cache/repro``); results are bit-identical either way.
    cache: bool = True

    @staticmethod
    def paper() -> "FlowConfig":
        """The paper's setup: ~18k-gate design, 50 MC libraries."""
        return FlowConfig()

    @staticmethod
    def quick() -> "FlowConfig":
        """Scaled-down setup preserving the trends (for benches/tests)."""
        return FlowConfig(
            design=MicrocontrollerParams(
                width=16,
                regfile_bits=3,
                mult_width=10,
                n_timers=2,
                timer_width=12,
                control_gates=2200,
                status_width=48,
                n_uarts=1,
                gpio_width=8,
            ),
            n_samples=30,
        )

    @staticmethod
    def from_environment() -> "FlowConfig":
        """Build a config from environment knobs.

        ``REPRO_SCALE=paper`` selects the full-scale flow (default
        ``quick``); ``REPRO_JOBS=N`` sets the characterization worker
        count (0 = one per CPU).
        """
        scale = os.environ.get("REPRO_SCALE", "quick").lower()
        if scale == "paper":
            config = FlowConfig.paper()
        elif scale == "quick":
            config = FlowConfig.quick()
        else:
            raise ReproError(f"unknown REPRO_SCALE {scale!r} (use 'quick' or 'paper')")
        jobs = os.environ.get("REPRO_JOBS")
        if jobs is not None:
            try:
                config = replace(config, n_workers=int(jobs))
            except ValueError:
                raise ReproError(f"REPRO_JOBS must be an integer, got {jobs!r}") from None
        return config


@dataclass
class SynthesisRun:
    """A synthesis outcome plus the paper's measurements on it."""

    clock_period: float
    result: SynthesisResult
    paths: List[TimingPath]
    stats: DesignStatistics

    @property
    def met(self) -> bool:
        return self.result.met

    @property
    def area(self) -> float:
        return self.result.area

    @property
    def design_sigma(self) -> float:
        """Eq. (11) design sigma over worst endpoint paths."""
        return self.stats.sigma

    @property
    def timing(self) -> TimingResult:
        return self.result.timing

    def cell_histogram(self) -> Dict[str, int]:
        """Bound-cell usage of the run (paper Fig. 9)."""
        return self.result.cell_histogram()

    def depth_histogram(self) -> Dict[int, int]:
        """Worst-path count per depth (paper Fig. 12)."""
        histogram: Dict[int, int] = {}
        for path in self.paths:
            histogram[path.depth] = histogram.get(path.depth, 0) + 1
        return dict(sorted(histogram.items()))


class TuningFlow:
    """Characterize once, tune and synthesize many times (memoized)."""

    def __init__(self, config: Optional[FlowConfig] = None):
        self.config = config or FlowConfig.paper()
        self._specs: Optional[List[CellSpec]] = None
        self._characterizer: Optional[Characterizer] = None
        self._statistical: Optional[Library] = None
        self._tuner: Optional[LibraryTuner] = None
        self._tunings: Dict[Tuple[str, float], TuningResult] = {}
        self._runs: Dict[Tuple[str, float, float], SynthesisRun] = {}

    # ------------------------------------------------------------------
    # Lazy stages
    # ------------------------------------------------------------------

    @property
    def specs(self) -> List[CellSpec]:
        if self._specs is None:
            self._specs = build_catalog()
        return self._specs

    @property
    def characterizer(self) -> Characterizer:
        if self._characterizer is None:
            from repro.parallel import LibraryCache

            self._characterizer = Characterizer(
                cache=LibraryCache() if self.config.cache else None,
                n_workers=self.config.n_workers,
            )
        return self._characterizer

    @property
    def statistical_library(self) -> Library:
        if self._statistical is None:
            self._statistical = self.characterizer.statistical_library(
                self.specs, n_samples=self.config.n_samples, seed=self.config.seed
            )
        return self._statistical

    @property
    def tuner(self) -> LibraryTuner:
        if self._tuner is None:
            self._tuner = LibraryTuner(self.statistical_library)
        return self._tuner

    def tuning(self, method: str, parameter: float) -> TuningResult:
        """Memoized tuning result for (method, parameter)."""
        key = (method, parameter)
        if key not in self._tunings:
            self._tunings[key] = self.tuner.tune(method, parameter)
        return self._tunings[key]

    def build_design(self) -> Netlist:
        """A fresh copy of the evaluation design."""
        return build_microcontroller(self.config.design)

    # ------------------------------------------------------------------
    # Synthesis runs
    # ------------------------------------------------------------------

    def _run(self, constraints: SynthesisConstraints) -> SynthesisRun:
        netlist = self.build_design()
        result = synthesize(netlist, self.statistical_library, constraints)
        paths = extract_worst_paths(result.timing)
        stats = design_statistics(paths, self.statistical_library)
        return SynthesisRun(
            clock_period=constraints.clock_period,
            result=result,
            paths=paths,
            stats=stats,
        )

    def baseline(self, clock_period: float) -> SynthesisRun:
        """Baseline (untuned) synthesis at a clock period (memoized)."""
        key = ("baseline", 0.0, clock_period)
        if key not in self._runs:
            self._runs[key] = self._run(
                SynthesisConstraints(
                    clock_period=clock_period, guard_band=self.config.guard_band
                )
            )
        return self._runs[key]

    def tuned(self, clock_period: float, method: str, parameter: float) -> SynthesisRun:
        """Tuned synthesis at a clock period (memoized)."""
        key = (method, parameter, clock_period)
        if key not in self._runs:
            tuning = self.tuning(method, parameter)
            self._runs[key] = self._run(
                SynthesisConstraints(
                    clock_period=clock_period,
                    guard_band=self.config.guard_band,
                    windows=tuning.windows,
                )
            )
        return self._runs[key]

    def compare(
        self, clock_period: float, method: str, parameter: float
    ) -> TuningComparison:
        """Baseline-vs-tuned comparison (paper Figs. 10-11 data point)."""
        baseline = self.baseline(clock_period)
        tuned = self.tuned(clock_period, method, parameter)
        return compare_runs(baseline, tuned, method, parameter)

    def sweep_method(
        self, clock_period: float, method: str, parameters: Optional[List[float]] = None
    ) -> List[TuningComparison]:
        """Compare every Table 2 parameter of a method at one period."""
        from repro.core.methods import method_by_name

        values = parameters or list(method_by_name(method).sweep_values())
        return [self.compare(clock_period, method, value) for value in values]
