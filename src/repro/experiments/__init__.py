"""One module per table and figure of the paper's evaluation.

Every experiment takes an :class:`~repro.experiments.base.ExperimentContext`
(which wraps a :class:`~repro.flow.experiment.TuningFlow` and caches the
derived clock periods) and returns an
:class:`~repro.experiments.base.ExperimentResult` — structured rows plus
a text rendering that prints the same series the paper reports.

The mapping to the paper:

========  =====================================================
fig01     variability-vs-sigma metric pitfall (Sec. III, Fig. 1)
fig02     statistical-library construction (Sec. IV, Fig. 2)
fig03     bilinear interpolation (Sec. V.A, Fig. 3)
fig04     INV sigma surfaces across drive strengths (Fig. 4)
fig05     drive-strength-6 cluster surfaces (Fig. 5)
fig06     largest-rectangle extraction (Fig. 6)
fig07     whole-library sigma surface (Fig. 7)
table1    clock periods incl. minimum-period search (Table 1)
fig08     clock period vs area sweep (Fig. 8)
table2    constraint parameter sets (Table 2)
fig09     cell-usage histograms baseline vs tuned (Fig. 9)
fig10     best sigma reduction under 10% area (Fig. 10)
table3    winning constraint parameters (Table 3)
fig11     sigma-ceiling tradeoff sweep (Fig. 11)
fig12     path-depth histograms (Fig. 12)
fig13     path sigma vs depth (Fig. 13)
fig14     mean + 3 sigma per path (Fig. 14)
fig15     corner scaling of extracted paths (Fig. 15)
fig16     local vs total variation share (Fig. 16)
========  =====================================================
"""

from repro.experiments.base import ExperimentContext, ExperimentResult

__all__ = ["ExperimentContext", "ExperimentResult"]
