"""Fig. 9 — cell-use histograms, baseline vs tuned synthesis.

Paper observations, verified here:

* basic cells (NAND, NOR, INV, flip-flops) are the most used;
* the time-constrained synthesis uses a larger variety of simple cells,
  the relaxed one more dedicated cells (adders);
* the restricted (tuned) design uses more inverters (buffering) and
  shifts to higher drive strengths of the same function (NR2B_1 ->
  NR2B_2/3 in the paper).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cells.naming import parse_cell_name
from repro.experiments.base import ExperimentContext, ExperimentResult


def _histogram(run) -> Dict[str, int]:
    return run.cell_histogram()


def _family_usage(histogram: Dict[str, int]) -> Dict[str, int]:
    usage: Dict[str, int] = {}
    for cell, count in histogram.items():
        family = parse_cell_name(cell).family
        usage[family] = usage.get(family, 0) + count
    return usage


def _mean_strength(histogram: Dict[str, int]) -> float:
    total = sum(histogram.values())
    return sum(
        parse_cell_name(cell).strength * count for cell, count in histogram.items()
    ) / total


def run(
    context: ExperimentContext,
    tuned_method: str = "sigma_ceiling",
    tuned_parameter: Optional[float] = None,
) -> ExperimentResult:
    """Build this experiment's rows (see the module docstring)."""
    flow = context.flow
    periods = context.standard_periods()
    if tuned_parameter is None:
        tuned_parameter = 0.03
    rows = []
    inverter_deltas: Dict[float, Tuple[int, int]] = {}
    for point in ("high", "low"):
        period = periods[point]
        baseline = flow.baseline(period)
        tuned = flow.tuned(period, tuned_method, tuned_parameter)
        base_hist = _histogram(baseline)
        tuned_hist = _histogram(tuned)
        listed = sorted(
            set(base_hist) | set(tuned_hist),
            key=lambda c: -(base_hist.get(c, 0) + tuned_hist.get(c, 0)),
        )
        for cell in listed:
            if max(base_hist.get(cell, 0), tuned_hist.get(cell, 0)) <= context.usage_cut:
                continue
            rows.append({
                "clock_ns": period,
                "cell": cell,
                "baseline_uses": base_hist.get(cell, 0),
                "tuned_uses": tuned_hist.get(cell, 0),
            })
        base_inv = _family_usage(base_hist).get("INV", 0)
        tuned_inv = _family_usage(tuned_hist).get("INV", 0)
        inverter_deltas[period] = (base_inv, tuned_inv)

    high, low = periods["high"], periods["low"]
    base_high = _histogram(flow.baseline(high))
    base_low = _histogram(flow.baseline(low))
    variety_high = len([c for c, n in base_high.items() if n > context.usage_cut])
    variety_low = len([c for c, n in base_low.items() if n > context.usage_cut])
    tuned_high = _histogram(flow.tuned(high, tuned_method, tuned_parameter))
    return ExperimentResult(
        experiment_id="fig09",
        title=f"Cell use baseline vs {tuned_method}({tuned_parameter:g}) "
              f"(cells used > {context.usage_cut}x)",
        rows=rows,
        notes=(
            f"cell variety above cut: high-perf {variety_high} vs relaxed "
            f"{variety_low}; inverter use at high-perf: baseline "
            f"{inverter_deltas[high][0]} -> tuned {inverter_deltas[high][1]}; "
            f"mean drive strength baseline {_mean_strength(base_high):.2f} -> "
            f"tuned {_mean_strength(tuned_high):.2f}"
        ),
    )
