"""repro.lint — AST-based contract checking for the reproduction.

The execution layer rests on invariants the language cannot express:
bit-identical parallel characterization, content-addressed stage
fingerprints that assume deterministic inputs, single-write JSONL
appends, picklable executor payloads.  This package enforces them
statically — a custom rule engine (:mod:`repro.lint.engine`) walks
each file's AST once and dispatches to the repo-specific rules
(:mod:`repro.lint.rules`):

========  ==========================================================
DET001    wall-clock / global-unseeded RNG in deterministic zones
DET002    unordered iteration feeding fingerprints or hashes
PROC001   multi-call writes to shared append-mode (JSONL) files
PROC002   non-module-level callables submitted to process pools
API001    bare ``Exception`` / ``assert`` in library code
========  ==========================================================

Violations with a reason to exist carry ``# repro: noqa[RULE-ID]`` on
the flagged line; everything else is either fixed or committed to the
baseline file (:mod:`repro.lint.baseline`), which only ratchets down.
The CLI front end is ``python -m repro lint`` (:mod:`repro.lint.cli`);
the rule catalog is documented in DESIGN.md §13.

Programmatic use::

    from repro.lint import DEFAULT_RULES, LintEngine

    engine = LintEngine(DEFAULT_RULES)
    findings = engine.lint_source(code, path="src/repro/flow/x.py")
"""

from repro.lint.baseline import Baseline, write_baseline
from repro.lint.engine import (
    SYNTAX_RULE_ID,
    FileContext,
    LintEngine,
    Rule,
    iter_python_files,
    module_name_for,
)
from repro.lint.findings import Finding
from repro.lint.rules import DEFAULT_RULES, DETERMINISTIC_ZONES, rule_catalog

__all__ = [
    "Baseline",
    "DEFAULT_RULES",
    "DETERMINISTIC_ZONES",
    "FileContext",
    "Finding",
    "LintEngine",
    "Rule",
    "SYNTAX_RULE_ID",
    "iter_python_files",
    "module_name_for",
    "rule_catalog",
    "write_baseline",
]
