"""Bench: Fig. 5 — the drive-strength-6 cluster."""

from conftest import show

from repro.experiments import fig05_strength6


def test_fig05_strength6(benchmark, context):
    result = benchmark.pedantic(
        fig05_strength6.run, args=(context,), rounds=1, iterations=1
    )
    show(result)
    cells = {row["cell"] for row in result.rows}
    # the cluster spans functions (paper shows NR4_6 among inverters etc.)
    families = {c.split("_")[0] for c in cells}
    assert len(families) >= 5
    # equal strength does not mean equal surfaces (paper's point)
    maxima = [row["sigma_max"] for row in result.rows]
    assert max(maxima) > 1.5 * min(maxima)
