"""Expand, diff, dispatch, collect: the incremental sweep driver.

:func:`run_sweep` turns a :class:`SweepGrid` into comparisons in four
deterministic phases:

1. **Expand** — the ``design x method x parameter x clock`` grid
   becomes an ordered list of :class:`GridPoint`; design names resolve
   through :func:`~repro.netlist.generators.family.design_spec`
   (relative to the config's base design) and methods through the
   tuning-method registry, so a typo fails loudly before any work.
2. **Diff** — every point's chained content fingerprints (tuning, the
   tuned synth/paths/stats triple, the baseline triple) are probed
   against the artifact store.  The statistical-library key is
   design-independent and computed once; each family member gets its
   own design key because every generator knob a
   :class:`~repro.netlist.generators.family.DesignSpec` touches lands
   in the fingerprinted ``MicrocontrollerParams``.
3. **Dispatch** — only stale work goes onto the execution backend:
   first one baseline task per ``(design, clock)`` with missing
   baseline artifacts, then one tuned task per stale point.  Workers
   are plain sweep-point evaluations in fresh serial flows sharing the
   store (the same worker the in-design sweep uses); a warm grid
   dispatches **nothing** — zero synthesis, zero characterization.
4. **Collect** — every point (fresh and stale alike) is read back
   through a warm per-design serial flow, so the result list is
   complete, in grid order, and bit-identical however phase 3 executed.

Each run appends one ledger record with per-status point counts
(``sweep.hit`` / ``sweep.skip`` / ``sweep.run``) — the longitudinal
trail of how much a grid actually recomputed.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.methods import TUNING_METHODS, method_by_name
from repro.errors import ConfigError
from repro.flow.metrics import TuningComparison

__all__ = [
    "GridPoint",
    "PointResult",
    "SweepGrid",
    "SweepResult",
    "point_keys",
    "run_sweep",
]


@dataclass(frozen=True)
class SweepGrid:
    """The axes of one sweep: their product is the point list.

    ``methods=None`` means every registered tuning method;
    ``parameters=None`` means each method's own Table 2 sweep values
    (so the default grid is exactly the paper's per-method evaluation,
    fanned across designs and clocks).
    """

    designs: Tuple[str, ...] = ("microcontroller",)
    methods: Optional[Tuple[str, ...]] = None
    parameters: Optional[Tuple[float, ...]] = None
    clock_periods: Tuple[float, ...] = (3.0,)

    def __post_init__(self) -> None:
        if not self.designs:
            raise ConfigError("sweep grid needs at least one design")
        if not self.clock_periods:
            raise ConfigError("sweep grid needs at least one clock period")
        if self.methods is not None and not self.methods:
            raise ConfigError("sweep grid needs at least one method")

    def points(self) -> List["GridPoint"]:
        """The expanded grid, in deterministic nested-axis order."""
        methods = (
            tuple(TUNING_METHODS) if self.methods is None else self.methods
        )
        points: List[GridPoint] = []
        for design in self.designs:
            for name in methods:
                method = method_by_name(name)
                values = (
                    method.sweep_values()
                    if self.parameters is None
                    else self.parameters
                )
                for parameter in values:
                    for period in self.clock_periods:
                        points.append(
                            GridPoint(design, method.name, parameter, period)
                        )
        return points


@dataclass(frozen=True)
class GridPoint:
    """One cell of the expanded grid."""

    design: str
    method: str
    parameter: float
    clock_period: float

    def label(self) -> str:
        """Stable human/ledger label of the point."""
        return (
            f"{self.design}/{self.method}/{self.parameter:g}"
            f"@{self.clock_period:g}"
        )


@dataclass(frozen=True)
class PointResult:
    """A grid point, how it was satisfied, and its comparison.

    ``status`` is ``hit`` (every artifact was already in the store),
    ``run`` (the point's tuned chain was stale and was dispatched) or
    ``skip`` (only shared baseline artifacts were missing — a baseline
    task scheduled for the ``(design, clock)`` pair covered it without
    a per-point dispatch).
    """

    point: GridPoint
    status: str
    comparison: TuningComparison


@dataclass
class SweepResult:
    """Everything one sweep run produced."""

    grid: SweepGrid
    results: List[PointResult]
    #: Point count per status (``hit`` / ``skip`` / ``run``).
    counts: Dict[str, int]
    #: Tasks actually dispatched to the backend (baselines + points);
    #: zero on a warm grid — the incremental guarantee CI gates on.
    scheduled: int
    backend: str
    statlib_key: str
    design_keys: Dict[str, str] = field(default_factory=dict)
    wall: float = 0.0

    def comparisons(self) -> List[TuningComparison]:
        """The comparisons alone, in grid order."""
        return [result.comparison for result in self.results]


def point_keys(statlib_key, design_key, method, point, guard_band):
    """The point's chained fingerprints: (tuning, tuned triple keys,
    baseline triple keys) — the exact keys the flow's stages store
    under, recomputed here without touching any stage.

    Shared by the incremental sweep diff (phase 2) and the tuning
    service's warm-hit check and coalescing keys
    (:mod:`repro.serve.handlers`): both must agree byte-for-byte with
    the flow's own fingerprints or the store stops being the dedup
    medium.
    """
    from repro.flow.pipeline import (
        BASELINE_WINDOWS,
        paths_fingerprint,
        stats_fingerprint,
        synthesis_fingerprint,
        tuning_fingerprint,
    )
    from repro.synth.constraints import SynthesisConstraints

    constraints = SynthesisConstraints(
        clock_period=point.clock_period, guard_band=guard_band
    )
    tuning_key = tuning_fingerprint(statlib_key, method, point.parameter)
    tuned_key = synthesis_fingerprint(
        statlib_key, design_key, tuning_key, constraints
    )
    baseline_key = synthesis_fingerprint(
        statlib_key, design_key, BASELINE_WINDOWS, constraints
    )

    def triple(key):
        return (
            ("synth", key),
            ("paths", paths_fingerprint(key)),
            ("stats", stats_fingerprint(key)),
        )

    return tuning_key, triple(tuned_key), triple(baseline_key)


def run_sweep(
    config,
    grid: SweepGrid,
    backend=None,
    ledger=None,
) -> SweepResult:
    """Run one grid incrementally; see the module docstring.

    ``config`` is the :class:`~repro.flow.experiment.FlowConfig`
    supplying the base design, scale, guard band and execution knobs;
    ``backend`` overrides its backend selection.  The on-disk store is
    the diffing medium and the workers' shared memory, so ``config.
    cache`` must be enabled.  ``ledger=None`` resolves the run ledger
    from the environment, ``False`` disables recording.
    """
    from repro.flow.experiment import TuningFlow
    from repro.flow.pipeline import _sweep_worker, design_fingerprint
    from repro.netlist.generators.family import design_spec
    from repro.parallel.backends import resolve_backend

    if not config.cache:
        raise ConfigError(
            "the sweep driver diffs fingerprints against the artifact "
            "store; enable the cache (FlowConfig(cache=True), drop "
            "--no-cache)"
        )
    start = time.perf_counter()
    resolved = resolve_backend(
        config.backend if backend is None else backend, config.n_workers
    )
    points = grid.points()

    # Phase 1-2: expand the family and diff every point's fingerprints.
    designs = {
        name: design_spec(name).params(config.design)
        for name in dict.fromkeys(grid.designs)
    }
    flows = {
        name: TuningFlow(
            replace(
                config,
                design=params,
                n_workers=1,
                backend="serial",
                tracer=None,
            )
        )
        for name, params in designs.items()
    }
    probe = next(iter(flows.values()))
    statlib_key = probe.statlib_key  # design-independent: computed once
    design_keys = {
        name: design_fingerprint(params) for name, params in designs.items()
    }
    store = probe._store
    statuses: List[str] = []
    stale_baselines: List[Tuple[str, float]] = []
    stale_points: List[GridPoint] = []
    for point in points:
        tuning_key, tuned, baseline = point_keys(
            statlib_key,
            design_keys[point.design],
            method_by_name(point.method),
            point,
            config.guard_band,
        )
        tuned_warm = store.has("tuning", tuning_key) and all(
            store.has(stage, key) for stage, key in tuned
        )
        baseline_warm = all(store.has(stage, key) for stage, key in baseline)
        if not baseline_warm:
            pair = (point.design, point.clock_period)
            if pair not in stale_baselines:
                stale_baselines.append(pair)
        if tuned_warm and baseline_warm:
            statuses.append("hit")
        elif tuned_warm:
            statuses.append("skip")
        else:
            statuses.append("run")
            stale_points.append(point)

    # Phase 3: dispatch only the stale work onto the backend.
    scheduled = len(stale_baselines) + len(stale_points)
    if scheduled:
        # characterize (and persist) the shared library once before
        # dispatching, so workers load one cached artifact instead of
        # racing to recompute it
        probe.statistical_library
        tracer = probe.tracer
        with tracer.span(
            "sweep.grid",
            points=len(points),
            scheduled=scheduled,
            backend=resolved.name,
        ):
            worker_configs = {
                name: replace(config, design=params, tracer=None)
                for name, params in designs.items()
            }
            resolved.map_tasks(
                _sweep_worker,
                [
                    (worker_configs[design], (period, None, 0.0))
                    for design, period in stale_baselines
                ],
            )
            resolved.map_tasks(
                _sweep_worker,
                [
                    (
                        worker_configs[point.design],
                        (point.clock_period, point.method, point.parameter),
                    )
                    for point in stale_points
                ],
            )

    # Phase 4: collect everything through warm per-design flows.
    results = [
        PointResult(
            point=point,
            status=status,
            comparison=flows[point.design].compare(
                point.clock_period, point.method, point.parameter
            ),
        )
        for point, status in zip(points, statuses)
    ]
    counts = {
        status: statuses.count(status) for status in ("hit", "skip", "run")
    }
    result = SweepResult(
        grid=grid,
        results=results,
        counts=counts,
        scheduled=scheduled,
        backend=resolved.name,
        statlib_key=statlib_key,
        design_keys=design_keys,
        wall=time.perf_counter() - start,
    )
    _record_sweep(config, result, ledger)
    return result


def _record_sweep(config, result: SweepResult, ledger) -> None:
    """Append the sweep's ledger record; failures never fail the run."""
    import sys

    from repro.observe.ledger import (
        RunRecord,
        host_info,
        resolve_ledger,
    )

    if ledger is None:
        ledger = resolve_ledger()
    elif ledger is False:
        ledger = None
    if ledger is None:
        return
    fingerprints = {"statlib": result.statlib_key}
    for name, key in result.design_keys.items():
        fingerprints[f"design/{name}"] = key
    metrics: Dict[str, float] = {}
    for point_result in result.results:
        label = point_result.point.label()
        metrics[f"sigma_reduction[{label}]"] = (
            point_result.comparison.sigma_reduction
        )
        metrics[f"area_increase[{label}]"] = (
            point_result.comparison.area_increase
        )
    record = RunRecord(
        run_id=os.urandom(6).hex(),
        timestamp=time.time(),
        experiment="sweep",
        scale=config.scale_name(),
        fingerprints=fingerprints,
        host=host_info(),
        metrics=metrics,
        counters={
            "sweep.points": float(len(result.results)),
            "sweep.hit": float(result.counts["hit"]),
            "sweep.skip": float(result.counts["skip"]),
            "sweep.run": float(result.counts["run"]),
            "sweep.scheduled": float(result.scheduled),
        },
        wall=result.wall,
    )
    try:
        ledger.append(record)
    except OSError as error:  # pragma: no cover - disk-full / perms
        print(f"warning: ledger append failed: {error}", file=sys.stderr)
