"""The staged artifact pipeline behind :class:`~repro.flow.experiment.
TuningFlow`.

The end-to-end evaluation is a chain of pure stages::

    catalog -> statistical library -> tuning -> synthesis -> paths
            -> design statistics          (+ the minimum-period search)

Each stage has a canonical **content fingerprint** — a sha256 over a
sorted-JSON rendering of every input that can change its output — and
a serializable **artifact** persisted in the generalized
:class:`~repro.parallel.artifacts.ArtifactStore`.  Fingerprints chain:
the tuning stage folds in the statistical library's characterization
key, the synthesis stage folds in the tuning fingerprint (or the
baseline sentinel), and so on, so a change anywhere upstream
invalidates exactly the artifacts it can affect.

Layout under ``$REPRO_CACHE_DIR`` (or ``~/.cache/repro``)::

    stat-<key>.npz            characterized library   (repro.parallel.cache)
    tuning-<key>.json.gz      TuningResult             (windows, thresholds)
    synth-<key>.json.gz       RunSummary               (met, area, histogram)
    paths-<key>.json.gz       worst endpoint paths     (full step data)
    stats-<key>.json.gz       DesignStatistics         (eq. 11 roll-up)
    minperiod-<key>.json.gz   minimum-period search    (one float)

Every stage resolution appends a :class:`StageRecord` (stage id, key,
hit/miss, wall time) to the flow's :class:`RunManifest`, surfaced via
``python -m repro run ... --manifest`` and ``python -m repro cache
stats``.

The sweep fan-out (:func:`sweep_comparisons`) runs independent
``(clock period, method, parameter)`` evaluation points on the
configured :class:`~repro.parallel.backends.ExecutorBackend` (serial,
process pool, or the spooled work-queue stub).  Workers rebuild the
flow from the (picklable) config, hit the shared on-disk caches for the
library and the per-period baselines, and return plain
:class:`~repro.flow.metrics.TuningComparison` values which the parent
reassembles in submission order — deterministic and bit-identical to
the serial path on every backend, because every stage is a pure
function of its fingerprinted inputs.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.observe import get_tracer
from repro.parallel.artifacts import ARTIFACT_VERSION, ArtifactStore, fingerprint
from repro.sta.graph import StaConfig
from repro.synth.constraints import SynthesisConstraints

#: A sweep point: (clock period, method name, parameter); method
#: ``None`` marks a baseline warm-up point (parameter is ignored).
SweepPoint = Tuple[float, Optional[str], float]


# ----------------------------------------------------------------------
# Run manifest
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StageRecord:
    """One stage resolution: what ran, from where, and how long."""

    stage: str
    key: str
    #: ``hit`` (served from the store), ``miss`` (computed and stored),
    #: ``computed`` (computed; no store attached).
    status: str
    seconds: float


@dataclass
class RunManifest:
    """Ordered record of every stage resolution of a flow."""

    records: List[StageRecord] = field(default_factory=list)

    def record(self, stage: str, key: str, status: str, seconds: float) -> None:
        """Append one stage resolution."""
        self.records.append(
            StageRecord(stage=stage, key=key, status=status, seconds=seconds)
        )

    def counts(self) -> Dict[str, int]:
        """Resolutions per status (hit / miss / computed)."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.status] = counts.get(record.status, 0) + 1
        return counts

    def aggregates(self) -> Dict[str, Dict[str, Any]]:
        """Per-stage roll-up: count, hit/miss/computed, total seconds.

        The shape the run ledger persists (see
        :mod:`repro.observe.ledger`) and ``--manifest`` summarizes —
        one entry per stage id, statuses as counts.
        """
        return stage_aggregates(self.records)

    def to_text(self) -> str:
        """Fixed-width table of every record plus a hit/miss summary."""
        if not self.records:
            return "run manifest: empty (no stages resolved)"
        lines = ["stage        key           status    seconds"]
        for record in self.records:
            lines.append(
                f"{record.stage:<12s} {record.key[:12]:<13s} "
                f"{record.status:<9s} {record.seconds:8.3f}"
            )
        counts = self.counts()
        summary = ", ".join(f"{n} {status}" for status, n in sorted(counts.items()))
        lines.append(f"-- {len(self.records)} stage resolutions: {summary}")
        return "\n".join(lines)


def stage_aggregates(
    records: Sequence[StageRecord],
) -> Dict[str, Dict[str, Any]]:
    """Fold stage records into per-stage totals.

    Accepts any slice of a manifest, so callers attributing work to a
    single experiment (the run ledger) can aggregate just the records
    that run appended.
    """
    aggregates: Dict[str, Dict[str, Any]] = {}
    for record in records:
        entry = aggregates.setdefault(
            record.stage, {"count": 0, "seconds": 0.0}
        )
        entry["count"] += 1
        entry["seconds"] += record.seconds
        entry[record.status] = entry.get(record.status, 0) + 1
    for entry in aggregates.values():
        entry["seconds"] = round(entry["seconds"], 6)
    return aggregates


# ----------------------------------------------------------------------
# Stage fingerprints
# ----------------------------------------------------------------------


def catalog_fingerprint(specs: Sequence) -> str:
    """Content hash of the cell catalog (stage ``catalog``)."""
    from repro.parallel.cache import spec_fingerprint

    return fingerprint({
        "version": ARTIFACT_VERSION,
        "stage": "catalog",
        "specs": [spec_fingerprint(spec) for spec in specs],
    })


def design_fingerprint(design) -> str:
    """Content hash of the evaluation design's generator parameters."""
    return fingerprint({
        "version": ARTIFACT_VERSION,
        "stage": "design",
        "params": dataclasses.asdict(design),
    })


def tuning_fingerprint(statlib_key: str, method, parameter: float) -> str:
    """Content hash of one tuning run (stage ``tuning``).

    ``method`` carries its clustering and swept-bound kind so a method
    rename or semantic change invalidates the artifact even when the
    name-to-parameter mapping stays the same.
    """
    return fingerprint({
        "version": ARTIFACT_VERSION,
        "stage": "tuning",
        "statlib": statlib_key,
        "method": {
            "name": method.name,
            "clustering": method.clustering,
            "kind": method.kind,
        },
        "parameter": parameter,
    })


#: Sentinel taking the place of a tuning fingerprint for untuned runs;
#: disjoint from any sha256 hex digest.
BASELINE_WINDOWS = "baseline/unrestricted"


def synthesis_fingerprint(
    statlib_key: str,
    design_key: str,
    windows_key: str,
    constraints: SynthesisConstraints,
    sta_config: Optional[StaConfig] = None,
) -> str:
    """Content hash of one synthesis run (stage ``synth``).

    ``windows_key`` is the tuning stage's fingerprint, or
    :data:`BASELINE_WINDOWS` for untuned synthesis — which keeps the
    baseline in a namespace no (method, parameter) pair can collide
    with.
    """
    return fingerprint({
        "version": ARTIFACT_VERSION,
        "stage": "synth",
        "statlib": statlib_key,
        "design": design_key,
        "windows": windows_key,
        "constraints": constraints.fingerprint_payload(),
        "sta": dataclasses.asdict(sta_config or StaConfig()),
    })


def paths_fingerprint(synth_key: str) -> str:
    """Content hash of the worst-path extraction (stage ``paths``)."""
    return fingerprint({
        "version": ARTIFACT_VERSION,
        "stage": "paths",
        "synth": synth_key,
    })


def stats_fingerprint(synth_key: str, rho: float = 0.0) -> str:
    """Content hash of the design-statistics roll-up (stage ``stats``)."""
    return fingerprint({
        "version": ARTIFACT_VERSION,
        "stage": "stats",
        "synth": synth_key,
        "rho": rho,
    })


def minperiod_fingerprint(
    statlib_key: str,
    design_key: str,
    guard_band: float,
    resolution: float,
    sta_config: Optional[StaConfig] = None,
) -> str:
    """Content hash of the minimum-period search (stage ``minperiod``).

    The search probes with reduced effort (one buffering round); that
    knob is part of the hash so a probe-policy change invalidates the
    stored minimum.
    """
    return fingerprint({
        "version": ARTIFACT_VERSION,
        "stage": "minperiod",
        "statlib": statlib_key,
        "design": design_key,
        "guard_band": guard_band,
        "resolution": resolution,
        "probe": {"max_buffer_rounds": 1},
        "sta": dataclasses.asdict(sta_config or StaConfig()),
    })


# ----------------------------------------------------------------------
# Stage resolution
# ----------------------------------------------------------------------


class ArtifactPipeline:
    """Resolves stages against a store, recording every resolution.

    A ``None`` store (``FlowConfig(cache=False)``) degrades every stage
    to compute-only; the manifest still records what ran.
    """

    def __init__(
        self,
        store: Optional[ArtifactStore] = None,
        manifest: Optional[RunManifest] = None,
    ):
        self.store = store
        self.manifest = manifest if manifest is not None else RunManifest()

    def resolve(
        self,
        stage: str,
        key: str,
        compute: Callable[[], Any],
        encode: Callable[[Any], Any],
        decode: Callable[[Any], Any],
    ) -> Any:
        """Load ``(stage, key)`` from the store, or compute and persist.

        ``encode``/``decode`` translate between the live value and its
        JSON payload; a hit is decoded, a miss is computed, encoded and
        stored atomically.

        Every resolution is both a manifest record and a trace span
        (``stage.<name>`` with the key and hit/miss status as
        attributes), so the run manifest and the time tree agree.
        """
        tracer = get_tracer()
        with tracer.span(f"stage.{stage}", key=key[:12]) as span:
            start = time.perf_counter()
            if self.store is not None:
                payload = self.store.load(stage, key)
                if payload is not None:
                    value = decode(payload)
                    span.set(status="hit")
                    tracer.add("store.artifact.hit", 1)
                    self.manifest.record(
                        stage, key, "hit", time.perf_counter() - start
                    )
                    return value
            value = compute()
            if self.store is not None:
                self.store.store(stage, key, encode(value))
                status = "miss"
                tracer.add("store.artifact.miss", 1)
            else:
                status = "computed"
            span.set(status=status)
            self.manifest.record(stage, key, status, time.perf_counter() - start)
            return value

    def note(self, stage: str, key: str, status: str, seconds: float) -> None:
        """Record a stage resolved outside :meth:`resolve` (e.g. the
        characterization stage, whose artifact lives in the ``.npz``
        library cache).  The callers wrap the timed region in their own
        trace span and count their own store hits; this only appends
        the manifest record."""
        self.manifest.record(stage, key, status, seconds)


# ----------------------------------------------------------------------
# Sweep fan-out
# ----------------------------------------------------------------------


def _sweep_worker(config, point: SweepPoint, trace=None):
    """Worker: evaluate one sweep point in a fresh flow.

    The flow rebuilds its statistical library from the on-disk library
    cache (the parent characterizes before fanning out) and serves or
    stores synthesis artifacts through the shared store; worker-side
    characterization parallelism is disabled — the sweep is the
    parallel axis here.  With a :class:`~repro.observe.TraceHandle`,
    the worker's spans merge into the parent's trace under the span
    that was open at submission time.
    """
    from repro.flow.experiment import TuningFlow
    from repro.observe import install_worker_tracer

    tracer = install_worker_tracer(trace)
    period, method, parameter = point
    with tracer.span(
        "sweep.point",
        period=period,
        method=method or "baseline",
        parameter=parameter,
    ):
        flow = TuningFlow(
            dataclasses.replace(config, n_workers=1, backend="serial")
        )
        if method is None:
            flow.baseline(period)
            result = None
        else:
            result = flow.compare(period, method, parameter)
    tracer.flush_counters()
    return result


def sweep_comparisons(
    config,
    points: Sequence[SweepPoint],
    n_workers: int,
    backend=None,
) -> List:
    """Fan independent sweep points out over the selected backend.

    Two phases keep the work non-redundant: the unique clock periods'
    baselines are synthesized (and stored) first, then every tuned
    point runs against warm baseline artifacts.  Results return in
    ``points`` order — reassembly is deterministic, and each value is
    bit-identical to the serial path because every stage is a pure
    function of its fingerprinted inputs.

    ``backend`` overrides the config's backend selection (a name or an
    :class:`~repro.parallel.backends.ExecutorBackend`); worker-trace
    plumbing lives inside the backend, which captures the active
    tracer's handle in the submitting thread.
    """
    from repro.parallel.backends import resolve_backend

    if getattr(config, "tracer", None) is not None:
        # the flow installed it as the active tracer already; workers
        # join through the backend's trace handle instead of pickling
        # a whole tracer per task
        config = dataclasses.replace(config, tracer=None)
    if backend is None:
        backend = getattr(config, "backend", None)
    resolved = resolve_backend(backend, n_workers)
    points = list(points)
    baseline_points: List[SweepPoint] = []
    seen_periods = set()
    for period, _method, _parameter in points:
        if period not in seen_periods:
            seen_periods.add(period)
            baseline_points.append((period, None, 0.0))
    resolved.map_tasks(
        _sweep_worker, [(config, point) for point in baseline_points]
    )
    return resolved.map_tasks(
        _sweep_worker, [(config, point) for point in points]
    )
