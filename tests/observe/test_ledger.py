"""The append-only run ledger: records, writes, env resolution.

One JSONL line per experiment run, written with the same single
``O_APPEND`` write contract as the trace exporter; reads must tolerate
torn lines and foreign schema versions, and the environment knob
``REPRO_LEDGER`` must redirect or disable recording.
"""

from __future__ import annotations

import json
import threading

from repro.experiments.base import ExperimentResult
from repro.flow.pipeline import StageRecord
from repro.observe.ledger import (
    LEDGER_VERSION,
    RunLedger,
    RunRecord,
    capture_run,
    default_ledger_path,
    metrics_from_result,
    resolve_ledger,
)


def _record(run_id="r1", experiment="fake", scale="tiny", **overrides):
    """A small but fully populated record for ledger tests."""
    fields = dict(
        run_id=run_id,
        timestamp=1000.0,
        experiment=experiment,
        scale=scale,
        fingerprints={"design": "abc"},
        host={"hostname": "h"},
        metrics={"sigma[a]": 1.0, "area[a]": 2.0},
        stages={
            "synth": {"count": 4, "seconds": 2.0, "hit": 3, "miss": 1},
            "statlib": {"count": 1, "seconds": 0.5, "computed": 1},
        },
        counters={"store.artifact.hit": 3},
        wall=3.25,
    )
    fields.update(overrides)
    return RunRecord(**fields)


class TestMetricsFromResult:
    """Flattening a result table into ``column[label]`` metrics."""

    def test_string_cells_label_numeric_cells(self):
        """Row labels join the string cells; every number is kept."""
        result = ExperimentResult(
            "fake",
            "stub",
            rows=[
                {"method": "vt", "point": "best", "sigma": 1.5, "area": 0.02},
                {"method": "lg", "point": "best", "sigma": 2.5, "area": 0.03},
            ],
        )
        metrics = metrics_from_result(result)
        assert metrics["sigma[vt/best]"] == 1.5
        assert metrics["area[lg/best]"] == 0.03
        assert len(metrics) == 4

    def test_none_and_bool_cells_skipped(self):
        """``None`` (no feasible point) and booleans are not metrics."""
        result = ExperimentResult(
            "fake",
            "stub",
            rows=[{"method": "vt", "sigma": None, "feasible": True, "n": 3}],
        )
        metrics = metrics_from_result(result)
        assert metrics == {"n[vt]": 3.0}

    def test_unlabeled_rows_fall_back_to_index(self):
        """A row with no string cell keys by its position."""
        result = ExperimentResult("fake", "stub", rows=[{"x": 1.0}, {"x": 2.0}])
        metrics = metrics_from_result(result)
        assert metrics == {"x[0]": 1.0, "x[1]": 2.0}


class TestRunRecord:
    """Payload round-trip and the derived execution figures."""

    def test_payload_round_trip(self):
        """``to_payload`` -> JSON -> ``from_payload`` is lossless."""
        record = _record()
        payload = json.loads(json.dumps(record.to_payload()))
        assert payload["version"] == LEDGER_VERSION
        rebuilt = RunRecord.from_payload(payload)
        assert rebuilt == record

    def test_hit_rate_over_all_stages(self):
        """3 hits out of 5 resolutions across both stages."""
        assert _record().hit_rate() == 3 / 5

    def test_hit_rate_none_without_stages(self):
        """No stage resolutions -> no rate (not a fake 0%)."""
        assert _record(stages={}).hit_rate() is None

    def test_stage_seconds_sums_stages(self):
        assert _record().stage_seconds() == 2.5


class TestRunLedger:
    """Appends, tolerant reads, filters."""

    def test_append_then_read_round_trips(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append(_record("r1"))
        ledger.append(_record("r2"))
        records = ledger.read()
        assert [r.run_id for r in records] == ["r1", "r2"]
        assert records[0].metrics["sigma[a]"] == 1.0

    def test_read_missing_file_is_empty(self, tmp_path):
        assert RunLedger(tmp_path / "nope.jsonl").read() == []

    def test_torn_and_foreign_lines_skipped(self, tmp_path):
        """A torn line (crashed writer) and a future schema version
        must not fail the read — the good records still load."""
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.append(_record("good"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"version": 1, "run_id": "to')  # torn mid-record
            handle.write("\n")
            handle.write(json.dumps({"version": 999, "run_id": "future"}))
            handle.write("\n")
            handle.write("[1, 2]\n")  # JSON, but not a record object
        ledger.append(_record("also-good"))
        assert [r.run_id for r in ledger.read()] == ["good", "also-good"]

    def test_filters_and_last(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append(_record("a1", experiment="fig10", scale="tiny"))
        ledger.append(_record("a2", experiment="fig10", scale="quick"))
        ledger.append(_record("b1", experiment="fig01", scale="tiny"))
        ledger.append(_record("a3", experiment="fig10", scale="tiny"))
        tiny = ledger.read(experiment="fig10", scale="tiny")
        assert [r.run_id for r in tiny] == ["a1", "a3"]
        assert [r.run_id for r in ledger.read(last=2)] == ["b1", "a3"]

    def test_latest_picks_the_newest_match(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        assert ledger.latest("fig10") is None
        ledger.append(_record("old", experiment="fig10"))
        ledger.append(_record("new", experiment="fig10"))
        assert ledger.latest("fig10").run_id == "new"
        assert ledger.latest("fig10", scale="paper") is None

    def test_concurrent_appends_never_tear(self, tmp_path):
        """Threaded appenders (one fd each, O_APPEND) interleave whole
        lines — every record parses back."""
        ledger = RunLedger(tmp_path / "ledger.jsonl")

        def append_batch(worker):
            for i in range(20):
                ledger.append(_record(f"w{worker}-{i}"))

        threads = [
            threading.Thread(target=append_batch, args=(w,)) for w in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(ledger.read()) == 80


class TestResolveLedger:
    """The ``REPRO_LEDGER`` knob: default, redirect, off."""

    def test_unset_uses_the_default_path(self, monkeypatch, tmp_path):
        """Default: ``ledger.jsonl`` beside the artifact store."""
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        ledger = resolve_ledger()
        assert ledger is not None
        assert ledger.path == tmp_path / "ledger.jsonl"
        assert ledger.path == default_ledger_path()

    def test_off_values_disable(self, monkeypatch):
        for value in ("off", "OFF", "0", "none", "false", "  "):
            monkeypatch.setenv("REPRO_LEDGER", value)
            assert resolve_ledger() is None

    def test_path_redirects(self, monkeypatch, tmp_path):
        target = tmp_path / "elsewhere.jsonl"
        monkeypatch.setenv("REPRO_LEDGER", str(target))
        ledger = resolve_ledger()
        assert ledger is not None and ledger.path == target


class _StubConfig:
    def scale_name(self):
        return "tiny"


class _StubFlow:
    """The slice of a TuningFlow that capture_run reads."""

    design_key = "d" * 16
    statlib_key = "s" * 16
    config = _StubConfig()
    _minimum_periods = {1.0: 2.5}


class TestCaptureRun:
    """Building a record from a finished run's pieces."""

    def test_captures_science_and_execution(self):
        result = ExperimentResult(
            "fake", "stub", rows=[{"method": "vt", "sigma": 1.5}]
        )
        stage_records = [
            StageRecord("synth", "k1", "hit", 1.0),
            StageRecord("synth", "k2", "miss", 3.0),
            StageRecord("statlib", "k3", "computed", 0.5),
        ]
        record = capture_run(
            "fake",
            result,
            _StubFlow(),
            stage_records=stage_records,
            counters={"store.artifact.hit": 1},
            wall=4.5,
        )
        assert record.experiment == "fake"
        assert record.scale == "tiny"
        assert record.metrics["sigma[vt]"] == 1.5
        assert record.metrics["minimum_period[1]"] == 2.5
        assert record.fingerprints == {
            "design": "d" * 16,
            "statlib": "s" * 16,
        }
        assert record.stages["synth"] == {
            "count": 2,
            "seconds": 4.0,
            "hit": 1,
            "miss": 1,
        }
        assert record.counters == {"store.artifact.hit": 1}
        assert record.wall == 4.5
        assert record.host["cpus"] >= 1
        assert len(record.run_id) == 12  # 6 random bytes, hex

    def test_run_ids_are_distinct(self):
        result = ExperimentResult("fake", "stub", rows=[])
        ids = {
            capture_run("fake", result, _StubFlow()).run_id for _ in range(8)
        }
        assert len(ids) == 8


class TestRunnerAutoLedger:
    """run_experiments appends one record per experiment by default."""

    def _stub_table(self, monkeypatch):
        import repro.experiments.runner as runner
        from repro.observe import get_tracer

        def fake_run(context):
            """Stub experiment recording one counter."""
            get_tracer().add("fake.items", 2)
            return ExperimentResult(
                "fake", "stub", rows=[{"method": "vt", "sigma": 1.5}]
            )

        monkeypatch.setattr(runner, "ALL_EXPERIMENTS", {"fake": fake_run})
        return runner

    def test_explicit_ledger_records_each_run(self, tmp_path, monkeypatch):
        runner = self._stub_table(monkeypatch)
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        runner.run_experiments(ids=["fake"], ledger=ledger)
        runner.run_experiments(ids=["fake"], ledger=ledger)
        records = ledger.read(experiment="fake")
        assert len(records) == 2
        assert records[0].metrics["sigma[vt]"] == 1.5
        assert records[0].wall > 0

    def test_env_redirect_is_honored(self, tmp_path, monkeypatch):
        """``REPRO_LEDGER=<path>`` routes the default ledger there."""
        runner = self._stub_table(monkeypatch)
        target = tmp_path / "redirected.jsonl"
        monkeypatch.setenv("REPRO_LEDGER", str(target))
        runner.run_experiments(ids=["fake"])
        assert len(RunLedger(target).read(experiment="fake")) == 1

    def test_ledger_false_disables(self, tmp_path, monkeypatch):
        runner = self._stub_table(monkeypatch)
        target = tmp_path / "redirected.jsonl"
        monkeypatch.setenv("REPRO_LEDGER", str(target))
        runner.run_experiments(ids=["fake"], ledger=False)
        assert not target.exists()

    def test_env_off_disables(self, tmp_path, monkeypatch):
        runner = self._stub_table(monkeypatch)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_LEDGER", "off")
        runner.run_experiments(ids=["fake"])
        assert not (tmp_path / "ledger.jsonl").exists()
