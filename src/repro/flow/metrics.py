"""Comparison metrics of the evaluation (paper Figs. 10-11).

The paper reports, per tuning method and clock period, the *relative
sigma decrease* and *relative area increase* of the tuned synthesis
against the baseline, and picks per method the parameter achieving the
highest sigma reduction with an area increase below 10%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import ReproError


@dataclass(frozen=True)
class TuningComparison:
    """Baseline-vs-tuned outcome for one (method, parameter, period)."""

    method: str
    parameter: float
    clock_period: float
    baseline_sigma: float
    tuned_sigma: float
    baseline_area: float
    tuned_area: float
    #: Whether the tuned synthesis met timing (infeasible runs are
    #: excluded from the Fig. 10 selection).
    tuned_met: bool = True

    @property
    def sigma_reduction(self) -> float:
        """Fractional sigma decrease (positive = tuned is better)."""
        return (self.baseline_sigma - self.tuned_sigma) / self.baseline_sigma

    @property
    def area_increase(self) -> float:
        """Fractional area increase (positive = tuned is bigger)."""
        return (self.tuned_area - self.baseline_area) / self.baseline_area

    def summary(self) -> str:
        """One-line human-readable comparison."""
        return (
            f"{self.method}(param={self.parameter:g}) @ {self.clock_period:g} ns: "
            f"sigma {self.baseline_sigma:.4f} -> {self.tuned_sigma:.4f} "
            f"({self.sigma_reduction:+.1%}), area {self.baseline_area:.0f} -> "
            f"{self.tuned_area:.0f} ({self.area_increase:+.1%})"
        )


def compare_runs(baseline, tuned, method: str, parameter: float) -> TuningComparison:
    """Build a comparison from two :class:`~repro.flow.experiment.
    SynthesisRun` objects at the same clock period."""
    if abs(baseline.clock_period - tuned.clock_period) > 1e-12:
        raise ReproError("comparing runs at different clock periods")
    return TuningComparison(
        method=method,
        parameter=parameter,
        clock_period=baseline.clock_period,
        baseline_sigma=baseline.design_sigma,
        tuned_sigma=tuned.design_sigma,
        baseline_area=baseline.area,
        tuned_area=tuned.area,
        tuned_met=tuned.met,
    )


def best_under_area_cap(
    comparisons: Iterable[TuningComparison], area_cap: float = 0.10
) -> Optional[TuningComparison]:
    """Fig. 10 selection: highest sigma reduction with area < cap.

    Only feasible (timing-met) tuned runs qualify.  Returns ``None``
    when no parameter of the sweep stayed under the cap (the paper's
    bars then simply would not appear).
    """
    eligible = [c for c in comparisons if c.tuned_met and c.area_increase < area_cap]
    if not eligible:
        return None
    return max(eligible, key=lambda c: c.sigma_reduction)
