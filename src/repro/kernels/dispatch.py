"""Kernel selection: the scalar reference vs the vectorized fast path.

Every numerical hot path of the repo — characterization tensors, LUT
interpolation, STA level evaluation, sigma lookups — exists twice:

* ``"scalar"`` — the reference implementation: one surrogate-model call
  per (sample, grid point), one :func:`~repro.liberty.lut.
  bilinear_interpolate` call per query.  Obviously correct, slow.
* ``"vectorized"`` — the production implementation: whole (samples x
  slew x load) tensors per arc, whole topological STA levels per
  gather-based interpolation call.

The two are **bit-identical** (enforced by ``tests/kernels``): the same
IEEE-754 operations run element by element either way, so the kernel
choice is an execution knob like ``n_workers`` — it never enters a
content fingerprint or cache key.

The active kernel is process-global state (like the active tracer):
:class:`~repro.flow.experiment.TuningFlow` installs its config's kernel
at construction, worker processes inherit it through the pickled
:class:`~repro.characterization.characterize.Characterizer` or the
reconstructed flow config.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from repro.errors import ConfigError

#: The recognized kernel implementations.
KERNEL_NAMES: Tuple[str, ...] = ("scalar", "vectorized")

#: The kernel used when nothing selects one explicitly.
DEFAULT_KERNEL: str = "vectorized"

_active_kernel: str = DEFAULT_KERNEL


def validate_kernel(name: str) -> str:
    """Return ``name`` if it names a kernel, else raise ``ConfigError``.

    A typo'd kernel must fail loudly — silently falling back would run
    the slow reference path (or skip it) without anyone noticing.
    """
    if name not in KERNEL_NAMES:
        raise ConfigError(
            f"unknown kernel {name!r} (use one of {', '.join(KERNEL_NAMES)})"
        )
    return name


def get_kernel() -> str:
    """The process-wide active kernel name."""
    return _active_kernel


def set_kernel(name: str) -> str:
    """Install ``name`` as the active kernel; returns the previous one."""
    global _active_kernel
    previous = _active_kernel
    _active_kernel = validate_kernel(name)
    return previous


def resolve_kernel(name: Optional[str] = None) -> str:
    """An explicit kernel name (validated) or the active kernel."""
    return _active_kernel if name is None else validate_kernel(name)


@contextmanager
def use_kernel(name: str) -> Iterator[str]:
    """Temporarily switch the active kernel (restored on exit)."""
    previous = set_kernel(name)
    try:
        yield _active_kernel
    finally:
        set_kernel(previous)
