"""Staged artifact pipeline: warm/cold equivalence, fingerprints,
baseline-key disjointness and the parallel sweep fan-out.

The pipeline's contract mirrors the characterization cache's: serving
a stage from the on-disk artifact store must be *bit-identical* to
computing it — every ``TuningComparison`` compared with ``==`` — and a
fully warm store must resolve an evaluation without a single synthesis
call (asserted via the synthesis call counter, like the existing
zero-recharacterization test).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.characterization.characterize import (
    characterization_call_count,
    reset_characterization_call_count,
)
from repro.errors import ReproError, TuningError
from repro.flow.experiment import FlowConfig, RunSummary, TuningFlow
from repro.flow.pipeline import (
    BASELINE_WINDOWS,
    RunManifest,
    design_fingerprint,
    minperiod_fingerprint,
    synthesis_fingerprint,
    tuning_fingerprint,
)
from repro.core.methods import method_by_name
from repro.netlist.generators.microcontroller import MicrocontrollerParams
from repro.parallel.artifacts import ArtifactStore, canonical_json, fingerprint
from repro.sta.paths import TimingPath
from repro.sta.statistics import DesignStatistics
from repro.synth.constraints import SynthesisConstraints
from repro.synth.synthesizer import (
    reset_synthesis_call_count,
    synthesis_call_count,
)


def _mini_config(**overrides) -> FlowConfig:
    """The miniature flow configuration (seconds per synthesis)."""
    return FlowConfig(
        design=MicrocontrollerParams(
            width=12,
            regfile_bits=2,
            mult_width=6,
            n_timers=1,
            timer_width=6,
            control_gates=250,
            status_width=12,
            n_uarts=1,
            gpio_width=4,
        ),
        n_samples=12,
        **overrides,
    )


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    """A fresh, empty artifact store / library cache per test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    return tmp_path / "store"


class TestArtifactStore:
    def test_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        payload = {"met": True, "area": 123.5, "rows": [[1, 2], [3, 4]]}
        key = fingerprint(payload)
        assert not store.has("synth", key)
        store.store("synth", key, payload)
        assert store.has("synth", key)
        assert store.load("synth", key) == payload

    def test_missing_returns_none(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.load("synth", "0" * 64) is None

    def test_corrupt_entry_self_heals(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = fingerprint({"x": 1})
        store.store("paths", key, [1, 2, 3])
        path = store.path_for("paths", key)
        path.write_bytes(b"not gzip at all")
        assert store.load("paths", key) is None
        assert not path.exists()  # poisoned entry dropped

    def test_wrong_envelope_discarded(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = fingerprint({"x": 2})
        store.store("stats", key, {"sigma": 0.5})
        # same bytes presented under another stage must not resolve
        other = ArtifactStore(tmp_path)
        store.path_for("synth", key).write_bytes(
            store.path_for("stats", key).read_bytes()
        )
        assert other.load("synth", key) is None

    def test_stats_and_clear(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for i in range(3):
            store.store("tuning", fingerprint({"i": i}), {"i": i})
        stats = store.stats()
        assert stats.entries == 3
        assert stats.total_bytes > 0
        assert str(tmp_path) in stats.to_text()
        assert store.clear() == 3
        assert store.stats().entries == 0

    def test_self_heal_is_observable(self, tmp_path):
        """Healing a poisoned entry bumps the healed counter and
        attaches a ``store.self_heal`` event to the open span."""
        from repro.observe import MemorySink, Tracer, set_tracer

        store = ArtifactStore(tmp_path)
        key = fingerprint({"x": 3})
        store.store("paths", key, [1, 2, 3])
        store.path_for("paths", key).write_bytes(b"junk")
        tracer = Tracer(MemorySink())
        previous = set_tracer(tracer)
        try:
            with tracer.span("stage.paths") as span:
                assert store.load("paths", key) is None
        finally:
            set_tracer(previous)
        assert tracer.counters()["store.artifact.healed"] == 1
        (event,) = span.events
        assert event["name"] == "store.self_heal"
        assert event["attrs"]["stage"] == "paths"

    def test_stats_break_down_by_stage(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for i in range(2):
            store.store("tuning", fingerprint({"i": i}), {"i": i})
        store.store("synth", fingerprint({"j": 9}), {"j": 9})
        stats = store.stats()
        assert stats.by_stage == {"tuning": 2, "synth": 1}
        assert "tuning" in stats.to_text()

    def test_canonical_json_is_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})
        assert fingerprint({"b": 1, "a": 2}) == fingerprint({"a": 2, "b": 1})


class TestFingerprints:
    """Every input that can change a stage's output must change its key."""

    STATLIB = "a" * 64
    DESIGN = "b" * 64

    def _synth_key(self, **overrides):
        constraints = SynthesisConstraints(
            clock_period=overrides.pop("clock_period", 4.0),
            guard_band=overrides.pop("guard_band", 0.3),
            **overrides,
        )
        return synthesis_fingerprint(
            self.STATLIB, self.DESIGN, BASELINE_WINDOWS, constraints
        )

    def test_stable_for_identical_inputs(self):
        assert self._synth_key() == self._synth_key()

    def test_sensitive_to_clock_period(self):
        assert self._synth_key() != self._synth_key(clock_period=4.1)

    def test_sensitive_to_guard_band(self):
        assert self._synth_key() != self._synth_key(guard_band=0.25)

    def test_sensitive_to_effort_knobs(self):
        assert self._synth_key() != self._synth_key(max_buffer_rounds=1)
        assert self._synth_key() != self._synth_key(max_transition=0.4)

    def test_sensitive_to_windows_and_upstream_keys(self):
        base = self._synth_key()
        constraints = SynthesisConstraints(clock_period=4.0)
        assert base != synthesis_fingerprint(
            self.STATLIB, self.DESIGN, "c" * 64, constraints
        )
        assert base != synthesis_fingerprint(
            "c" * 64, self.DESIGN, BASELINE_WINDOWS, constraints
        )
        assert base != synthesis_fingerprint(
            self.STATLIB, "c" * 64, BASELINE_WINDOWS, constraints
        )

    def test_design_fingerprint_sensitive_to_params(self):
        design = _mini_config().design
        a = design_fingerprint(design)
        b = design_fingerprint(dataclasses.replace(design, control_gates=300))
        assert a != b
        assert a == design_fingerprint(dataclasses.replace(design))

    def test_tuning_fingerprint_sensitive_to_method_and_parameter(self):
        ceiling = method_by_name("sigma_ceiling")
        slope = method_by_name("cell_load_slope")
        assert tuning_fingerprint(self.STATLIB, ceiling, 0.03) != tuning_fingerprint(
            self.STATLIB, slope, 0.03
        )
        assert tuning_fingerprint(self.STATLIB, ceiling, 0.03) != tuning_fingerprint(
            self.STATLIB, ceiling, 0.02
        )

    def test_minperiod_fingerprint_sensitive_to_search_knobs(self):
        base = minperiod_fingerprint(self.STATLIB, self.DESIGN, 0.3, 0.05)
        assert base != minperiod_fingerprint(self.STATLIB, self.DESIGN, 0.25, 0.05)
        assert base != minperiod_fingerprint(self.STATLIB, self.DESIGN, 0.3, 0.01)
        assert base != minperiod_fingerprint(self.STATLIB, "c" * 64, 0.3, 0.05)


class TestBaselineKeyDisjointness:
    """Regression: the baseline memo entry must live in a namespace no
    (method, parameter) pair can reach."""

    def test_method_named_baseline_is_rejected(self):
        flow = TuningFlow(_mini_config(cache=False))
        with pytest.raises(TuningError):
            flow.tuned(4.0, "baseline", 0.0)

    def test_baseline_windows_sentinel_is_not_a_digest(self):
        assert len(BASELINE_WINDOWS) != 64  # cannot collide with sha256 hex


class TestManifest:
    def test_records_and_counts(self):
        manifest = RunManifest()
        manifest.record("synth", "a" * 64, "hit", 0.01)
        manifest.record("paths", "b" * 64, "miss", 0.5)
        assert manifest.counts() == {"hit": 1, "miss": 1}
        text = manifest.to_text()
        assert "synth" in text and "hit" in text and "2 stage resolutions" in text

    def test_empty_manifest_text(self):
        assert "empty" in RunManifest().to_text()


class TestWarmPipeline:
    """Warm-vs-cold equivalence of real evaluation stages."""

    def test_warm_compare_identical_and_zero_synthesis(self, cache_dir):
        cold_flow = TuningFlow(_mini_config())
        reset_synthesis_call_count()
        cold = cold_flow.compare(4.0, "sigma_ceiling", 0.03)
        assert synthesis_call_count() == 2  # baseline + tuned

        # the memo keys are shape-disjoint (baseline vs tuned namespaces)
        assert set(cold_flow._runs) == {
            ("baseline", 4.0),
            ("tuned", "sigma_ceiling", 0.03, 4.0),
        }

        # live runs expose the timing graph; payloads roundtrip exactly
        cold_run = cold_flow.baseline(4.0)
        assert cold_run.result is not None
        assert cold_run.timing is cold_run.result.timing
        path = cold_run.paths[0]
        assert TimingPath.from_payload(path.to_payload()) == path
        assert (
            DesignStatistics.from_payload(cold_run.stats.to_payload())
            == cold_run.stats
        )
        assert (
            RunSummary.from_payload(cold_run.summary.to_payload())
            == cold_run.summary
        )

        warm_flow = TuningFlow(_mini_config())
        reset_synthesis_call_count()
        reset_characterization_call_count()
        warm = warm_flow.compare(4.0, "sigma_ceiling", 0.03)
        assert synthesis_call_count() == 0
        assert characterization_call_count() == 0
        assert warm == cold  # bit-identical dataclass comparison

        # store-served runs carry no live synthesis result
        warm_run = warm_flow.baseline(4.0)
        assert warm_run.result is None
        with pytest.raises(ReproError):
            warm_run.timing
        assert warm_run.paths == cold_run.paths
        assert warm_run.stats == cold_run.stats
        assert warm_run.summary == cold_run.summary

        # every synthesis-side stage resolved as a hit
        statuses = {
            (r.stage, r.status)
            for r in warm_flow.manifest.records
            if r.stage in ("synth", "paths", "stats")
        }
        assert statuses == {("synth", "hit"), ("paths", "hit"), ("stats", "hit")}

    def test_warm_fig10_zero_synthesis(self, cache_dir, monkeypatch):
        """Acceptance: a warm ``run fig10`` performs zero synthesis."""
        from repro.experiments import fig10_method_comparison
        from repro.experiments.base import ExperimentContext

        monkeypatch.setattr(
            fig10_method_comparison,
            "METHOD_ORDER",
            ("sigma_ceiling", "cell_load_slope"),
        )
        periods = [4.0]
        cold_context = ExperimentContext(TuningFlow(_mini_config()))
        reset_synthesis_call_count()
        cold = fig10_method_comparison.run(cold_context, periods=periods)
        assert synthesis_call_count() > 0

        warm_context = ExperimentContext(TuningFlow(_mini_config()))
        reset_synthesis_call_count()
        reset_characterization_call_count()
        warm = fig10_method_comparison.run(warm_context, periods=periods)
        assert synthesis_call_count() == 0
        assert characterization_call_count() == 0
        assert warm.rows == cold.rows
        assert warm.notes == cold.notes

    def test_minimum_period_warm_zero_synthesis(self, cache_dir):
        """The min-period search is a stage too: warm runs skip every
        probe synthesis (what otherwise dominates a warm evaluation)."""
        cold = TuningFlow(_mini_config()).minimum_period()
        warm_flow = TuningFlow(_mini_config())
        reset_synthesis_call_count()
        assert warm_flow.minimum_period() == cold
        assert synthesis_call_count() == 0
        record = [r for r in warm_flow.manifest.records if r.stage == "minperiod"]
        assert [r.status for r in record] == ["hit"]

    def test_parallel_sweep_bit_identical_to_serial(self, tmp_path, monkeypatch):
        """Acceptance: the worker fan-out reassembles deterministically
        and each comparison equals the serial path, from separate
        (cold) stores."""
        points = [
            (4.0, "sigma_ceiling", 0.03),
            (4.0, "cell_load_slope", 0.05),
        ]
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
        serial = TuningFlow(_mini_config()).sweep_comparisons(points)

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
        parallel_flow = TuningFlow(_mini_config(n_workers=4))
        parallel = parallel_flow.sweep_comparisons(points)
        assert parallel == serial
        assert [c.parameter for c in parallel] == [0.03, 0.05]

    def test_no_cache_flow_still_works(self, cache_dir):
        """cache=False degrades every stage to compute-only."""
        flow = TuningFlow(_mini_config(cache=False))
        reset_synthesis_call_count()
        comparison = flow.compare(4.0, "sigma_ceiling", 0.03)
        assert synthesis_call_count() == 2
        assert comparison.baseline_sigma > 0
        assert not list(cache_dir.glob("*.json.gz"))
        statuses = {r.status for r in flow.manifest.records}
        assert statuses == {"computed"}
