"""Parallel-vs-serial and cache-vs-cold equivalence (bit-exact).

The determinism contract of :mod:`repro.parallel`: fanning the
characterization out over worker processes, or serving it from the
on-disk cache, must be *bit-identical* to the serial cold path — every
mean/sigma LUT compared with :func:`numpy.array_equal`, every
experiment payload compared with ``==``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.characterization.characterize import (
    Characterizer,
    characterization_call_count,
    reset_characterization_call_count,
)
from repro.experiments import fig02_statlib, fig07_library_surface
from repro.experiments.base import ExperimentContext
from repro.flow.experiment import FlowConfig, TuningFlow

#: Every LUT slot a statistical or sample library may carry.
ALL_SLOTS = (
    "cell_rise",
    "cell_fall",
    "rise_transition",
    "fall_transition",
    "sigma_rise",
    "sigma_fall",
    "power_rise",
    "power_fall",
    "sigma_power_rise",
    "sigma_power_fall",
)


def assert_libraries_bit_identical(a, b):
    """Every LUT of every arc of every cell must match bit-for-bit."""
    assert set(a.cells) == set(b.cells)
    for name in a.cells:
        cell_a, cell_b = a.cell(name), b.cell(name)
        for pin_a in cell_a.output_pins():
            pin_b = cell_b.pin(pin_a.name)
            assert len(pin_a.timing) == len(pin_b.timing)
            for arc_a, arc_b in zip(pin_a.timing, pin_b.timing):
                assert arc_a.related_pin == arc_b.related_pin
                for slot in ALL_SLOTS:
                    table_a = getattr(arc_a, slot)
                    table_b = getattr(arc_b, slot)
                    assert (table_a is None) == (table_b is None), (name, slot)
                    if table_a is not None:
                        assert np.array_equal(table_a.values, table_b.values), (
                            name,
                            pin_a.name,
                            slot,
                        )


class TestParallelEquivalence:
    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_statistical_library_bit_identical(
        self, characterizer, small_specs, n_workers
    ):
        """Acceptance: statistical_library(n_workers=2|4) equals serial
        via np.array_equal on every mean/sigma LUT."""
        specs = small_specs[:40]
        serial = characterizer.statistical_library(specs, n_samples=8, seed=5)
        parallel = characterizer.statistical_library(
            specs, n_samples=8, seed=5, n_workers=n_workers
        )
        assert_libraries_bit_identical(serial, parallel)

    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_sample_libraries_bit_identical(
        self, characterizer, small_specs, n_workers
    ):
        specs = small_specs[:10]
        serial = characterizer.sample_libraries(
            specs, n_samples=5, seed=9, include_global=True
        )
        parallel = characterizer.sample_libraries(
            specs, n_samples=5, seed=9, include_global=True, n_workers=n_workers
        )
        assert len(serial) == len(parallel)
        for lib_serial, lib_parallel in zip(serial, parallel):
            assert lib_serial.name == lib_parallel.name
            assert_libraries_bit_identical(lib_serial, lib_parallel)

    def test_parallel_power_tables_bit_identical(self, small_specs):
        """The power LUTs go through the same fan-out and must match too."""
        characterizer = Characterizer(include_power=True)
        specs = small_specs[:6]
        serial = characterizer.statistical_library(specs, n_samples=6, seed=2)
        parallel = characterizer.statistical_library(
            specs, n_samples=6, seed=2, n_workers=2
        )
        arc = serial.cell(specs[0].name).output_pins()[0].timing[0]
        assert arc.power_rise is not None and arc.sigma_power_rise is not None
        assert_libraries_bit_identical(serial, parallel)

    def test_draws_independent_of_catalog_slicing(self, characterizer, small_specs):
        """Per-cell RNG streams: a cell's draws must not depend on which
        other cells are characterized alongside it."""
        wide = characterizer.sample_arc_draws(small_specs[:6], n_samples=7, seed=3)
        narrow = characterizer.sample_arc_draws(small_specs[2:4], n_samples=7, seed=3)
        for spec in small_specs[2:4]:
            for arc, values in narrow[spec.name].items():
                assert np.array_equal(values, wide[spec.name][arc])


def _tiny_flow_config() -> FlowConfig:
    from repro.netlist.generators.microcontroller import MicrocontrollerParams

    return FlowConfig(
        design=MicrocontrollerParams(
            width=12,
            regfile_bits=2,
            mult_width=8,
            n_timers=1,
            timer_width=8,
            control_gates=400,
            status_width=16,
            n_uarts=1,
            gpio_width=4,
        ),
        n_samples=10,
        cache=True,
    )


class TestCacheEquivalence:
    @pytest.fixture()
    def cache_dir(self, tmp_path, monkeypatch):
        """A fresh, empty cache directory for each test."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        return tmp_path / "cache"

    @pytest.mark.parametrize(
        "experiment", [fig02_statlib.run, fig07_library_surface.run],
        ids=["fig02", "fig07"],
    )
    def test_warm_cache_payload_identical_and_no_recharacterization(
        self, cache_dir, experiment
    ):
        """Acceptance: cache hit vs cold miss produce identical
        ExperimentResult payloads, and the warm run performs zero
        characterization (call-counter assertion)."""
        cold_context = ExperimentContext(TuningFlow(_tiny_flow_config()))
        reset_characterization_call_count()
        cold = experiment(cold_context)
        assert characterization_call_count() > 0

        warm_context = ExperimentContext(TuningFlow(_tiny_flow_config()))
        reset_characterization_call_count()
        warm = experiment(warm_context)
        assert characterization_call_count() == 0

        assert warm.experiment_id == cold.experiment_id
        assert warm.rows == cold.rows
        assert warm.notes == cold.notes

    def test_cached_statistical_library_bit_identical(self, cache_dir, small_specs):
        from repro.parallel import LibraryCache

        reference = Characterizer().statistical_library(
            small_specs[:12], n_samples=6, seed=4
        )
        cached_characterizer = Characterizer(cache=LibraryCache())
        cold = cached_characterizer.statistical_library(
            small_specs[:12], n_samples=6, seed=4
        )
        warm = cached_characterizer.statistical_library(
            small_specs[:12], n_samples=6, seed=4
        )
        assert_libraries_bit_identical(reference, cold)
        assert_libraries_bit_identical(reference, warm)
        assert warm.is_statistical
        assert warm.name == cold.name
