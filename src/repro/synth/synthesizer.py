"""The synthesis loop: map -> size -> legalize -> buffer -> recover.

A deliberately classic TILOS-style greedy sizer:

1. bind every instance to its weakest usable variant;
2. iterate: fix *legality* (tuning-window / max_capacitance loads,
   window input slews) by upsizing the offending cell or its driver,
   and fix *timing* by upsizing every cell whose output net has
   negative slack — all moves are monotone upsizes, so the loop
   terminates;
3. when upsizing cannot legalize a net's load (driver already at the
   strongest usable variant), split the fanout with inverter pairs and
   rebuild the timing graph;
4. once timing is met, walk the design downsizing cells whose slack
   margin allows it (area recovery), re-running the sizer if recovery
   overshoots.

Synthesis *fails* (``SynthesisResult.met == False``) when the sizing
fixpoint still has negative slack — the signal the minimum-period
search of Table 1 looks for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import SynthesisError
from repro.liberty.model import Library
from repro.netlist.model import Instance, Netlist
from repro.observe import get_tracer
from repro.sta.engine import TimingResult, analyze
from repro.sta.graph import StaConfig, TimingGraph
from repro.synth.buffering import plan_groups, split_fanout
from repro.synth.constraints import SynthesisConstraints
from repro.synth.mapping import CellChoices, initial_mapping

_EPS = 1e-9

#: Process-wide synthesis invocation counter (see the test hooks below).
_SYNTHESIS_CALLS = 0


def synthesis_call_count() -> int:
    """Number of :func:`synthesize` invocations in this process.

    Test hook (with :func:`reset_synthesis_call_count`) to assert that
    a warm artifact store serves synthesis runs without re-synthesizing
    — the downstream mirror of ``characterization_call_count``.
    """
    return _SYNTHESIS_CALLS


def reset_synthesis_call_count() -> None:
    """Reset the synthesis invocation counter to zero."""
    global _SYNTHESIS_CALLS
    _SYNTHESIS_CALLS = 0


@dataclass
class SynthesisResult:
    """Outcome of a synthesis run."""

    netlist: Netlist
    library: Library
    constraints: SynthesisConstraints
    timing: TimingResult
    met: bool
    area: float
    sizing_iterations: int
    buffer_instances: int
    #: Human-readable reason when ``met`` is False.
    failure_reason: str = ""
    #: Output pins whose load still violates their window / max_cap
    #: at the fixpoint (0 in any healthy run; non-zero signals the
    #: restriction is structurally unsatisfiable for this netlist).
    legality_violations: int = 0

    def cell_histogram(self) -> Dict[str, int]:
        """Bound-cell usage (paper Fig. 9)."""
        return self.netlist.cell_histogram()


class Synthesizer:
    """Times-driven sizing engine; see the module docstring."""

    def __init__(
        self,
        netlist: Netlist,
        library: Library,
        constraints: SynthesisConstraints,
        sta_config: Optional[StaConfig] = None,
    ):
        self.netlist = netlist
        self.library = library
        self.constraints = constraints
        self.sta_config = sta_config or StaConfig()
        self.choices = CellChoices(library, constraints)
        self.sizing_iterations = 0
        self.buffer_instances = 0
        self._graph: Optional[TimingGraph] = None
        self._fanout_stuck: Set[str] = set()

    # ------------------------------------------------------------------

    def run(self) -> SynthesisResult:
        """Execute the full loop and return the final state."""
        tracer = get_tracer()
        with tracer.span("synth.map", instances=len(self.netlist)):
            initial_mapping(self.netlist, self.choices)
            self._rebuild_graph()
        with tracer.span("synth.size"):
            result = self._sizing_loop()
        with tracer.span("synth.buffer") as buffer_span:
            for _round in range(self.constraints.max_buffer_rounds):
                buffered = self._fix_fanout(result)
                if buffered == 0:
                    break
                self._rebuild_graph()
                # no global re-presize after buffering: re-applying the
                # utilization headroom would re-inflate the fresh buffers'
                # sinks and undo the split (ping-pong); legality and the
                # critical-path machinery still run
                result = self._sizing_loop(presize_all=False)
            buffer_span.set(buffers=self.buffer_instances)
        if result.met:
            with tracer.span("synth.recover"):
                result = self._area_recovery(result)
        tracer.add("synth.sizing_iterations", self.sizing_iterations)
        tracer.add("synth.buffer_instances", self.buffer_instances)
        met = result.met
        reason = "" if met else (
            f"WNS {result.wns:+.4f} ns at sizing fixpoint "
            f"(period {self.constraints.clock_period} ns)"
        )
        return SynthesisResult(
            netlist=self.netlist,
            library=self.library,
            constraints=self.constraints,
            timing=result,
            met=met,
            area=self.graph.total_area(),
            sizing_iterations=self.sizing_iterations,
            buffer_instances=self.buffer_instances,
            failure_reason=reason,
            legality_violations=self._count_legality_violations(),
        )

    def _count_legality_violations(self) -> int:
        """Output pins whose load exceeds the bound variant's capacity."""
        graph, choices = self.graph, self.choices
        violations = 0
        for instance in self.netlist:
            variant = choices.variant_of(instance.cell)
            for pin in instance.function.output_pins:
                load = graph.loads[graph.net_ids[instance.net_of(pin)]]
                if load > variant.max_load + 1e-6:
                    violations += 1
        return violations

    # ------------------------------------------------------------------

    @property
    def graph(self) -> TimingGraph:
        """The current timing graph (rebuilt after structural changes)."""
        if self._graph is None:
            raise SynthesisError("timing graph requested before first build")
        return self._graph

    def _rebuild_graph(self) -> None:
        self._graph = TimingGraph(self.netlist, self.library, self.sta_config)

    def _analyze(self) -> TimingResult:
        return analyze(
            self.graph,
            clock_period=self.constraints.clock_period,
            guard_band=self.constraints.guard_band,
        )

    def _instance_views(self) -> List[Tuple[Instance, List[int], List[int]]]:
        """(instance, output net ids, non-clock input net ids)."""
        graph = self.graph
        views = []
        for instance in self.netlist:
            function = instance.function
            outs = [graph.net_ids[instance.net_of(p)] for p in function.output_pins]
            ins = [
                graph.net_ids[instance.net_of(p)]
                for p in function.input_pins
                if p != function.clock_pin
            ]
            views.append((instance, outs, ins))
        return views

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------

    #: Load utilization of the relaxed (area-first) presizing stage.
    _UTIL_START = 0.5
    #: Tightening factor per presizing round.
    _UTIL_SHRINK = 0.62
    #: Tightest utilization the presizer will request.
    _UTIL_FLOOR = 0.07
    #: Fine-tuning iterations after presizing.
    _FINE_ITERATIONS = 12

    def _sizing_loop(self, presize_all: bool = True) -> TimingResult:
        """Two-stage sizing.

        Stage 1 — *utilization presizing*: every cell gets the weakest
        variant whose load capacity, derated by a global utilization
        factor, covers its actual load; while timing fails, the factor
        is tightened for critical cells only.  This reaches an
        electrically sane design in a handful of STA passes (slews are
        bounded by construction), the way slew-budget global sizing
        works in production tools.

        Stage 2 — *fine tuning*: bounded TILOS-style benefit/penalty
        moves on the remaining critical cells, plus window/max-cap
        legalization.
        """
        views = self._instance_views()
        # later buffer rounds resume from the utilization the first
        # round reached instead of re-walking the whole descent
        utilization = min(self._UTIL_START, getattr(self, "_last_utilization", 1.0))
        if presize_all:
            self._presize(views, utilization, critical_only=False, result=None)
        self.graph.remap()
        result = self._analyze()
        self.sizing_iterations += 1
        while result.wns < -_EPS and utilization > self._UTIL_FLOOR:
            utilization *= self._UTIL_SHRINK
            changes = self._presize(
                views, utilization, critical_only=True, result=result
            )
            changes += self._legalize_once(result, views)
            if changes == 0:
                break
            self.graph.remap()
            result = self._analyze()
            self.sizing_iterations += 1
        self._last_utilization = utilization
        for _iteration in range(self._FINE_ITERATIONS):
            changes = self._legalize_once(result, views)
            if result.wns < -_EPS:
                changes += self._upsize_critical(result, views)
            if changes == 0:
                return result
            self.graph.remap()
            result = self._analyze()
            self.sizing_iterations += 1
        return result

    def _presize(
        self,
        views,
        utilization: float,
        critical_only: bool,
        result: Optional[TimingResult],
    ) -> int:
        """Bind cells to the weakest variant covering load/utilization.

        Never downsizes (monotone with the rest of the sizer); with
        ``critical_only`` the pass skips instances whose output slack
        is non-negative.
        """
        choices = self.choices
        changes = 0
        if critical_only and result is None:
            raise SynthesisError(
                "critical-only sizing pass needs a timing result"
            )
        for instance, outs, _ins in views:
            if critical_only:
                slack = min(result.required[o] - result.arrival[o] for o in outs)
                if slack >= -_EPS:
                    continue
            load = max(self.graph.loads[o] for o in outs)
            candidate = choices.smallest_for_load(
                instance.family, load / utilization, actual_load=load
            )
            current = choices.variant_of(instance.cell)
            if candidate.strength > current.strength:
                instance.cell = candidate.cell_name
                changes += 1
        return changes

    def _legalize_once(self, result: TimingResult, views) -> int:
        """One pass of design-rule legalization by upsizing.

        Covers three rules: output load within the variant's (possibly
        window-restricted) capacity; the global ``max_transition``; and
        the tuning window's maximum *input* slew, fixed by upsizing the
        offending driver.
        """
        graph, choices = self.graph, self.choices
        max_transition = self.constraints.max_transition
        changes = 0
        for instance, outs, ins in views:
            variant = choices.variant_of(instance.cell)
            load = max(graph.loads[o] for o in outs)
            if load > variant.max_load + _EPS:
                candidate = choices.smallest_for_load(
                    instance.family, load
                )
                if candidate.strength > variant.strength:
                    instance.cell = candidate.cell_name
                    changes += 1
                    variant = candidate
            transition = max(result.slew[o] for o in outs)
            if transition > max_transition + _EPS:
                up = choices.next_up(instance.cell)
                if up is not None:
                    instance.cell = up.cell_name
                    changes += 1
                    variant = up
            if not ins or math.isinf(variant.max_slew):
                continue
            for net_id in ins:
                if result.slew[net_id] > variant.max_slew + _EPS:
                    driver = self.netlist.net(graph.net_names[net_id]).driver
                    if driver is None or driver.instance is None:
                        continue  # port-driven: ideal source
                    driver_instance = self.netlist.instance(driver.instance)
                    up = choices.next_up(driver_instance.cell)
                    if up is not None:
                        driver_instance.cell = up.cell_name
                        changes += 1
        return changes

    def _driver_penalty(
        self, net_id: int, extra_cap: float, result: TimingResult
    ) -> float:
        """Delay increase of a net's driver if the net gains ``extra_cap``."""
        graph = self.graph
        driver = self.netlist.net(graph.net_names[net_id]).driver
        if driver is None or driver.instance is None:
            return 0.0
        instance = self.netlist.instance(driver.instance)
        cell = self.library.cell(instance.cell)
        function = instance.function
        load = float(graph.loads[net_id])
        worst_old = 0.0
        worst_new = 0.0
        for input_pin, output_pin in function.arcs():
            if instance.net_of(output_pin) != graph.net_names[net_id]:
                continue
            slew = (
                self.sta_config.clock_slew
                if input_pin == function.clock_pin
                else float(result.slew[graph.net_ids[instance.net_of(input_pin)]])
            )
            arc = cell.pin(output_pin).arc_from(input_pin)
            worst_old = max(worst_old, arc.worst_delay(slew, load))
            worst_new = max(worst_new, arc.worst_delay(slew, load + extra_cap))
        return worst_new - worst_old

    #: Fine-tuning moves evaluated per iteration (the worst-slack set).
    _FINE_CANDIDATES = 800

    def _upsize_critical(self, result: TimingResult, views) -> int:
        """Upsize negative-slack instances when it pays off.

        A move is accepted only when the instance's own stage-delay
        gain exceeds the delay penalty its larger input pins inflict on
        the driving stages — the classic TILOS sensitivity test, which
        keeps the sizer from drowning the design in capacitance.  Only
        the worst-slack candidates are evaluated per iteration, both
        for speed and to keep the moves focused on the critical region.
        """
        choices = self.choices
        library = self.library
        changes = 0
        negative = []
        for view in views:
            _instance, outs, _ins = view
            slack = min(result.required[o] - result.arrival[o] for o in outs)
            if slack < -_EPS:
                negative.append((slack, view))
        negative.sort(key=lambda item: item[0])
        for slack, (instance, outs, ins) in negative[: self._FINE_CANDIDATES]:
            up = choices.next_up(instance.cell)
            if up is None:
                continue
            load = max(self.graph.loads[o] for o in outs)
            if up.max_load + _EPS < load:
                stronger = choices.smallest_for_load(instance.family, load)
                if stronger.strength <= choices.variant_of(instance.cell).strength:
                    continue
                up = stronger
            benefit = self._stage_delay(instance, instance.cell, result) - (
                self._stage_delay(instance, up.cell_name, result)
            )
            if benefit <= 0:
                continue
            old_cell = library.cell(instance.cell)
            new_cell = library.cell(up.cell_name)
            penalty = 0.0
            function = instance.function
            input_pins = [p for p in function.input_pins if p != function.clock_pin]
            for pin in input_pins:
                extra = new_cell.pins[pin].capacitance - old_cell.pins[pin].capacitance
                if extra <= 0:
                    continue
                net_id = self.graph.net_ids[instance.net_of(pin)]
                # only penalize drivers that are themselves timing-
                # critical: slowing a slack-rich side input cannot hurt
                # the paths this move is trying to fix
                if result.required[net_id] - result.arrival[net_id] >= -_EPS:
                    continue
                penalty += self._driver_penalty(net_id, extra, result)
                if penalty >= benefit:
                    break
            if benefit > penalty:
                instance.cell = up.cell_name
                changes += 1
        return changes

    # ------------------------------------------------------------------
    # Buffering
    # ------------------------------------------------------------------

    #: A critical net is buffered when its load exceeds this (pF).
    _TIMING_BUFFER_LOAD = 0.012
    #: Target capacitance per buffered branch (pF).
    _BRANCH_TARGET_LOAD = 0.006
    #: Minimum fanout before timing-driven buffering considers a net.
    _TIMING_BUFFER_FANOUT = 8

    def _net_load(self, net_name: str) -> float:
        """Current capacitance of a net, computed from the live netlist
        (the timing graph's cached loads go stale during splitting)."""
        config = self.sta_config
        net = self.netlist.net(net_name)
        total = config.wire_cap_per_fanout * len(net.sinks)
        for sink in net.sinks:
            if sink.instance is None:
                total += config.output_port_cap
            else:
                cell = self.library.cell(self.netlist.instance(sink.instance).cell)
                total += cell.pins[sink.pin].capacitance
        return total

    def _split_net(self, net_name: str, branch_load: float) -> List[str]:
        """Split one net into inverter-pair branches; returns new nets."""
        choices = self.choices
        inverter = choices.smallest("INV")
        sink_cap = self.library.cell(inverter.cell_name).pin("A").capacitance
        load = self._net_load(net_name)
        n_groups = max(1, math.ceil(load / max(branch_load, _EPS)))
        sinks = list(self.netlist.net(net_name).sinks)
        kept, groups = plan_groups(sinks, n_groups)
        buffer_cell = choices.smallest_for_load(
            "INV", load / max(len(groups), 1) + sink_cap
        )
        created = split_fanout(self.netlist, net_name, groups, buffer_cell.cell_name)
        self.buffer_instances += len(created)
        # the nets the new inverters drive may themselves be heavy
        return [
            self.netlist.instance(name).net_of("Z") for name in created
        ]

    def _fix_fanout(self, result: TimingResult) -> int:
        """Split heavy nets with inverter pairs.

        Two triggers, both observed in the paper's tuned designs
        (Sec. VII.A): *legality* — no usable variant may drive the load
        (tuning windows shrink ``max_load``); and *timing* — a critical
        net's load is large enough that an inverter tree beats brute
        drive strength.  Newly created buffer nets re-enter the
        worklist, so a single round always converges to legal loads
        (buffer trees deepen as needed).
        """
        graph, choices = self.graph, self.choices
        created = 0
        # (net, driver family, force) — force marks timing-driven
        # splits whose load is legal but slow
        worklist: List[Tuple[str, str, bool]] = []
        for instance in list(self.netlist):
            strongest = choices.largest(instance.family)
            for pin in instance.function.output_pins:
                net_name = instance.net_of(pin)
                net_id = graph.net_ids[net_name]
                load = graph.loads[net_id]
                illegal = load > strongest.max_load + _EPS
                slack = result.required[net_id] - result.arrival[net_id]
                timing_heavy = (
                    slack < -_EPS
                    and load > self._TIMING_BUFFER_LOAD
                    and graph.fanout_of(net_id) >= self._TIMING_BUFFER_FANOUT
                    # never re-split a net a previous round created for
                    # timing only: cascades explode the tree
                    and not instance.name.startswith("synbuf")
                )
                if illegal or timing_heavy:
                    worklist.append((net_name, instance.family, not illegal))

        inv_strongest = choices.largest("INV")
        while worklist:
            net_name, family, force = worklist.pop()
            if net_name in self._fanout_stuck:
                continue
            strongest = choices.largest(family)
            load = self._net_load(net_name)
            if not force and load <= strongest.max_load + _EPS:
                continue  # a requeued buffer net that turned out legal
            movable = sum(
                1 for s in self.netlist.net(net_name).sinks if not s.is_port
            )
            if movable <= 1 and not force:
                # a single sink whose pin alone exceeds the cap cannot
                # be fixed by splitting; leave it to upsizing
                self._fanout_stuck.add(net_name)
                continue
            branch_load = min(strongest.max_load, self._BRANCH_TARGET_LOAD)
            try:
                new_nets = self._split_net(net_name, branch_load)
            except SynthesisError:
                self._fanout_stuck.add(net_name)
                continue
            created += len(new_nets)
            for new_net in new_nets:
                if self._net_load(new_net) > inv_strongest.max_load + _EPS:
                    worklist.append((new_net, "INV", False))
        return created

    # ------------------------------------------------------------------
    # Area recovery
    # ------------------------------------------------------------------

    def _stage_delay(self, instance: Instance, cell_name: str, result: TimingResult) -> float:
        """Worst arc delay of ``instance`` if bound to ``cell_name``."""
        graph = self.graph
        cell = self.library.cell(cell_name)
        worst = 0.0
        function = instance.function
        for input_pin, output_pin in function.arcs():
            in_net = graph.net_ids[instance.net_of(input_pin)]
            out_net = graph.net_ids[instance.net_of(output_pin)]
            slew = (
                self.sta_config.clock_slew
                if input_pin == function.clock_pin
                else float(result.slew[in_net])
            )
            arc = cell.pin(output_pin).arc_from(input_pin)
            worst = max(worst, arc.worst_delay(slew, float(graph.loads[out_net])))
        return worst

    def _transition_legal_after_downsize(
        self,
        instance: Instance,
        cell_name: str,
        outs: List[int],
        ins: List[int],
        result: TimingResult,
    ) -> bool:
        """Check the downsized cell's output slews stay legal.

        Legal means: under the global ``max_transition`` and under the
        tuning-window maximum input slew of every sink cell.
        """
        graph = self.graph
        cell = self.library.cell(cell_name)
        function = instance.function
        for output_pin in function.output_pins:
            net_name = instance.net_of(output_pin)
            net_id = graph.net_ids[net_name]
            load = float(graph.loads[net_id])
            worst = 0.0
            for input_pin, out_pin in function.arcs():
                if out_pin != output_pin:
                    continue
                slew = (
                    self.sta_config.clock_slew
                    if input_pin == function.clock_pin
                    else float(result.slew[graph.net_ids[instance.net_of(input_pin)]])
                )
                arc = cell.pin(output_pin).arc_from(input_pin)
                worst = max(worst, arc.worst_transition(slew, load))
            if worst > self.constraints.max_transition + _EPS:
                return False
            for sink in self.netlist.net(net_name).sinks:
                if sink.instance is None:
                    continue
                sink_variant = self.choices.variant_of(
                    self.netlist.instance(sink.instance).cell
                )
                if not math.isinf(sink_variant.max_slew) and (
                    worst > sink_variant.max_slew + _EPS
                ):
                    return False
        return True

    def _area_recovery(self, result: TimingResult) -> TimingResult:
        """Downsize slack-rich cells; revert a pass that breaks timing.

        Passes run with decreasing slack margins: the first (largest)
        batch keeps the most headroom, since the local delay estimate
        ignores the collective slew degradation of simultaneous moves.
        An overshooting pass is rolled back wholesale — determinism
        beats squeezing the last few cells.
        """
        constraints = self.constraints
        passes = constraints.area_recovery_passes
        for pass_index in range(passes):
            margin = constraints.downsize_margin * (passes - pass_index)
            snapshot = {i.name: i.cell for i in self.netlist}
            views = self._instance_views()
            changes = 0
            for instance, outs, ins in views:
                down = self.choices.next_down(instance.cell)
                if down is None:
                    continue
                load = max(self.graph.loads[o] for o in outs)
                if load > down.max_load + _EPS:
                    continue
                if ins and not math.isinf(down.max_slew):
                    if max(result.slew[i] for i in ins) > down.max_slew + _EPS:
                        continue
                if not self._transition_legal_after_downsize(
                    instance, down.cell_name, outs, ins, result
                ):
                    continue
                slack = min(result.required[o] - result.arrival[o] for o in outs)
                delta = self._stage_delay(instance, down.cell_name, result) - (
                    self._stage_delay(instance, instance.cell, result)
                )
                if slack - delta < margin:
                    continue
                instance.cell = down.cell_name
                changes += 1
            if changes == 0:
                break
            self.graph.remap()
            result = self._analyze()
            if not result.met:
                for instance in self.netlist:
                    instance.cell = snapshot[instance.name]
                self.graph.remap()
                result = self._analyze()
                break
        return result


def synthesize(
    netlist: Netlist,
    library: Library,
    constraints: SynthesisConstraints,
    sta_config: Optional[StaConfig] = None,
) -> SynthesisResult:
    """Map and size ``netlist`` against ``library`` under ``constraints``."""
    global _SYNTHESIS_CALLS
    _SYNTHESIS_CALLS += 1
    tracer = get_tracer()
    tracer.add("synth.calls", 1)
    with tracer.span(
        "synth.run",
        period=constraints.clock_period,
        instances=len(netlist),
    ) as span:
        result = Synthesizer(netlist, library, constraints, sta_config).run()
        span.set(met=result.met, iterations=result.sizing_iterations)
        return result
