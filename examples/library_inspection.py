"""Inspect the statistical library the way the paper's figures do.

Prints Fig. 4 (inverter surfaces vs drive strength), Fig. 5 (the
drive-strength-6 cluster), Fig. 7 (library-wide envelope) and walks one
threshold extraction (slope tables -> binary LUT -> largest rectangle
-> sigma threshold) step by step on a real cell.

Run:  python examples/library_inspection.py
"""

from __future__ import annotations

import numpy as np

from repro.core.binary_lut import binarize_below, combine_and
from repro.core.rectangle import largest_rectangle
from repro.core.slope import load_slope_table, slew_slope_table
from repro.core.threshold import equivalent_sigma_lut
from repro.experiments import fig04_inv_surfaces, fig05_strength6, fig07_library_surface
from repro.experiments.base import ExperimentContext


def main() -> None:
    context = ExperimentContext()
    for module in (fig04_inv_surfaces, fig05_strength6, fig07_library_surface):
        print(module.run(context).to_text())
        print()

    library = context.flow.statistical_library
    cell = library.cell("INV_1")
    equivalent = equivalent_sigma_lut([cell])
    print("threshold extraction walk-through on INV_1 (bounds: load 0.01, slew 0.06)")
    print("max-equivalent sigma LUT:")
    print(np.array_str(equivalent.values, precision=4, suppress_small=True))

    slew_slope = slew_slope_table(equivalent.values)
    load_slope = load_slope_table(equivalent.values)
    print("\nload-slope table (eq. 13):")
    print(np.array_str(load_slope, precision=4, suppress_small=True))

    binary = combine_and(
        binarize_below(slew_slope, 0.06), binarize_below(load_slope, 0.01)
    )
    print("\nbinary LUT (1 = flat enough):")
    for row in binary:
        print("  " + "".join("1" if b else "0" for b in row))

    rect = largest_rectangle(binary)
    assert rect is not None
    row, col = rect.far_corner
    print(
        f"\nlargest rectangle: rows {rect.row_lo}..{rect.row_hi}, "
        f"cols {rect.col_lo}..{rect.col_hi} (area {rect.area})"
    )
    print(
        f"sigma threshold at far corner ({row},{col}): "
        f"{equivalent.values[row, col]:.4f} ns"
    )


if __name__ == "__main__":
    main()
