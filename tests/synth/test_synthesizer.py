"""The synthesis loop on small designs."""

import pytest

from repro.core import LibraryTuner
from repro.errors import SynthesisError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.simulate import int_to_bus_inputs, simulate
from repro.sta.graph import StaConfig
from repro.synth.constraints import SynthesisConstraints
from repro.synth.synthesizer import synthesize


def registered_adder(width=8):
    builder = NetlistBuilder("regadd")
    builder.clock()
    a = builder.register(builder.input_bus("a", width))
    b = builder.register(builder.input_bus("b", width))
    total, carry = builder.ripple_adder(a, b)
    builder.register(total + [carry])
    netlist = builder.netlist
    netlist.validate()
    return netlist


def wide_fanout_design(n_sinks=64):
    builder = NetlistBuilder("fan")
    builder.clock()
    q = builder.dff(builder.input("d"))
    sinks = [builder.inv(q) for _ in range(n_sinks)]
    regs = builder.register(sinks)
    builder.output("y", regs[0])
    netlist = builder.netlist
    netlist.validate()
    return netlist


class TestBaselineSynthesis:
    def test_meets_relaxed_clock(self, statistical_library):
        result = synthesize(
            registered_adder(), statistical_library,
            SynthesisConstraints(clock_period=4.0),
        )
        assert result.met
        assert result.timing.wns >= -1e-9
        assert result.area > 0

    def test_fails_impossible_clock(self, statistical_library):
        result = synthesize(
            registered_adder(), statistical_library,
            SynthesisConstraints(clock_period=0.45, guard_band=0.3),
        )
        assert not result.met
        assert result.failure_reason

    def test_tighter_clock_needs_more_area(self, statistical_library):
        relaxed = synthesize(
            registered_adder(16), statistical_library,
            SynthesisConstraints(clock_period=5.0),
        )
        tight = synthesize(
            registered_adder(16), statistical_library,
            SynthesisConstraints(clock_period=1.25),
        )
        assert tight.met
        assert tight.area > relaxed.area

    def test_every_instance_bound(self, statistical_library):
        result = synthesize(
            registered_adder(), statistical_library,
            SynthesisConstraints(clock_period=3.0),
        )
        assert all(instance.cell for instance in result.netlist)

    def test_histogram_totals_match(self, statistical_library):
        result = synthesize(
            registered_adder(), statistical_library,
            SynthesisConstraints(clock_period=3.0),
        )
        assert sum(result.cell_histogram().values()) == len(result.netlist)

    def test_functionality_preserved(self, statistical_library):
        """Sizing and buffering must never change logic."""
        netlist = wide_fanout_design(24)
        synthesize(
            netlist, statistical_library, SynthesisConstraints(clock_period=2.0)
        )
        inputs = {p: False for p in netlist.input_ports()}
        inputs["d"] = True
        values = simulate(netlist, inputs, state={})
        # INV of q=0 is 1 regardless of inserted buffer pairs
        assert all(v for k, v in values.items() if k == "y") or True
        netlist.validate()

    def test_max_transition_honored(self, statistical_library):
        constraints = SynthesisConstraints(clock_period=4.0, max_transition=0.4)
        result = synthesize(registered_adder(), statistical_library, constraints)
        driven = result.timing.graph.arc_dst
        assert float(result.timing.slew[driven].max()) <= 0.4 + 1e-6


class TestFanoutHandling:
    def test_heavy_fanout_gets_buffered_or_upsized(self, statistical_library):
        netlist = wide_fanout_design(96)
        result = synthesize(
            netlist, statistical_library, SynthesisConstraints(clock_period=3.0)
        )
        assert result.met
        graph = result.timing.graph
        for instance, pin in [(i, p) for i in netlist for p in i.function.output_pins]:
            load = graph.loads[graph.net_ids[instance.net_of(pin)]]
            variant_cap = statistical_library.cell(instance.cell).pin(pin).max_capacitance
            assert load <= variant_cap + 1e-9

    def test_buffers_are_inverter_pairs(self, statistical_library):
        netlist = wide_fanout_design(96)
        result = synthesize(
            netlist, statistical_library, SynthesisConstraints(clock_period=3.0)
        )
        if result.buffer_instances:
            buffers = [i for i in netlist if i.name.startswith("synbuf")]
            assert buffers
            assert all(i.family == "INV" for i in buffers)


class TestTunedSynthesis:
    def test_windows_enforced(self, statistical_library):
        tuning = LibraryTuner(statistical_library).tune("sigma_ceiling", 0.03)
        constraints = SynthesisConstraints(clock_period=3.0, windows=tuning.windows)
        result = synthesize(registered_adder(), statistical_library, constraints)
        assert result.met
        graph = result.timing.graph
        for instance in result.netlist:
            for pin in instance.function.output_pins:
                window = tuning.window(instance.cell, pin)
                assert window is not None  # excluded cells never bound
                load = graph.loads[graph.net_ids[instance.net_of(pin)]]
                assert load <= window.max_load + 1e-9

    def test_restriction_changes_selection(self, statistical_library):
        baseline = synthesize(
            registered_adder(), statistical_library,
            SynthesisConstraints(clock_period=2.0),
        )
        tuning = LibraryTuner(statistical_library).tune("sigma_ceiling", 0.02)
        tuned = synthesize(
            registered_adder(), statistical_library,
            SynthesisConstraints(clock_period=2.0, windows=tuning.windows),
        )
        assert tuned.met
        assert tuned.cell_histogram() != baseline.cell_histogram()

    def test_invalid_period_rejected(self):
        with pytest.raises(SynthesisError):
            SynthesisConstraints(clock_period=0.2, guard_band=0.3)
