"""Fig. 12 — path depths of worst endpoint paths, baseline vs tuned.

"An overall increase in the path depth indicates that more cells are
used for the restricted design" — buffering and decomposition deepen
paths under tuning.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.experiments.base import ExperimentContext, ExperimentResult


def run(
    context: ExperimentContext,
    method: str = "sigma_ceiling",
    parameter: float = 0.03,
    period: Optional[float] = None,
) -> ExperimentResult:
    """Build this experiment's rows (see the module docstring)."""
    flow = context.flow
    clock = period if period is not None else context.high_performance_period
    baseline = flow.baseline(clock)
    tuned = flow.tuned(clock, method, parameter)
    base_hist = baseline.depth_histogram()
    tuned_hist = tuned.depth_histogram()
    depths = sorted(set(base_hist) | set(tuned_hist))
    rows = [
        {
            "depth": depth,
            "baseline_paths": base_hist.get(depth, 0),
            "tuned_paths": tuned_hist.get(depth, 0),
        }
        for depth in depths
    ]
    base_mean = float(np.mean([p.depth for p in baseline.paths]))
    tuned_mean = float(np.mean([p.depth for p in tuned.paths]))
    return ExperimentResult(
        experiment_id="fig12",
        title=f"Path depths baseline vs {method}({parameter:g}) at {clock:g} ns",
        rows=rows,
        notes=(
            f"mean depth baseline {base_mean:.2f} -> tuned {tuned_mean:.2f}; "
            f"tuned adds cells (buffers): {tuned.n_instances} vs "
            f"{baseline.n_instances} instances"
        ),
    )
