"""Library tuning — the paper's contribution (Sec. VI).

Two-stage process:

1. **threshold extraction** — per cell cluster, build the maximum
   equivalent sigma LUT, derive slew/load slope tables (eqs. 12-13),
   binarize against slope bounds, AND them, run the largest-rectangle
   algorithm (Algorithm 1) and read the sigma at the rectangle corner
   furthest from the origin; the sigma-ceiling method uses its bound as
   the threshold directly;
2. **LUT restriction** — per output pin, binarize the pin's worst-case
   sigma LUT against the threshold, find the largest acceptable
   rectangle and convert its coordinates into min/max slew and load
   bounds (:class:`~repro.core.restriction.SlewLoadWindow`) that the
   synthesis tool must honor.
"""

from repro.core.slope import slew_slope_table, load_slope_table
from repro.core.binary_lut import (
    binarize_below,
    combine_and,
    binary_fraction_true,
)
from repro.core.rectangle import (
    Rectangle,
    largest_rectangle,
    largest_rectangle_paper,
)
from repro.core.clusters import cluster_by_strength, cluster_individually
from repro.core.threshold import extract_slope_threshold, equivalent_sigma_lut
from repro.core.methods import (
    TuningMethod,
    TUNING_METHODS,
    DEFAULT_BOUNDS,
    method_by_name,
)
from repro.core.restriction import SlewLoadWindow, restrict_pin, restrict_cell
from repro.core.tuner import LibraryTuner, TuningResult
from repro.core.sdc import parse_sdc, write_sdc, write_sdc_file
from repro.core.power_tuning import (
    pin_equivalent_power_sigma,
    power_sigma_windows,
    restrict_pin_power,
)

__all__ = [
    "slew_slope_table",
    "load_slope_table",
    "binarize_below",
    "combine_and",
    "binary_fraction_true",
    "Rectangle",
    "largest_rectangle",
    "largest_rectangle_paper",
    "cluster_by_strength",
    "cluster_individually",
    "extract_slope_threshold",
    "equivalent_sigma_lut",
    "TuningMethod",
    "TUNING_METHODS",
    "DEFAULT_BOUNDS",
    "method_by_name",
    "SlewLoadWindow",
    "restrict_pin",
    "restrict_cell",
    "LibraryTuner",
    "TuningResult",
    "parse_sdc",
    "write_sdc",
    "write_sdc_file",
    "pin_equivalent_power_sigma",
    "power_sigma_windows",
    "restrict_pin_power",
]
