"""Two-phase construction of the whole-program :class:`ProgramGraph`.

**Phase 1 — per-file collection.**  Every file is parsed once (the
same single-parse discipline as :class:`repro.lint.engine.LintEngine`)
and walked by a collector that reuses the engine's
:class:`~repro.lint.engine.FileContext` for import-alias resolution.
The collector records, per function, every call expression as a
*descriptor* — a small tuple naming what the target looked like
lexically (``("self_method", "status")``, ``("dotted",
"asyncio.to_thread")``, ``("var", "store", "stats")``) — plus every
attribute mutation, local variable type hints (parameter annotations,
constructor assignments) and lock/return lexical context.

**Phase 2 — global linking.**  With every module's classes and
functions known, descriptors are resolved to graph keys: self-method
calls bind through the enclosing class, attribute receivers through
inferred attribute types (``__init__`` assignments, annotations,
return annotations of called functions), dotted names through a
longest-module-prefix match with re-export chasing (``from
repro.observe import get_metrics`` grounds to the defining module).
Anything that cannot be grounded becomes an explicit ``?:`` key that
every rule treats as opaque — the graph never guesses.

Only :func:`ast.Call` nodes create call edges.  A function *referenced*
as an argument (``asyncio.to_thread(probe)``, an executor submit, a
callback registration) is recorded as data (``arg_names``) but never as
an edge, which is exactly what makes an executor hop a safe boundary
for the ASYNC001 reachability walk.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import LintError
from repro.lint.engine import (
    FileContext,
    collect_noqa_file,
    iter_python_files,
    module_name_for,
)
from repro.lint.graph.model import (
    CallSite,
    ClassNode,
    FunctionNode,
    ImportEdge,
    ModuleNode,
    Mutation,
    ProgramGraph,
    external,
    is_internal,
    unknown,
)

#: A call-target descriptor: ``(kind, *data)``.  Kinds:
#: ``dotted`` (alias-grounded dotted name), ``self_method`` (name),
#: ``self_attr`` (attr, method), ``var`` (local name, method),
#: ``modvar`` (module constant, method), ``key`` (already-final graph
#: key, used for same-file defs), ``chain`` (ctor dotted, method),
#: ``opaque`` (display name; never resolves).
Desc = Tuple[str, ...]

#: Builtins a bare-name call may target when the name is not bound in
#: the file.  Only ``open``/``input`` matter to the rules; the rest are
#: listed so they resolve to ``ext:`` instead of the opaque ``?:``.
_KNOWN_BUILTINS = frozenset({
    "open", "input", "print", "sorted", "len", "range", "enumerate",
    "zip", "map", "filter", "min", "max", "sum", "abs", "round",
    "repr", "str", "int", "float", "bool", "list", "dict", "set",
    "tuple", "frozenset", "isinstance", "issubclass", "getattr",
    "setattr", "hasattr", "vars", "iter", "next", "id", "hash",
    "format", "any", "all", "divmod", "pow", "bytes", "bytearray",
})

#: Method names that mutate their receiver in place.
_MUTATING_METHODS = frozenset({
    "append", "appendleft", "add", "extend", "update", "insert",
    "remove", "discard", "pop", "popitem", "popleft", "clear",
    "setdefault", "sort", "reverse",
})

#: ``with`` context expressions whose final segment looks like a lock.
def _is_lock_name(dotted: str) -> bool:
    last = dotted.rpartition(".")[2]
    return last in ("lock", "_lock") or last.endswith("_lock")


_DEF_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_COMPOUND_BODIES = ("body", "orelse", "finalbody", "handlers")


def _value_call(value: Optional[ast.expr]) -> Optional[ast.Call]:
    """The call a value derives from, looking through ``a if c else
    b`` / ``a or b`` / ``await`` wrappers (first call wins)."""
    if value is None:
        return None
    if isinstance(value, ast.Call):
        return value
    if isinstance(value, ast.Await):
        return _value_call(value.value)
    if isinstance(value, ast.IfExp):
        return _value_call(value.body) or _value_call(value.orelse)
    if isinstance(value, ast.BoolOp):
        for operand in value.values:
            found = _value_call(operand)
            if found is not None:
                return found
    return None


# ---------------------------------------------------------------------------
# phase-1 records


@dataclass
class _PendingCall:
    desc: Desc
    line: int
    column: int
    in_return: bool
    under_lock: bool
    arg_descs: List[Desc] = field(default_factory=list)
    arg_names: List[str] = field(default_factory=list)


@dataclass
class _PendingMutation:
    receiver: str
    #: ``("key", k)`` / ``("type", dotted)`` / ``("", "")``.
    receiver_type: Tuple[str, str]
    attr: str
    line: int
    column: int
    under_lock: bool


@dataclass
class _PendingFunction:
    key: str
    module: str
    qualname: str
    line: int
    is_async: bool
    is_nested: bool
    class_key: str
    #: Alias-resolved dotted return annotation (``""`` if none).
    return_dotted: str = ""
    calls: List[_PendingCall] = field(default_factory=list)
    mutations: List[_PendingMutation] = field(default_factory=list)
    #: Local name -> last single-call assignment descriptor.
    var_call_descs: Dict[str, Desc] = field(default_factory=dict)
    #: Local name -> annotated dotted type (params, AnnAssign).
    var_ann_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class _PendingClass:
    key: str
    module: str
    name: str
    line: int
    methods: Dict[str, str] = field(default_factory=dict)
    #: attr -> annotated/ctor dotted type.
    attr_dotted: Dict[str, str] = field(default_factory=dict)
    #: attr -> call descriptor (resolve via return annotation).
    attr_call_descs: Dict[str, Desc] = field(default_factory=dict)
    lock_attrs: Set[str] = field(default_factory=set)


@dataclass
class _PendingModule:
    name: str
    path: str
    imports: List[ImportEdge] = field(default_factory=list)
    noqa: Dict[int, List[str]] = field(default_factory=dict)
    noqa_file: List[str] = field(default_factory=list)
    functions: Dict[str, str] = field(default_factory=dict)
    classes: Dict[str, str] = field(default_factory=dict)
    #: Re-export map: local name -> dotted origin (``from X import Y``).
    from_imports: Dict[str, str] = field(default_factory=dict)
    #: Module constant -> annotated/ctor dotted type.
    var_dotted: Dict[str, str] = field(default_factory=dict)
    #: Module constant -> call descriptor.
    var_call_descs: Dict[str, Desc] = field(default_factory=dict)
    pending_functions: List[_PendingFunction] = field(default_factory=list)
    pending_classes: List[_PendingClass] = field(default_factory=list)


# ---------------------------------------------------------------------------
# phase 1: per-file collection


class _FileCollector:
    """Walks one parsed file and fills a :class:`_PendingModule`."""

    def __init__(self, path: str, module: str, text: str, tree: ast.Module):
        self.context = FileContext(path=path, module=module, text=text, tree=tree)
        # The engine notes imports as the walk reaches them; the graph
        # wants the full alias map up front so order never matters.
        for node in ast.walk(tree):
            self.context._note_import(node)
        self.module = module
        self.tree = tree
        self.pending = _PendingModule(
            name=module,
            path=path,
            noqa={
                line: sorted(ids)
                for line, ids in sorted(self.context.noqa.items())
            },
            noqa_file=sorted(collect_noqa_file(self.context.lines)),
            from_imports=dict(self.context.from_imports),
        )
        # Pre-register module-level def/class names so a call can
        # resolve to a function defined later in the file.
        self._prescan(self.tree.body, prefix="")

    def _prescan(self, body: Sequence[ast.stmt], prefix: str) -> None:
        for stmt in body:
            if isinstance(stmt, _DEF_NODES):
                self.pending.functions[f"{prefix}{stmt.name}"] = (
                    f"{self.module}:{prefix}{stmt.name}"
                )
            elif isinstance(stmt, ast.ClassDef):
                self.pending.classes[stmt.name] = (
                    f"{self.module}:{stmt.name}"
                )
            elif isinstance(
                stmt, (ast.If, ast.Try, ast.With, ast.For, ast.While)
            ):
                for attr in _COMPOUND_BODIES:
                    for child in getattr(stmt, attr, []):
                        if isinstance(child, ast.ExceptHandler):
                            self._prescan(child.body, prefix)
                        elif isinstance(child, ast.stmt):
                            self._prescan([child], prefix)

    # -- entry ---------------------------------------------------------

    def collect(self) -> _PendingModule:
        for stmt in self.tree.body:
            self._module_stmt(stmt)
        return self.pending

    # -- module level --------------------------------------------------

    def _module_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            self._record_import(stmt)
        elif isinstance(stmt, _DEF_NODES):
            self._collect_function(stmt, prefix="", class_info=None)
        elif isinstance(stmt, ast.ClassDef):
            self._collect_class(stmt)
        elif isinstance(stmt, ast.AnnAssign):
            self._module_ann_assign(stmt)
        elif isinstance(stmt, ast.Assign):
            self._module_assign(stmt)
        elif isinstance(
            stmt, (ast.If, ast.Try, ast.With, ast.For, ast.While)
        ):
            # ``try: import tomllib`` and TYPE_CHECKING blocks still
            # execute (or are declared) at import time.
            for attr in _COMPOUND_BODIES:
                for child in getattr(stmt, attr, []):
                    if isinstance(child, ast.ExceptHandler):
                        for sub in child.body:
                            self._module_stmt(sub)
                    elif isinstance(child, ast.stmt):
                        self._module_stmt(child)

    def _record_import(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                self.pending.imports.append(
                    ImportEdge(target=alias.name, line=stmt.lineno)
                )
        elif isinstance(stmt, ast.ImportFrom):
            base = self._import_base(stmt)
            if base is None:
                return
            self.pending.imports.append(
                ImportEdge(target=base, line=stmt.lineno)
            )
            for alias in stmt.names:
                # ``from repro.observe import metrics`` imports a
                # *module*; record the candidate so ARCH001 sees the
                # real edge (non-module names are filtered later).
                self.pending.imports.append(
                    ImportEdge(
                        target=f"{base}.{alias.name}", line=stmt.lineno
                    )
                )
                if stmt.level:
                    # Relative imports bypass the engine's alias map;
                    # ground them here so linking can chase them.
                    self.pending.from_imports.setdefault(
                        alias.asname or alias.name, f"{base}.{alias.name}"
                    )

    def _import_base(self, stmt: ast.ImportFrom) -> Optional[str]:
        if not stmt.level:
            return stmt.module
        parts = self.module.split(".")
        # ``from . import x`` in pkg.mod -> pkg; one more dot per level.
        if len(parts) < stmt.level:
            return None
        base_parts = parts[: len(parts) - stmt.level]
        if stmt.module:
            base_parts.append(stmt.module)
        return ".".join(base_parts) if base_parts else None

    def _module_ann_assign(self, stmt: ast.AnnAssign) -> None:
        if not isinstance(stmt.target, ast.Name):
            return
        dotted = self._annotation_dotted(stmt.annotation)
        if dotted:
            self.pending.var_dotted[stmt.target.id] = dotted
        else:
            call = _value_call(stmt.value)
            if call is not None:
                self.pending.var_call_descs[stmt.target.id] = (
                    self._call_desc(call)
                )

    def _module_assign(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
            return
        name = stmt.targets[0].id
        call = _value_call(stmt.value)
        if call is not None:
            self.pending.var_call_descs[name] = self._call_desc(call)

    # -- classes -------------------------------------------------------

    def _collect_class(self, node: ast.ClassDef) -> None:
        key = f"{self.module}:{node.name}"
        info = _PendingClass(
            key=key, module=self.module, name=node.name, line=node.lineno
        )
        self.pending.classes[node.name] = key
        for stmt in node.body:
            if isinstance(stmt, _DEF_NODES):
                fn = self._collect_function(
                    stmt, prefix=f"{node.name}.", class_info=info
                )
                info.methods[stmt.name] = fn.key
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                dotted = self._annotation_dotted(stmt.annotation)
                if dotted:
                    info.attr_dotted.setdefault(stmt.target.id, dotted)
        self.pending.pending_classes.append(info)

    # -- functions -----------------------------------------------------

    def _collect_function(
        self,
        node: ast.stmt,
        prefix: str,
        class_info: Optional[_PendingClass],
        nested: bool = False,
    ) -> _PendingFunction:
        if not isinstance(node, _DEF_NODES):
            raise LintError(
                f"_collect_function expects a def node, got {type(node).__name__}"
            )
        qualname = f"{prefix}{node.name}"
        info = _PendingFunction(
            key=f"{self.module}:{qualname}",
            module=self.module,
            qualname=qualname,
            line=node.lineno,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            is_nested=nested,
            class_key=class_info.key if class_info and not nested else "",
        )
        if node.returns is not None:
            info.return_dotted = self._annotation_dotted(node.returns)
        for arg in [
            *node.args.posonlyargs,
            *node.args.args,
            *node.args.kwonlyargs,
        ]:
            if arg.annotation is not None:
                dotted = self._annotation_dotted(arg.annotation)
                if dotted:
                    info.var_ann_types[arg.arg] = dotted
        if not nested:
            if class_info is None:
                self.pending.functions[qualname] = info.key
        walker = _BodyWalker(self, info, class_info)
        for stmt in node.body:
            walker.visit_stmt(stmt)
        self.pending.pending_functions.append(info)
        return info

    # -- shared lexical helpers ----------------------------------------

    def _annotation_dotted(self, annotation: Optional[ast.expr]) -> str:
        """Alias-resolved dotted type of an annotation, best effort.

        ``Optional[X]``, ``X | None`` and quoted forward references
        unwrap; containers/unions of two real types return ``""``.
        """
        if annotation is None:
            return ""
        node: ast.expr = annotation
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return ""
        if isinstance(node, ast.Subscript):
            head = self.context.dotted_name(node.value) or ""
            head = head.rpartition(".")[2]
            if head == "Optional":
                return self._annotation_dotted(node.slice)
            return ""
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            left = self._annotation_dotted(node.left)
            right = self._annotation_dotted(node.right)
            if left == "None" or not left:
                return "" if right == "None" else right
            if right == "None" or not right:
                return left
            return ""
        dotted = self.context.dotted_name(node)
        if dotted is None or dotted == "None":
            return "None" if dotted == "None" else ""
        if dotted.rpartition(".")[2] == "Any":
            return ""  # ``Any`` carries no usable type information
        return self._ground(dotted)

    def _ground(self, dotted: str) -> str:
        """Alias-expand a dotted name; own-module names get qualified."""
        resolved, known = self.context.resolve(dotted)
        if known:
            return resolved
        head = dotted.partition(".")[0]
        if head in self.pending.classes or head in self.pending.functions:
            return f"{self.module}.{dotted}"
        return dotted

    def _call_desc(self, call: ast.Call) -> Desc:
        """The phase-1 descriptor of a call's target (no locals)."""
        return self._desc_for_func(call.func, local_types=None, scopes=None)

    def _desc_for_func(
        self,
        func: ast.expr,
        local_types: Optional[Dict[str, str]],
        scopes: Optional[List[Dict[str, str]]],
    ) -> Desc:
        dotted = self.context.dotted_name(func)
        if dotted is None:
            # ``Ctor(...).method(...)`` — the inner ctor call is its
            # own ast.Call edge; here only the method edge remains.
            if isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Call
            ):
                base = self.context.dotted_name(func.value.func)
                if base is not None:
                    return ("chain", self._ground(base), func.attr)
            return ("opaque", "<dynamic>")
        parts = dotted.split(".")
        if parts[0] == "self":
            if len(parts) == 2:
                return ("self_method", parts[1])
            if len(parts) == 3:
                return ("self_attr", parts[1], parts[2])
            return ("opaque", dotted)
        if len(parts) == 1:
            name = parts[0]
            if scopes is not None:
                for scope in reversed(scopes):
                    if name in scope:
                        return ("key", scope[name])
            if name in self.pending.functions:
                return ("key", self.pending.functions[name])
            if name in self.pending.classes:
                return ("dotted", f"{self.module}.{name}")
            resolved, known = self.context.resolve(name)
            if known:
                return ("dotted", resolved)
            if name in _KNOWN_BUILTINS:
                return ("dotted", name)
            return ("opaque", name)
        head = parts[0]
        if local_types is not None and head in local_types and len(parts) == 2:
            return ("var", head, parts[1])
        resolved, known = self.context.resolve(dotted)
        if known:
            return ("dotted", resolved)
        if len(parts) == 2 and (
            head in self.pending.var_dotted
            or head in self.pending.var_call_descs
        ):
            return ("modvar", head, parts[1])
        if head in self.pending.classes:
            return ("dotted", f"{self.module}.{dotted}")
        return ("opaque", dotted)


class _BodyWalker:
    """Recursive statement/expression walker for one function body."""

    def __init__(
        self,
        collector: _FileCollector,
        info: _PendingFunction,
        class_info: Optional[_PendingClass],
    ):
        self.collector = collector
        self.info = info
        self.class_info = class_info
        self.lock_depth = 0
        self.return_depth = 0
        #: Nested-def names visible at this level -> function key.
        self.scope: Dict[str, str] = {}
        self.is_init = (
            class_info is not None
            and info.qualname == f"{class_info.name}.__init__"
        )

    # -- statements ----------------------------------------------------

    def visit_stmt(self, stmt: ast.stmt) -> None:
        collector = self.collector
        if isinstance(stmt, _DEF_NODES):
            nested = collector._collect_function(
                stmt,
                prefix=f"{self.info.qualname}.<locals>.",
                class_info=self.class_info,
                nested=True,
            )
            self.scope[stmt.name] = nested.key
            return
        if isinstance(stmt, ast.ClassDef):
            return  # classes inside functions stay opaque
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._visit_with(stmt)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.return_depth += 1
                self.visit_expr(stmt.value)
                self.return_depth -= 1
            return
        if isinstance(stmt, ast.Assign):
            self._visit_assign(stmt)
            return
        if isinstance(stmt, ast.AugAssign):
            self._record_target_mutation(stmt.target, stmt)
            self.visit_expr(stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign):
            self._visit_ann_assign(stmt)
            return
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            return  # aliases were pre-collected; deferred, not an edge
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self.visit_stmt(child)
            elif isinstance(child, ast.expr):
                self.visit_expr(child)
            elif isinstance(child, (ast.ExceptHandler, ast.withitem)):
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.stmt):
                        self.visit_stmt(sub)
                    elif isinstance(sub, ast.expr):
                        self.visit_expr(sub)

    def _visit_with(self, stmt: ast.stmt) -> None:
        if not isinstance(stmt, (ast.With, ast.AsyncWith)):
            raise LintError(
                f"_visit_with expects a with node, got {type(stmt).__name__}"
            )
        locked = False
        for item in stmt.items:
            self.visit_expr(item.context_expr)
            dotted = self.collector.context.dotted_name(item.context_expr)
            if dotted is not None and _is_lock_name(dotted):
                locked = True
        if locked:
            self.lock_depth += 1
        for child in stmt.body:
            self.visit_stmt(child)
        if locked:
            self.lock_depth -= 1

    def _visit_assign(self, stmt: ast.Assign) -> None:
        for target in stmt.targets:
            self._record_target_mutation(target, stmt)
        value_call = _value_call(stmt.value)
        if (
            len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and value_call is not None
        ):
            name = stmt.targets[0].id
            self.info.var_call_descs[name] = self._desc(value_call)
        if (
            self.is_init
            and self.class_info is not None
            and len(stmt.targets) == 1
        ):
            self._note_init_attr(stmt.targets[0], stmt.value)
        self.visit_expr(stmt.value)

    def _visit_ann_assign(self, stmt: ast.AnnAssign) -> None:
        dotted = self.collector._annotation_dotted(stmt.annotation)
        if isinstance(stmt.target, ast.Name) and dotted:
            self.info.var_ann_types[stmt.target.id] = dotted
        elif (
            isinstance(stmt.target, ast.Attribute)
            and isinstance(stmt.target.value, ast.Name)
            and stmt.target.value.id == "self"
            and self.class_info is not None
            and dotted
        ):
            self.class_info.attr_dotted.setdefault(stmt.target.attr, dotted)
        self._record_target_mutation(stmt.target, stmt)
        if stmt.value is not None:
            if (
                self.is_init
                and self.class_info is not None
                and isinstance(stmt.target, ast.Attribute)
                and not dotted
            ):
                self._note_init_attr(stmt.target, stmt.value)
            self.visit_expr(stmt.value)

    def _note_init_attr(
        self, target: ast.expr, value: Optional[ast.expr]
    ) -> None:
        """Infer ``self.attr`` types/locks from ``__init__`` bodies."""
        if self.class_info is None or value is None:
            return
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return
        attr = target.attr
        call = _value_call(value)
        if call is not None:
            dotted = self.collector.context.dotted_name(call.func)
            if dotted is not None:
                grounded = self.collector._ground(dotted)
                tail = grounded.rpartition(".")[2]
                if tail in ("Lock", "RLock"):
                    self.class_info.lock_attrs.add(attr)
                    return
            self.class_info.attr_call_descs.setdefault(
                attr, self._desc(call)
            )
        elif isinstance(value, ast.Name):
            # ``self.config = config`` with an annotated parameter.
            param_type = self.info.var_ann_types.get(value.id, "")
            if param_type:
                self.class_info.attr_dotted.setdefault(attr, param_type)

    # -- expressions ---------------------------------------------------

    def visit_expr(self, expr: ast.expr) -> None:
        if isinstance(expr, ast.Call):
            self._record_call(expr)
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    self.visit_expr(child)
                elif isinstance(child, ast.keyword):
                    self.visit_expr(child.value)
            return
        if isinstance(expr, ast.Lambda):
            # A lambda body runs when *called*, not here; its calls
            # must not become edges of the enclosing function.
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self.visit_expr(child)
            elif isinstance(child, ast.keyword):
                self.visit_expr(child.value)
            elif isinstance(child, ast.comprehension):
                self.visit_expr(child.iter)
                for condition in child.ifs:
                    self.visit_expr(condition)

    def _desc(self, call: ast.Call) -> Desc:
        # Annotated locals AND locals assigned from a call both have an
        # inferrable type at link time (``tracer = get_tracer()``).
        local_types = dict(self.info.var_ann_types)
        for name in self.info.var_call_descs:
            local_types.setdefault(name, "")
        return self.collector._desc_for_func(
            call.func, local_types=local_types, scopes=[self.scope]
        )

    def _record_call(self, call: ast.Call) -> None:
        desc = self._desc(call)
        pending = _PendingCall(
            desc=desc,
            line=call.lineno,
            column=call.col_offset + 1,
            in_return=self.return_depth > 0,
            under_lock=self.lock_depth > 0,
        )
        for value in [
            *call.args,
            *[kw.value for kw in call.keywords],
        ]:
            if isinstance(value, ast.Await):
                value = value.value
            if isinstance(value, ast.Call):
                pending.arg_descs.append(self._desc(value))
            elif isinstance(value, ast.Name):
                pending.arg_names.append(value.id)
        self.info.calls.append(pending)
        # ``self.spans.append(x)`` mutates the receiver in place.
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _MUTATING_METHODS
        ):
            self._record_target_mutation(call.func.value, call)

    # -- mutations -----------------------------------------------------

    def _record_target_mutation(
        self, target: ast.expr, site: ast.AST
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target_mutation(element, site)
            return
        while isinstance(target, ast.Subscript):
            target = target.value
        if not isinstance(target, ast.Attribute):
            return
        receiver_node = target.value
        attr = target.attr
        while isinstance(receiver_node, ast.Attribute):
            # ``self.a.b = x`` mutates through attr ``a`` of self.
            attr = receiver_node.attr
            receiver_node = receiver_node.value
        if not isinstance(receiver_node, ast.Name):
            return
        receiver = receiver_node.id
        receiver_type: Tuple[str, str] = ("", "")
        if receiver == "self" and self.class_info is not None:
            receiver_type = ("key", self.class_info.key)
        elif receiver in self.info.var_ann_types:
            receiver_type = ("type", self.info.var_ann_types[receiver])
        self.info.mutations.append(
            _PendingMutation(
                receiver=receiver,
                receiver_type=receiver_type,
                attr=attr,
                line=getattr(site, "lineno", 1),
                column=getattr(site, "col_offset", 0) + 1,
                under_lock=self.lock_depth > 0,
            )
        )


# ---------------------------------------------------------------------------
# phase 2: global linking


class _Linker:
    """Resolves phase-1 descriptors against the global symbol table."""

    def __init__(self, pending: Dict[str, _PendingModule]):
        self.pending = pending
        self.module_names = set(pending)

    # -- name grounding ------------------------------------------------

    def split_module(self, dotted: str) -> Tuple[Optional[str], List[str]]:
        """Longest tree-module prefix of a dotted name + remainder."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate in self.module_names:
                return candidate, parts[cut:]
        return None, parts

    def chase(self, dotted: str, depth: int = 0) -> str:
        """Follow re-export chains to the defining module's name."""
        if depth > 6:
            return dotted
        module, rest = self.split_module(dotted)
        if module is None or len(rest) != 1:
            return dotted
        origin = self.pending[module].from_imports.get(rest[0])
        if origin is None:
            return dotted
        return self.chase(origin, depth + 1)

    def resolve_type(self, dotted: str) -> str:
        """Dotted type name -> class key / ``ext:`` key."""
        if not dotted or dotted == "None":
            return ""
        dotted = self.chase(dotted)
        module, rest = self.split_module(dotted)
        if module is not None and len(rest) == 1:
            key = self.pending[module].classes.get(rest[0])
            if key is not None:
                return key
        if module is not None:
            return unknown(dotted)
        return external(dotted)

    def resolve_dotted(self, dotted: str) -> str:
        """Dotted callable name -> function/method/ctor key."""
        dotted = self.chase(dotted)
        module, rest = self.split_module(dotted)
        if module is None:
            return external(dotted)
        node = self.pending[module]
        if not rest:
            return external(dotted)
        if len(rest) == 1:
            name = rest[0]
            if name in node.functions:
                return node.functions[name]
            if name in node.classes:
                return self.ctor_key(node.classes[name])
            return unknown(dotted)
        if len(rest) == 2:
            head, method = rest
            class_key = node.classes.get(head)
            if class_key is not None:
                return self.method_key(class_key, method)
            var_type = self.module_var_type(module, head)
            if var_type:
                return self.method_on_type(var_type, method)
        return unknown(dotted)

    def ctor_key(self, class_key: str) -> str:
        """Calling a class runs its ``__init__`` when it has one."""
        info = self.class_info(class_key)
        if info is not None and "__init__" in info.methods:
            return info.methods["__init__"]
        return class_key

    def class_info(self, class_key: str) -> Optional[_PendingClass]:
        module = class_key.partition(":")[0]
        node = self.pending.get(module)
        if node is None:
            return None
        for info in node.pending_classes:
            if info.key == class_key:
                return info
        return None

    def method_key(self, class_key: str, method: str) -> str:
        info = self.class_info(class_key)
        if info is not None and method in info.methods:
            return info.methods[method]
        return unknown(f"{class_key}.{method}")

    def method_on_type(self, type_key: str, method: str) -> str:
        if not type_key:
            return unknown(f"?.{method}")
        if type_key.startswith("ext:"):
            return external(f"{type_key[4:]}.{method}")
        if is_internal(type_key):
            return self.method_key(type_key, method)
        return unknown(f"{type_key}.{method}")

    # -- inferred value types ------------------------------------------

    def function_info(self, key: str) -> Optional[_PendingFunction]:
        module = key.partition(":")[0]
        node = self.pending.get(module)
        if node is None:
            return None
        for info in node.pending_functions:
            if info.key == key:
                return info
        return None

    def type_of_call_desc(self, desc: Desc, owner: _PendingModule) -> str:
        """The type key a call's return value carries, best effort."""
        key = self.resolve_desc(desc, function=None, owner=owner)
        if key.startswith("ext:"):
            # ``Path(...)`` — a capitalized external callable is
            # almost certainly a constructor; the value has its type.
            tail = key.rpartition(".")[2]
            return key if tail[:1].isupper() else ""
        if not is_internal(key):
            return ""
        # Constructor call -> the class itself.
        if ":" in key:
            info = self.class_info(key)
            if info is not None:
                return key
            fn = self.function_info(key)
            if fn is not None:
                if fn.qualname.endswith("__init__") and fn.class_key:
                    return fn.class_key
                if fn.return_dotted:
                    return self.resolve_type(fn.return_dotted)
        return ""

    def module_var_type(self, module: str, name: str) -> str:
        node = self.pending[module]
        dotted = node.var_dotted.get(name)
        if dotted:
            return self.resolve_type(dotted)
        desc = node.var_call_descs.get(name)
        if desc is not None:
            return self.type_of_call_desc(desc, owner=node)
        return ""

    def attr_type(self, class_key: str, attr: str) -> str:
        info = self.class_info(class_key)
        if info is None:
            return ""
        dotted = info.attr_dotted.get(attr)
        if dotted:
            return self.resolve_type(dotted)
        desc = info.attr_call_descs.get(attr)
        if desc is not None:
            owner = self.pending[info.module]
            return self.type_of_call_desc(desc, owner=owner)
        return ""

    def local_var_type(
        self, function: _PendingFunction, name: str
    ) -> str:
        dotted = function.var_ann_types.get(name)
        if dotted:
            return self.resolve_type(dotted)
        desc = function.var_call_descs.get(name)
        if desc is not None:
            owner = self.pending[function.module]
            return self.type_of_call_desc(desc, owner=owner)
        return ""

    # -- descriptor resolution -----------------------------------------

    def resolve_desc(
        self,
        desc: Desc,
        function: Optional[_PendingFunction],
        owner: _PendingModule,
    ) -> str:
        kind = desc[0]
        if kind == "key":
            return desc[1]
        if kind == "dotted":
            return self.resolve_dotted(desc[1])
        if kind == "opaque":
            return unknown(desc[1])
        if kind == "self_method":
            if function is not None and function.class_key:
                return self.method_key(function.class_key, desc[1])
            return unknown(f"self.{desc[1]}")
        if kind == "self_attr":
            attr, method = desc[1], desc[2]
            if function is not None and function.class_key:
                attr_type = self.attr_type(function.class_key, attr)
                if attr_type:
                    return self.method_on_type(attr_type, method)
            return unknown(f"self.{attr}.{method}")
        if kind == "var":
            name, method = desc[1], desc[2]
            if function is not None:
                var_type = self.local_var_type(function, name)
                if var_type:
                    return self.method_on_type(var_type, method)
            return unknown(f"{name}.{method}")
        if kind == "modvar":
            name, method = desc[1], desc[2]
            var_type = self.module_var_type(owner.name, name)
            if var_type:
                return self.method_on_type(var_type, method)
            return unknown(f"{owner.name}.{name}.{method}")
        if kind == "chain":
            base, method = desc[1], desc[2]
            base_key = ""
            head, _, tail = base.partition(".")
            if tail and "." not in tail and function is not None:
                # ``var.labels(...).inc()`` — the base call is a method
                # on a typed local, not a dotted module path.
                var_type = self.local_var_type(function, head)
                if var_type and is_internal(var_type):
                    base_key = self.method_on_type(var_type, tail)
            if not is_internal(base_key):
                base_key = self.resolve_dotted(base)
            if is_internal(base_key):
                info = self.class_info(base_key)
                if info is not None:
                    return self.method_key(base_key, method)
                fn = self.function_info(base_key)
                if fn is not None:
                    if fn.qualname.endswith("__init__") and fn.class_key:
                        return self.method_key(fn.class_key, method)
                    if fn.return_dotted:
                        # ``REQUESTS.labels(...).inc()`` chains through
                        # the method's annotated return type.
                        return self.method_on_type(
                            self.resolve_type(fn.return_dotted), method
                        )
            if base_key.startswith("ext:"):
                return external(f"{base_key[4:]}.{method}")
            return unknown(f"{base}.{method}")
        return unknown(".".join(desc))


def _link(
    pending: Dict[str, _PendingModule],
    syntax_errors: Dict[str, Tuple[int, str]],
) -> ProgramGraph:
    linker = _Linker(pending)
    graph = ProgramGraph(syntax_errors=dict(syntax_errors))
    for name in sorted(pending):
        node = pending[name]
        module = ModuleNode(
            name=node.name,
            path=node.path,
            imports=list(node.imports),
            noqa={line: list(ids) for line, ids in node.noqa.items()},
            noqa_file=list(node.noqa_file),
        )
        for var in sorted(set(node.var_dotted) | set(node.var_call_descs)):
            var_type = linker.module_var_type(name, var)
            if var_type:
                module.var_types[var] = var_type
        graph.modules[node.name] = module
        for class_info in node.pending_classes:
            klass = ClassNode(
                key=class_info.key,
                module=class_info.module,
                name=class_info.name,
                line=class_info.line,
                methods=dict(class_info.methods),
                lock_attrs=sorted(class_info.lock_attrs),
            )
            for attr in sorted(
                set(class_info.attr_dotted) | set(class_info.attr_call_descs)
            ):
                attr_type = linker.attr_type(class_info.key, attr)
                if attr_type:
                    klass.attr_types[attr] = attr_type
            graph.classes[klass.key] = klass
        for fn in node.pending_functions:
            function = FunctionNode(
                key=fn.key,
                module=fn.module,
                qualname=fn.qualname,
                line=fn.line,
                is_async=fn.is_async,
                is_nested=fn.is_nested,
                class_key=fn.class_key,
                return_type=linker.resolve_type(fn.return_dotted),
            )
            for call in fn.calls:
                function.calls.append(
                    CallSite(
                        callee=linker.resolve_desc(call.desc, fn, node),
                        line=call.line,
                        column=call.column,
                        in_return=call.in_return,
                        under_lock=call.under_lock,
                        arg_calls=[
                            linker.resolve_desc(d, fn, node)
                            for d in call.arg_descs
                        ],
                        arg_names=list(call.arg_names),
                    )
                )
            for mutation in fn.mutations:
                type_kind, type_value = mutation.receiver_type
                if type_kind == "key":
                    receiver_type = type_value
                elif type_kind == "type":
                    receiver_type = linker.resolve_type(type_value)
                else:
                    receiver_type = ""
                function.mutations.append(
                    Mutation(
                        receiver=mutation.receiver,
                        receiver_type=receiver_type,
                        attr=mutation.attr,
                        line=mutation.line,
                        column=mutation.column,
                        under_lock=mutation.under_lock,
                    )
                )
            for var in sorted(fn.var_call_descs):
                function.var_sources[var] = linker.resolve_desc(
                    fn.var_call_descs[var], fn, node
                )
            graph.functions[function.key] = function
    return graph


# ---------------------------------------------------------------------------
# public API


def build_graph(
    paths: Sequence[Path], root: Optional[Path] = None
) -> ProgramGraph:
    """Parse every python file under ``paths`` into a program graph."""
    pending: Dict[str, _PendingModule] = {}
    syntax_errors: Dict[str, Tuple[int, str]] = {}
    for file_path in iter_python_files(paths):
        display = file_path
        if root is not None:
            try:
                display = file_path.relative_to(root)
            except ValueError:
                display = file_path
        path = display.as_posix()
        text = file_path.read_text(encoding="utf-8")
        module = module_name_for(file_path)
        try:
            tree = ast.parse(text, filename=path)
        except SyntaxError as error:
            syntax_errors[path] = (error.lineno or 1, error.msg or "")
            continue
        collector = _FileCollector(
            path=path, module=module, text=text, tree=tree
        )
        pending[module] = collector.collect()
    return _link(pending, syntax_errors)


def build_graph_from_sources(
    sources: Dict[str, str], module_names: Optional[Dict[str, str]] = None
) -> ProgramGraph:
    """Build a graph from in-memory sources (the unit-test entry point).

    ``sources`` maps display paths to code; module names derive from
    the paths (``src/repro/flow/x.py`` -> ``repro.flow.x``) unless
    overridden via ``module_names``.
    """
    pending: Dict[str, _PendingModule] = {}
    syntax_errors: Dict[str, Tuple[int, str]] = {}
    for path in sorted(sources):
        text = sources[path]
        module = (module_names or {}).get(path) or module_name_for(Path(path))
        try:
            tree = ast.parse(text, filename=path)
        except SyntaxError as error:
            syntax_errors[path] = (error.lineno or 1, error.msg or "")
            continue
        collector = _FileCollector(
            path=path, module=module, text=text, tree=tree
        )
        pending[module] = collector.collect()
    return _link(pending, syntax_errors)
