"""Bench: Table 2 — constraint parameter sets."""

from conftest import show

from repro.experiments import table2_parameters


def test_table2_parameters(benchmark, context):
    result = benchmark.pedantic(
        table2_parameters.run, args=(context,), rounds=1, iterations=1
    )
    show(result)
    by_bound = {}
    for row in result.rows:
        by_bound.setdefault(row["bound"], []).append(row)
    # the Table 2 sweep values, verbatim
    assert [r["value"] for r in by_bound["load_slope"]] == [1.0, 0.05, 0.03, 0.01]
    assert [r["value"] for r in by_bound["sigma_ceiling"]] == [0.04, 0.03, 0.02, 0.01]
    for bound, rows in by_bound.items():
        fractions = [r["usable_lut_fraction"] for r in rows]
        # progressively tighter values cut progressively more LUT area
        assert all(a >= b - 1e-9 for a, b in zip(fractions, fractions[1:]))
        if bound.endswith("slope"):
            # the loosest slope value (the default, 1) barely cuts
            assert fractions[0] > 0.97
        else:
            # even the loosest ceiling (0.04 ns) bites, by design
            assert 0.6 < fractions[0] < 1.0
