"""On-disk cache behaviour: keys, atomicity, corruption recovery.

A killed or interrupted run must never poison later runs: entries are
written atomically (temp file + ``os.replace``) and any entry that
fails to read back intact is treated as a miss and deleted.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.characterization.characterize import (
    Characterizer,
    characterization_call_count,
    reset_characterization_call_count,
)
from repro.characterization.grids import GridConfig
from repro.parallel.cache import CACHE_VERSION, LibraryCache, characterization_key

from tests.parallel.test_equivalence import assert_libraries_bit_identical


@pytest.fixture()
def cache(tmp_path):
    return LibraryCache(tmp_path / "cache")


@pytest.fixture()
def characterizer(cache):
    return Characterizer(cache=cache)


def _entry(cache):
    files = sorted(cache.directory.glob("*.npz"))
    assert len(files) == 1
    return files[0]


class TestKeying:
    def test_key_is_stable(self, characterizer, small_specs):
        a = characterization_key(characterizer, small_specs[:3], 10, 0, False, "stat")
        b = characterization_key(characterizer, small_specs[:3], 10, 0, False, "stat")
        assert a == b

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_samples": 11},
            {"seed": 1},
            {"include_global": True},
            {"kind": "samples"},
        ],
    )
    def test_key_changes_with_run_parameters(self, characterizer, small_specs, kwargs):
        base = {"n_samples": 10, "seed": 0, "include_global": False, "kind": "stat"}
        reference = characterization_key(characterizer, small_specs[:3], **base)
        changed = characterization_key(characterizer, small_specs[:3], **{**base, **kwargs})
        assert reference != changed

    def test_key_changes_with_grid_and_specs(self, cache, characterizer, small_specs):
        other = Characterizer(grid=GridConfig(n_slew=5, n_load=5), cache=cache)
        assert characterization_key(
            characterizer, small_specs[:3], 10, 0, False, "stat"
        ) != characterization_key(other, small_specs[:3], 10, 0, False, "stat")
        assert characterization_key(
            characterizer, small_specs[:3], 10, 0, False, "stat"
        ) != characterization_key(characterizer, small_specs[:4], 10, 0, False, "stat")


class TestCorruptionRecovery:
    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda path: path.write_bytes(path.read_bytes()[: path.stat().st_size // 2]),
            lambda path: path.write_bytes(b"this is not a zip archive"),
            lambda path: path.write_bytes(b""),
        ],
        ids=["truncated", "garbage", "empty"],
    )
    def test_corrupted_entry_is_a_self_healing_miss(
        self, cache, characterizer, small_specs, corrupt
    ):
        """A damaged file must fall back to recomputation, produce the
        exact cold result, and leave a healthy entry behind."""
        specs = small_specs[:8]
        reference = characterizer.statistical_library(specs, n_samples=6, seed=1)
        corrupt(_entry(cache))

        reset_characterization_call_count()
        recovered = characterizer.statistical_library(specs, n_samples=6, seed=1)
        assert characterization_call_count() == len(specs)
        assert_libraries_bit_identical(reference, recovered)

        # the rewritten entry must serve hits again
        reset_characterization_call_count()
        warm = characterizer.statistical_library(specs, n_samples=6, seed=1)
        assert characterization_call_count() == 0
        assert_libraries_bit_identical(reference, warm)

    def test_corrupted_samples_entry_recovers(self, cache, characterizer, small_specs):
        specs = small_specs[:4]
        reference = characterizer.sample_libraries(specs, n_samples=4, seed=6)
        _entry(cache).write_bytes(b"\x00" * 128)
        recovered = characterizer.sample_libraries(specs, n_samples=4, seed=6)
        for lib_a, lib_b in zip(reference, recovered):
            assert_libraries_bit_identical(lib_a, lib_b)

    def test_version_mismatch_is_a_miss(
        self, cache, characterizer, small_specs, monkeypatch
    ):
        specs = small_specs[:4]
        characterizer.statistical_library(specs, n_samples=6, seed=1)
        monkeypatch.setattr("repro.parallel.cache.CACHE_VERSION", CACHE_VERSION + 1)
        reset_characterization_call_count()
        characterizer.statistical_library(specs, n_samples=6, seed=1)
        assert characterization_call_count() == len(specs)

    def test_stray_temp_files_are_ignored_and_cleared(
        self, cache, characterizer, small_specs
    ):
        """A write killed between mkstemp and os.replace leaves a .tmp
        file; it must not count as an entry and clear() removes it."""
        characterizer.statistical_library(small_specs[:4], n_samples=6, seed=1)
        stray = cache.directory / "stat-deadbeef-12345.tmp"
        stray.write_bytes(b"partial write")
        assert cache.stats().entries == 1
        removed = cache.clear()
        assert removed == 1
        assert not stray.exists()
        assert cache.stats().entries == 0


class TestMaintenance:
    def test_stats_on_missing_directory(self, tmp_path):
        cache = LibraryCache(tmp_path / "never-created")
        stats = cache.stats()
        assert stats.entries == 0
        assert stats.total_bytes == 0
        assert "0 entries" in stats.to_text()

    def test_clear_then_recompute(self, cache, characterizer, small_specs):
        specs = small_specs[:4]
        characterizer.statistical_library(specs, n_samples=6, seed=1)
        assert cache.clear() == 1
        reset_characterization_call_count()
        characterizer.statistical_library(specs, n_samples=6, seed=1)
        assert characterization_call_count() == len(specs)

    def test_atomic_write_replaces_existing_entry(
        self, cache, characterizer, small_specs
    ):
        """Storing the same key twice keeps exactly one healthy file."""
        specs = small_specs[:4]
        library = characterizer.statistical_library(specs, n_samples=6, seed=1)
        cache.store_statistical(characterizer, specs, 6, 1, False, library)
        assert cache.stats().entries == 1
        loaded = cache.load_statistical(characterizer, specs, 6, 1, False)
        assert loaded is not None
        assert_libraries_bit_identical(library, loaded)
        assert not list(cache.directory.glob("*.tmp"))

    def test_use_cache_false_bypasses_cache(self, cache, characterizer, small_specs):
        specs = small_specs[:4]
        characterizer.statistical_library(specs, n_samples=6, seed=1, use_cache=False)
        assert cache.stats().entries == 0
        reference = characterizer.statistical_library(specs, n_samples=6, seed=1)
        bypass = characterizer.statistical_library(
            specs, n_samples=6, seed=1, use_cache=False
        )
        assert_libraries_bit_identical(reference, bypass)


def test_default_directory_honors_environment(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    assert LibraryCache().directory == tmp_path / "elsewhere"
