"""SDC-style constraint export/import of tuning windows."""

import pytest

from repro.core.sdc import parse_sdc, write_sdc, write_sdc_file
from repro.core.tuner import LibraryTuner
from repro.errors import TuningError


@pytest.fixture(scope="module")
def tuning(statistical_library):
    return LibraryTuner(statistical_library).tune("sigma_ceiling", 0.02)


class TestWrite:
    def test_commands_per_usable_pin(self, tuning):
        text = write_sdc(tuning)
        usable = sum(1 for w in tuning.windows.values() if w is not None)
        assert text.count("set_max_transition ") == usable
        assert text.count("set_max_capacitance ") == usable

    def test_excluded_cells_become_dont_use(self, statistical_library):
        tight = LibraryTuner(statistical_library).tune("sigma_ceiling", 0.002)
        text = write_sdc(tight)
        for cell in tight.excluded_cells:
            assert f"set_dont_use [get_lib_cells {cell}]" in text

    def test_header_documents_method(self, tuning):
        text = write_sdc(tuning)
        assert "sigma_ceiling" in text
        assert "0.02" in text

    def test_file_io(self, tuning, tmp_path):
        path = tmp_path / "windows.sdc"
        write_sdc_file(tuning, str(path))
        windows, _excluded = parse_sdc(path.read_text())
        assert windows


class TestRoundtrip:
    def test_windows_roundtrip(self, tuning):
        windows, excluded = parse_sdc(write_sdc(tuning))
        for key, window in tuning.windows.items():
            if window is None:
                assert key[0] in excluded or key not in windows
                continue
            parsed = windows[key]
            assert parsed is not None
            assert parsed.max_slew == pytest.approx(window.max_slew, rel=1e-5)
            assert parsed.max_load == pytest.approx(window.max_load, rel=1e-5)
            assert parsed.min_slew == pytest.approx(window.min_slew, rel=1e-5, abs=1e-9)

    def test_parsed_windows_drive_synthesis(self, tuning, statistical_library):
        """The exported artifact is functionally equivalent: synthesis
        under parsed windows equals synthesis under the originals."""
        from repro.netlist.builder import NetlistBuilder
        from repro.synth.constraints import SynthesisConstraints
        from repro.synth.synthesizer import synthesize

        def design():
            builder = NetlistBuilder("d")
            builder.clock()
            a = builder.register(builder.input_bus("a", 6))
            b = builder.register(builder.input_bus("b", 6))
            total, carry = builder.ripple_adder(a, b)
            builder.register(total + [carry])
            return builder.netlist

        windows, _ = parse_sdc(write_sdc(tuning))
        # merge: pins the sdc knows nothing about (excluded cells) stay None
        merged = dict(tuning.windows)
        merged.update(windows)
        original = synthesize(
            design(), statistical_library,
            SynthesisConstraints(clock_period=2.5, windows=tuning.windows),
        )
        reparsed = synthesize(
            design(), statistical_library,
            SynthesisConstraints(clock_period=2.5, windows=merged),
        )
        assert original.cell_histogram() == reparsed.cell_histogram()


class TestParserErrors:
    def test_malformed_line_rejected(self):
        with pytest.raises(TuningError):
            parse_sdc("set_max_transition oops")

    def test_missing_max_bound_rejected(self):
        with pytest.raises(TuningError):
            parse_sdc("set_max_transition 0.5 [get_lib_pins INV_1/Z]")

    def test_comments_and_blanks_ignored(self):
        windows, excluded = parse_sdc("# comment\n\n")
        assert windows == {} and excluded == ()
