"""Observability: spans, counters, profiling for the whole flow.

The package answers "where does the wall time of a run go?" with three
pieces:

* :mod:`repro.observe.tracer` — a lightweight :class:`Tracer` with
  nested spans (name, attributes, wall/CPU time, peak-RSS delta),
  monotone counters and last-write gauges.  A no-op
  :class:`NullTracer` is the process default, so instrumentation costs
  nothing when tracing is off.
* :mod:`repro.observe.export` — a process-safe JSONL exporter
  (``O_APPEND`` single-write lines) so spans emitted by
  ``ProcessPoolExecutor`` workers merge into one trace file, plus
  :func:`load_trace` to read a trace back.
* :mod:`repro.observe.render` — a console renderer printing the
  per-stage time tree with percentages and the counter totals.
* :mod:`repro.observe.ledger` — the append-only run ledger: one JSONL
  record per experiment run (scientific metrics, stage aggregates,
  fingerprints, host info) beside the artifact store.
* :mod:`repro.observe.analyze` — trace summarize/diff, the ledger
  trend report and the baseline regression gate behind ``python -m
  repro trace|report|check``.
* :mod:`repro.observe.metrics` — *live* telemetry: a process-wide
  registry of counters/gauges/histograms with labeled children,
  Prometheus text exposition (``GET /metrics`` on the tuning server),
  and worker-delta spooling so totals stay exact across process
  backends.  Instruments are declared in
  :mod:`repro.observe.catalog`; :mod:`repro.observe.dashboard` renders
  snapshots for ``python -m repro metrics [--watch]``.

Entry points: ``FlowConfig(tracer=...)``, ``python -m repro fig10
--trace out.jsonl`` / ``--profile``, or directly::

    from repro import Tracer
    from repro.observe import JsonlExporter, load_trace, render_trace

    tracer = Tracer(JsonlExporter("out.jsonl", truncate=True))
    with tracer.span("my-run"):
        ...  # any instrumented repro code
    tracer.finish()
    print(render_trace(load_trace("out.jsonl")))
"""

from repro.observe.analyze import (
    TraceDiff,
    check_record,
    diff_traces,
    render_report,
    summarize_trace,
)
from repro.observe.export import JsonlExporter, MemorySink, Trace, load_trace, merge_records
from repro.observe.ledger import RunLedger, RunRecord, metrics_from_result
from repro.observe.metrics import (
    METRICS_SPOOL_ENV,
    Counter,
    Gauge,
    Histogram,
    HistogramValue,
    MetricsRegistry,
    MetricsSnapshot,
    flush_worker_metrics,
    get_metrics,
    histogram_quantile,
    install_worker_metrics,
    load_metrics,
    log_buckets,
    parse_prometheus,
    render_prometheus,
    set_metrics_enabled,
)
from repro.observe.render import render_counters, render_trace, render_tree
from repro.observe.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceHandle,
    Tracer,
    get_tracer,
    install_worker_tracer,
    set_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramValue",
    "JsonlExporter",
    "METRICS_SPOOL_ENV",
    "MemorySink",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_TRACER",
    "NullTracer",
    "RunLedger",
    "RunRecord",
    "Span",
    "Trace",
    "TraceDiff",
    "TraceHandle",
    "Tracer",
    "check_record",
    "diff_traces",
    "flush_worker_metrics",
    "get_metrics",
    "get_tracer",
    "histogram_quantile",
    "install_worker_metrics",
    "install_worker_tracer",
    "load_metrics",
    "load_trace",
    "log_buckets",
    "merge_records",
    "metrics_from_result",
    "parse_prometheus",
    "render_counters",
    "render_prometheus",
    "render_report",
    "render_trace",
    "render_tree",
    "set_metrics_enabled",
    "set_tracer",
    "summarize_trace",
]
