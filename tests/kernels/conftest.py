"""Kernel-equivalence fixtures: coarse grids and small mapped designs.

Every test in this package leaves the process-global active kernel the
way it found it — kernel selection is the subject under test, and a
leaked ``set_kernel`` would silently change what *other* test modules
measure.
"""

from __future__ import annotations

import pytest

from repro.characterization.grids import GridConfig
from repro.kernels.dispatch import get_kernel, set_kernel
from repro.netlist.builder import NetlistBuilder
from tests.sta.conftest import bind_all


@pytest.fixture(autouse=True)
def _restore_active_kernel():
    """Undo any kernel switch a test (or the code under test) made."""
    previous = get_kernel()
    yield
    set_kernel(previous)


@pytest.fixture(scope="session")
def coarse_grid():
    """The smallest legal LUT grid — makes scalar sweeps affordable."""
    return GridConfig(n_slew=2, n_load=2)


@pytest.fixture()
def chain_netlist(small_specs):
    """clk -> DFF -> INV -> INV -> ND2 -> DFF, plus an output port."""
    builder = NetlistBuilder("chain")
    builder.clock()
    d_in = builder.input("d_in")
    side = builder.input("side")
    q0 = builder.dff(d_in)
    n1 = builder.inv(q0)
    n2 = builder.inv(n1)
    n3 = builder.nand(n2, side)
    builder.dff(n3)
    builder.output("y", n3)
    netlist = builder.netlist
    netlist.validate()
    return bind_all(netlist, small_specs)


@pytest.fixture()
def adder_netlist(small_specs):
    """Registered 8-bit ripple adder (deep carry chain, wide levels)."""
    builder = NetlistBuilder("regadd")
    builder.clock()
    a = builder.input_bus("a", 8)
    b = builder.input_bus("b", 8)
    a_reg = builder.register(a)
    b_reg = builder.register(b)
    total, carry = builder.ripple_adder(a_reg, b_reg)
    builder.register(total + [carry])
    builder.output("co", carry)
    netlist = builder.netlist
    netlist.validate()
    return bind_all(netlist, small_specs)
