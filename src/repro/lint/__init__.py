"""repro.lint — AST-based contract checking for the reproduction.

The execution layer rests on invariants the language cannot express:
bit-identical parallel characterization, content-addressed stage
fingerprints that assume deterministic inputs, single-write JSONL
appends, picklable executor payloads.  This package enforces them
statically — a custom rule engine (:mod:`repro.lint.engine`) walks
each file's AST once and dispatches to the repo-specific rules
(:mod:`repro.lint.rules`):

========  ==========================================================
DET001    wall-clock / global-unseeded RNG in deterministic zones
DET002    unordered iteration feeding fingerprints or hashes
PROC001   multi-call writes to shared append-mode (JSONL) files
PROC002   non-module-level callables submitted to process pools
API001    bare ``Exception`` / ``assert`` in library code
========  ==========================================================

A second, whole-program tier lives in :mod:`repro.lint.graph`: one
parse of the full tree builds import and call graphs, and the graph
rules (ASYNC001 blocking-in-coroutine, LOCK001 lock discipline,
DET003 cross-module determinism, ARCH001 layering) judge them —
``python -m repro lint --graph``.  See DESIGN.md §18.

Violations with a reason to exist carry ``# repro: noqa[RULE-ID]`` on
the flagged line; everything else is either fixed or committed to the
baseline file (:mod:`repro.lint.baseline`), which only ratchets down.
The CLI front end is ``python -m repro lint`` (:mod:`repro.lint.cli`);
the rule catalog is documented in DESIGN.md §13.

Programmatic use::

    from repro.lint import DEFAULT_RULES, LintEngine

    engine = LintEngine(DEFAULT_RULES)
    findings = engine.lint_source(code, path="src/repro/flow/x.py")
"""

from repro.lint.baseline import Baseline, write_baseline
from repro.lint.engine import (
    SYNTAX_RULE_ID,
    FileContext,
    LintEngine,
    Rule,
    iter_python_files,
    module_name_for,
)
from repro.lint.findings import Finding
from repro.lint.graph import ProgramGraph, build_graph
from repro.lint.graph.rules import (
    DEFAULT_GRAPH_RULES,
    GraphSettings,
    graph_rule_catalog,
    run_graph_rules,
)
from repro.lint.rules import DEFAULT_RULES, DETERMINISTIC_ZONES, rule_catalog
from repro.lint.sarif import render_sarif, render_sarif_text

__all__ = [
    "Baseline",
    "DEFAULT_GRAPH_RULES",
    "DEFAULT_RULES",
    "DETERMINISTIC_ZONES",
    "FileContext",
    "Finding",
    "GraphSettings",
    "LintEngine",
    "ProgramGraph",
    "Rule",
    "SYNTAX_RULE_ID",
    "build_graph",
    "graph_rule_catalog",
    "iter_python_files",
    "module_name_for",
    "render_sarif",
    "render_sarif_text",
    "rule_catalog",
    "run_graph_rules",
    "write_baseline",
]
