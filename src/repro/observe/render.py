"""Console rendering of traces: the per-stage time tree and counters.

The tree groups sibling spans by name — 304 ``characterize.cell``
spans render as one line with a count — and shows, per group, the
call count, total wall time and its percentage of the parent span's
wall time.  Unaccounted parent time shows as a ``(self)`` line, so a
serial run's percentages sum to ~100% at every level; concurrent
children (worker fan-out) can legitimately exceed 100% of the parent's
wall clock, which is itself useful signal — it *is* the parallel
speedup.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.observe.export import Trace

#: Child groups below this share of their parent are folded away.
_MIN_SHARE = 0.002


def _wall(span: Dict[str, Any]) -> float:
    """A span's wall time; unclosed spans count as zero."""
    wall = span.get("wall")
    return wall if isinstance(wall, (int, float)) else 0.0


def _finished(span: Dict[str, Any]) -> bool:
    """Whether the span record carries its close-time measurements.

    A worker killed mid-run (or a hand-truncated trace) leaves span
    records without ``wall``/``cpu``; they still render — marked
    ``[unfinished]`` — instead of failing the whole report.
    """
    return isinstance(span.get("wall"), (int, float))


def _children_by_parent(
    spans: List[Dict[str, Any]],
) -> Dict[Optional[str], List[Dict[str, Any]]]:
    known = {span.get("id") for span in spans}
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for span in spans:
        parent = span.get("parent")
        if parent not in known:
            parent = None  # roots, and orphans whose parent was never written
        children.setdefault(parent, []).append(span)
    return children


def _group_by_name(spans: List[Dict[str, Any]]) -> List[List[Dict[str, Any]]]:
    groups: Dict[str, List[Dict[str, Any]]] = {}
    for span in sorted(spans, key=lambda s: s.get("start", 0.0)):
        groups.setdefault(span.get("name", "?"), []).append(span)
    return sorted(groups.values(), key=lambda g: -sum(_wall(s) for s in g))


def _render_group(
    group: List[Dict[str, Any]],
    parent_wall: float,
    depth: int,
    children: Dict[Optional[str], List[Dict[str, Any]]],
    lines: List[str],
) -> None:
    total = sum(_wall(span) for span in group)
    cpu = sum(span.get("cpu") or 0.0 for span in group)
    share = 100.0 * total / parent_wall if parent_wall > 0 else 100.0
    count = f"x{len(group)}" if len(group) > 1 else ""
    name = "  " * depth + group[0].get("name", "?")
    if not all(_finished(span) for span in group):
        name += " [unfinished]"
    lines.append(
        f"{name:<44s} {count:>6s} {total:9.3f}s {share:6.1f}%  cpu {cpu:8.3f}s"
    )
    grandchildren: List[Dict[str, Any]] = []
    for span in group:
        grandchildren.extend(children.get(span.get("id"), ()))
    if not grandchildren:
        return
    child_total = 0.0
    for child_group in _group_by_name(grandchildren):
        group_wall = sum(_wall(span) for span in child_group)
        child_total += group_wall
        # Tiny groups fold away — unless one holds an unfinished span,
        # which is exactly what a truncated trace's reader looks for.
        if (
            total > 0
            and group_wall / total < _MIN_SHARE
            and all(_finished(span) for span in child_group)
        ):
            continue
        _render_group(child_group, total, depth + 1, children, lines)
    self_time = total - child_total
    if total > 0 and self_time / total >= _MIN_SHARE:
        self_name = "  " * (depth + 1) + "(self)"
        lines.append(
            f"{self_name:<44s} {'':>6s} {self_time:9.3f}s "
            f"{100.0 * self_time / total:6.1f}%"
        )


def render_tree(spans: List[Dict[str, Any]]) -> str:
    """The per-stage time tree over a list of span records.

    Partial traces render too: spans missing close-time fields show as
    ``[unfinished]`` with zero wall time, and orphan spans (parent id
    never written — e.g. a worker outliving a killed parent) are
    promoted to roots.
    """
    if not spans:
        return "trace: no spans recorded"
    children = _children_by_parent(spans)
    roots = children.get(None, [])
    root_wall = sum(_wall(span) for span in roots)
    unfinished = sum(1 for span in spans if not _finished(span))
    header = f"trace: {len(spans)} spans, {root_wall:.3f}s at the root"
    if unfinished:
        header += f" ({unfinished} unfinished)"
    lines = [
        header,
        f"{'span':<44s} {'calls':>6s} {'wall':>10s} {'share':>7s}",
    ]
    for group in _group_by_name(roots):
        _render_group(group, root_wall, 0, children, lines)
    return "\n".join(lines)


def render_counters(
    counters: Dict[str, float], gauges: Optional[Dict[str, Any]] = None
) -> str:
    """Fixed-width table of counter totals (and gauges, when present)."""
    if not counters and not gauges:
        return "counters: none recorded"
    lines = ["counters:"]
    for name in sorted(counters):
        value = counters[name]
        rendered = f"{value:g}" if isinstance(value, float) else str(value)
        lines.append(f"  {name:<40s} {rendered:>12s}")
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name:<40s} {str(gauges[name]):>12s}")
    return "\n".join(lines)


def render_trace(trace: Trace) -> str:
    """Tree plus counters: the full console report of one trace."""
    parts = [render_tree(trace.spans)]
    if len(trace.trace_ids) > 1:
        parts[0] = (
            f"warning: file holds {len(trace.trace_ids)} interleaved traces "
            "(appending exporter on a recycled path?)\n" + parts[0]
        )
    if trace.counters or trace.gauges:
        parts.append(render_counters(trace.counters, trace.gauges))
    return "\n\n".join(parts)
