"""Device-level view of a catalog cell.

Maps a :class:`~repro.cells.catalog.CellSpec` to the electrical
quantities the delay model consumes:

* output-stage device widths and series stacks per output pin;
* parasitic output capacitance;
* per-input-pin capacitance;
* Pelgrom network geometries for the Monte-Carlo sampler.

Width rule: a drive-strength-``s`` stage with a ``k``-deep stack uses
devices of width ``w_unit * s * (1 + 0.6 * (k - 1)) * width_factor``.
Stacking is therefore only half-compensated: a 4-input NAND of strength
s is ~1.6x more resistive than an inverter of the same strength, which
is both realistic and the reason high-fan-in gates show steeper sigma
surfaces (paper Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cells.catalog import CellSpec, OutputDrive
from repro.variation.montecarlo import NetworkGeometry
from repro.variation.process import TechnologyParams


def _stack_width_factor(stack: int) -> float:
    """Width multiplier applied to stacked devices (half compensation)."""
    return 1.0 + 0.6 * (stack - 1)


def network_geometry(
    tech: TechnologyParams, spec: CellSpec, drive: OutputDrive, rise: bool
) -> NetworkGeometry:
    """Pelgrom geometry of the pull-up (rise) or pull-down network."""
    stack = drive.stack_rise if rise else drive.stack_fall
    w_unit = tech.w_unit_p if rise else tech.w_unit_n
    width = w_unit * spec.strength * _stack_width_factor(stack) * drive.width_factor
    return NetworkGeometry(width=width, length=tech.channel_length, stack=stack)


@dataclass(frozen=True)
class CellElectricalView:
    """Cached electrical quantities of one cell in one technology."""

    spec: CellSpec
    tech: TechnologyParams

    def device_width(self, drive: OutputDrive, rise: bool) -> float:
        """Per-device width (um) of the output-stage network."""
        stack = drive.stack_rise if rise else drive.stack_fall
        w_unit = self.tech.w_unit_p if rise else self.tech.w_unit_n
        return (
            w_unit
            * self.spec.strength
            * _stack_width_factor(stack)
            * drive.width_factor
        )

    def parasitic_cap(self, drive: OutputDrive) -> float:
        """Drain-diffusion capacitance at the output node (pF)."""
        w_total = self.device_width(drive, rise=True) + self.device_width(drive, rise=False)
        return self.tech.c_diff * w_total

    def effective_input_strength(self) -> float:
        """Drive strength seen by the *input* devices.

        For single-stage cells the input devices are the output stage,
        so the input load scales linearly with strength.  Cells with
        internal stages decouple the input from the output stage, so
        input devices stop scaling past a point.
        """
        spec = self.spec
        has_internal = any(d.intrinsic_stages > 0 for d in spec.drives.values())
        if not has_internal:
            return spec.strength
        return min(spec.strength, 2.0 + spec.strength / 4.0)

    def input_capacitance(self, pin: str) -> float:
        """Capacitance of input pin ``pin`` (pF)."""
        tech = self.tech
        base = tech.c_gate * (tech.w_unit_n + tech.w_unit_p)
        return base * self.effective_input_strength() * self.spec.cap_factor(pin)

    def internal_strength(self) -> float:
        """Equivalent drive strength of internal stages (for intrinsic
        delay): internal stages are drawn smaller than the output."""
        return max(1.0, 0.5 * self.spec.strength)

    def geometry(self, output_pin: str, rise: bool) -> NetworkGeometry:
        """Pelgrom geometry of the selected output network."""
        return network_geometry(self.tech, self.spec, self.spec.drive(output_pin), rise)
