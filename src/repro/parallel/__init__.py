"""Parallel execution and on-disk memoization of characterization.

The Monte-Carlo characterization of the 304-cell catalog is
embarrassingly parallel across (cell, sample) pairs, and its inputs are
fully determined by a small, hashable configuration — which makes it
both a perfect fan-out target and a perfect cache key.  This package
provides the two halves:

* :mod:`repro.parallel.executor` — a :class:`concurrent.futures.
  ProcessPoolExecutor` fan-out that shards cells (and, for per-sample
  libraries, sample blocks) across worker processes.  Because every
  cell draws from its own seeded RNG stream (see
  :func:`repro.characterization.characterize.cell_rng`), workers
  regenerate exactly the draws the serial loop would have used and the
  results are bit-identical to serial execution, for any worker count
  and any chunking.
* :mod:`repro.parallel.cache` — an on-disk library cache
  (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``) keyed by a content hash
  of (catalog spec, grid, technology/corner/mismatch parameters, seed,
  sample count) that stores the mean/sigma LUT arrays as ``.npz`` and
  rebuilds full Liberty libraries from them without re-running the
  delay model.  Writes are atomic (temp file + ``os.replace``) so a
  killed run can never poison later runs.

* :mod:`repro.parallel.backends` — the pluggable execution layer every
  fan-out site dispatches through: an :class:`~repro.parallel.
  backends.ExecutorBackend` interface with ``serial`` (in-process,
  zero-copy — also the automatic single-worker fallback), ``process``
  (local :class:`~concurrent.futures.ProcessPoolExecutor`) and
  ``queue`` (a multi-host work-queue stub over a spooled task
  directory) implementations, selected via ``FlowConfig(backend=...)``
  / ``REPRO_BACKEND`` / ``--backend``.

All layers thread through :class:`~repro.characterization.
characterize.Characterizer` (``n_workers=...``, ``cache=...``,
``backend=...``), :class:`~repro.flow.experiment.FlowConfig` and the
``python -m repro`` CLI (``--jobs``, ``--backend``, ``--no-cache``,
``cache stats|clear``).
"""

from __future__ import annotations

import os

from repro.errors import ReproError
from repro.parallel.artifacts import ArtifactStats, ArtifactStore
from repro.parallel.backends import (
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    ExecutorBackend,
    ProcessBackend,
    QueueBackend,
    SerialBackend,
    chunk_indices,
    resolve_backend,
    validate_backend,
)
from repro.parallel.cache import CacheStats, LibraryCache

__all__ = [
    "ArtifactStats",
    "ArtifactStore",
    "BACKEND_NAMES",
    "CacheStats",
    "DEFAULT_BACKEND",
    "ExecutorBackend",
    "LibraryCache",
    "ProcessBackend",
    "QueueBackend",
    "SerialBackend",
    "chunk_indices",
    "resolve_backend",
    "resolve_jobs",
    "validate_backend",
]


def resolve_jobs(n_workers: int) -> int:
    """Normalize a worker-count knob to a concrete process count.

    ``1`` (the default) means serial execution in the calling process,
    ``0`` means one worker per available CPU, and any other positive
    value is taken literally.  Negative counts are rejected.
    """
    if n_workers < 0:
        raise ReproError(f"n_workers must be >= 0, got {n_workers}")
    if n_workers == 0:
        return os.cpu_count() or 1
    return n_workers
