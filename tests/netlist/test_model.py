"""Netlist structural invariants."""

import pytest

from repro.errors import NetlistError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.model import Netlist, PinRef, PortDirection


def tiny_netlist():
    """in -> INV -> ND2(with in2) -> out"""
    netlist = Netlist("tiny")
    a = netlist.add_input_port("a")
    b = netlist.add_input_port("b")
    netlist.add_instance("inv0", "INV", {"A": a, "Z": "n1"})
    netlist.add_instance("nd0", "ND2", {"A": "n1", "B": b, "Z": "n2"})
    netlist.add_output_port("y", "n2")
    return netlist


class TestConstruction:
    def test_ports_and_nets(self):
        netlist = tiny_netlist()
        assert set(netlist.input_ports()) == {"a", "b"}
        assert netlist.output_ports() == ["y"]
        assert netlist.port_net("y") == "n2"

    def test_duplicate_port_rejected(self):
        netlist = tiny_netlist()
        with pytest.raises(NetlistError):
            netlist.add_input_port("a")

    def test_duplicate_instance_rejected(self):
        netlist = tiny_netlist()
        with pytest.raises(NetlistError):
            netlist.add_instance("inv0", "INV", {"A": "a", "Z": "nx"})

    def test_two_drivers_rejected(self):
        netlist = tiny_netlist()
        with pytest.raises(NetlistError):
            netlist.add_instance("inv1", "INV", {"A": "a", "Z": "n1"})

    def test_wrong_pins_rejected(self):
        netlist = Netlist("bad")
        netlist.add_input_port("a")
        with pytest.raises(NetlistError):
            netlist.add_instance("g", "ND2", {"A": "a", "Z": "n"})

    def test_output_port_needs_existing_net(self):
        netlist = Netlist("bad")
        with pytest.raises(NetlistError):
            netlist.add_output_port("y", "ghost")

    def test_validate_passes_on_wellformed(self):
        tiny_netlist().validate()

    def test_clock_must_be_input(self):
        netlist = tiny_netlist()
        with pytest.raises(NetlistError):
            netlist.set_clock("y")


class TestTopology:
    def test_combinational_order_respects_deps(self):
        netlist = tiny_netlist()
        order = [i.name for i in netlist.combinational_order()]
        assert order.index("inv0") < order.index("nd0")

    def test_levelize(self):
        netlist = tiny_netlist()
        levels = netlist.levelize()
        assert levels["inv0"] == 1
        assert levels["nd0"] == 2

    def test_cycle_detected(self):
        netlist = Netlist("loop")
        netlist.add_input_port("a")
        netlist.add_instance("g1", "ND2", {"A": "a", "B": "n2", "Z": "n1"})
        netlist.add_instance("g2", "INV", {"A": "n1", "Z": "n2"})
        with pytest.raises(NetlistError):
            netlist.combinational_order()

    def test_sequential_breaks_cycles(self):
        builder = NetlistBuilder("seq")
        builder.clock()
        q = builder.fresh("q")
        inv = builder.inv(q)
        builder.dff(inv, out=q)
        builder.netlist.validate()  # q -> inv -> dff -> q is fine

    def test_endpoint_nets(self):
        builder = NetlistBuilder("ep")
        builder.clock()
        d = builder.input("d")
        q = builder.dff(d)
        builder.output("y", q)
        endpoints = builder.netlist.endpoint_nets()
        assert "d" in endpoints  # the FF data pin's net
        assert q in endpoints    # the output port's net


class TestEditing:
    def test_rewire_sink(self):
        netlist = tiny_netlist()
        sink = PinRef("nd0", "A")
        netlist.add_instance("inv1", "INV", {"A": "a", "Z": "n3"})
        netlist.rewire_sink("n1", sink, "n3")
        assert netlist.instance("nd0").connections["A"] == "n3"
        assert sink in netlist.net("n3").sinks
        assert sink not in netlist.net("n1").sinks

    def test_rewire_unknown_sink_rejected(self):
        netlist = tiny_netlist()
        with pytest.raises(NetlistError):
            netlist.rewire_sink("n1", PinRef("nd0", "B"), "n2")

    def test_prune_dangling(self):
        netlist = tiny_netlist()
        netlist.add_instance("dead", "INV", {"A": "a", "Z": "unused"})
        netlist.add_instance("dead2", "INV", {"A": "unused", "Z": "unused2"})
        removed = netlist.prune_dangling()
        assert removed == 2
        assert "dead" not in netlist.instances
        assert "unused" not in netlist.nets

    def test_prune_keeps_live_logic(self):
        netlist = tiny_netlist()
        assert netlist.prune_dangling() == 0
        assert len(netlist) == 2

    def test_unique_name(self):
        netlist = tiny_netlist()
        name = netlist.unique_name("buf")
        assert name not in netlist.instances
        assert name not in netlist.nets


class TestQueries:
    def test_stats(self):
        stats = tiny_netlist().stats()
        assert stats["instances"] == 2
        assert stats["sequential"] == 0

    def test_family_histogram(self):
        histogram = tiny_netlist().family_histogram()
        assert histogram == {"INV": 1, "ND2": 1}

    def test_cell_histogram_requires_mapping(self):
        netlist = tiny_netlist()
        with pytest.raises(NetlistError):
            netlist.cell_histogram()
        for instance in netlist:
            instance.cell = f"{instance.family}_1"
        assert netlist.cell_histogram() == {"INV_1": 1, "ND2_1": 1}
