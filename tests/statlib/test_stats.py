"""Dispersion metrics and streaming statistics (paper Sec. III)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.statlib.stats import (
    RunningStats,
    coefficient_of_variation,
    mean_sigma,
    normal_pdf,
)


class TestCoefficientOfVariation:
    def test_paper_fig1_pitfall(self):
        """Paper Fig. 1: equal variability, very different sigma —
        the reason the paper picks sigma as its metric."""
        left = coefficient_of_variation(mean=0.5, sigma=0.01)
        right = coefficient_of_variation(mean=5.0, sigma=0.1)
        assert left == pytest.approx(right) == pytest.approx(0.02)
        assert 0.01 < 0.1  # but sigma separates them

    def test_zero_mean_rejected(self):
        with pytest.raises(ReproError):
            coefficient_of_variation(0.0, 1.0)


class TestMeanSigma:
    def test_known_values(self):
        mean, sigma = mean_sigma([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert sigma == pytest.approx(1.0)

    def test_needs_two_samples(self):
        with pytest.raises(ReproError):
            mean_sigma([1.0])


class TestRunningStats:
    @given(st.integers(0, 2**32 - 1), st.integers(2, 60))
    @settings(max_examples=40, deadline=None)
    def test_matches_numpy(self, seed, n):
        rng = np.random.default_rng(seed)
        samples = rng.normal(5.0, 2.0, size=(n, 3, 4))
        stats = RunningStats()
        for sample in samples:
            stats.update(sample)
        assert np.allclose(stats.mean, samples.mean(axis=0))
        assert np.allclose(stats.sigma(ddof=1), samples.std(axis=0, ddof=1))

    def test_scalar_observations(self):
        stats = RunningStats()
        for value in (1.0, 2.0, 3.0):
            stats.update(np.asarray(value))
        assert float(stats.mean) == pytest.approx(2.0)
        assert float(stats.sigma()) == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self):
        stats = RunningStats()
        stats.update(np.zeros((2, 2)))
        with pytest.raises(ReproError):
            stats.update(np.zeros(3))

    def test_sigma_needs_two(self):
        stats = RunningStats()
        stats.update(np.asarray(1.0))
        with pytest.raises(ReproError):
            stats.sigma()

    def test_empty_mean_rejected(self):
        with pytest.raises(ReproError):
            RunningStats().mean


class TestNormalPdf:
    def test_integrates_to_one(self):
        x = np.linspace(-8, 8, 20001)
        pdf = normal_pdf(x, 0.0, 1.0)
        assert np.trapezoid(pdf, x) == pytest.approx(1.0, abs=1e-6)

    def test_peak_at_mean(self):
        x = np.linspace(-1, 3, 401)
        pdf = normal_pdf(x, 1.0, 0.5)
        assert x[np.argmax(pdf)] == pytest.approx(1.0, abs=0.01)

    def test_invalid_sigma(self):
        with pytest.raises(ReproError):
            normal_pdf(np.zeros(3), 0.0, 0.0)
