"""Bench: Fig. 14 — mean + 3 sigma per path, baseline vs tuned."""

import re

from conftest import show

from repro.experiments import fig14_mean_3sigma


def test_fig14_mean_3sigma(benchmark, context):
    result = benchmark.pedantic(
        fig14_mean_3sigma.run, args=(context,), rounds=1, iterations=1
    )
    show(result)
    baseline = [r for r in result.rows if r["design"] == "baseline"]
    tuned = [r for r in result.rows if r["design"] == "tuned"]
    assert baseline and tuned
    # worst mu+3sigma must not get worse under tuning (paper: 2.23->2.19)
    values = re.findall(r"worst mu\+3sigma: baseline ([\d.]+) ns -> tuned ([\d.]+)",
                        result.notes)
    base_worst, tuned_worst = map(float, values[0])
    assert tuned_worst <= base_worst * 1.01
    # mu+3sigma grows with mean delay along depth, bounded by arrivals
    for row in result.rows:
        assert row["worst_mu_plus_3s"] >= row["mean_delay"]
