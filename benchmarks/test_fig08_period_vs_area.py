"""Bench: Fig. 8 — clock period vs total cell area."""

from conftest import show

from repro.experiments import fig08_period_area


def test_fig08_period_vs_area(benchmark, context):
    result = benchmark.pedantic(
        fig08_period_area.run, args=(context,), rounds=1, iterations=1
    )
    show(result)
    rows = [row for row in result.rows if row["met"]]
    assert len(rows) >= 4
    # area shrinks towards relaxed clocks and flattens (the Fig. 8 knee)
    assert rows[0]["area_um2"] >= rows[-1]["area_um2"]
    assert rows[0]["area_vs_relaxed"] >= 1.0
    tail_flat = abs(rows[-1]["area_vs_relaxed"] - rows[-2]["area_vs_relaxed"]) < 0.05
    assert tail_flat
