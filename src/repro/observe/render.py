"""Console rendering of traces: the per-stage time tree and counters.

The tree groups sibling spans by name — 304 ``characterize.cell``
spans render as one line with a count — and shows, per group, the
call count, total wall time and its percentage of the parent span's
wall time.  Unaccounted parent time shows as a ``(self)`` line, so a
serial run's percentages sum to ~100% at every level; concurrent
children (worker fan-out) can legitimately exceed 100% of the parent's
wall clock, which is itself useful signal — it *is* the parallel
speedup.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.observe.export import Trace

#: Child groups below this share of their parent are folded away.
_MIN_SHARE = 0.002


def _children_by_parent(
    spans: List[Dict[str, Any]],
) -> Dict[Optional[str], List[Dict[str, Any]]]:
    known = {span["id"] for span in spans}
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for span in spans:
        parent = span.get("parent")
        if parent not in known:
            parent = None  # roots, and worker spans whose parent is elsewhere
        children.setdefault(parent, []).append(span)
    return children


def _group_by_name(spans: List[Dict[str, Any]]) -> List[List[Dict[str, Any]]]:
    groups: Dict[str, List[Dict[str, Any]]] = {}
    for span in sorted(spans, key=lambda s: s.get("start", 0.0)):
        groups.setdefault(span["name"], []).append(span)
    return sorted(groups.values(), key=lambda g: -sum(s["wall"] for s in g))


def _render_group(
    group: List[Dict[str, Any]],
    parent_wall: float,
    depth: int,
    children: Dict[Optional[str], List[Dict[str, Any]]],
    lines: List[str],
) -> None:
    total = sum(span["wall"] for span in group)
    cpu = sum(span.get("cpu", 0.0) for span in group)
    share = 100.0 * total / parent_wall if parent_wall > 0 else 100.0
    count = f"x{len(group)}" if len(group) > 1 else ""
    name = "  " * depth + group[0]["name"]
    lines.append(
        f"{name:<44s} {count:>6s} {total:9.3f}s {share:6.1f}%  cpu {cpu:8.3f}s"
    )
    grandchildren: List[Dict[str, Any]] = []
    for span in group:
        grandchildren.extend(children.get(span["id"], ()))
    if not grandchildren:
        return
    child_total = 0.0
    for child_group in _group_by_name(grandchildren):
        group_wall = sum(span["wall"] for span in child_group)
        child_total += group_wall
        if total > 0 and group_wall / total < _MIN_SHARE:
            continue
        _render_group(child_group, total, depth + 1, children, lines)
    self_time = total - child_total
    if total > 0 and self_time / total >= _MIN_SHARE:
        self_name = "  " * (depth + 1) + "(self)"
        lines.append(
            f"{self_name:<44s} {'':>6s} {self_time:9.3f}s "
            f"{100.0 * self_time / total:6.1f}%"
        )


def render_tree(spans: List[Dict[str, Any]]) -> str:
    """The per-stage time tree over a list of span records."""
    if not spans:
        return "trace: no spans recorded"
    children = _children_by_parent(spans)
    roots = children.get(None, [])
    root_wall = sum(span["wall"] for span in roots)
    lines = [
        f"trace: {len(spans)} spans, {root_wall:.3f}s at the root",
        f"{'span':<44s} {'calls':>6s} {'wall':>10s} {'share':>7s}",
    ]
    for group in _group_by_name(roots):
        _render_group(group, root_wall, 0, children, lines)
    return "\n".join(lines)


def render_counters(
    counters: Dict[str, float], gauges: Optional[Dict[str, Any]] = None
) -> str:
    """Fixed-width table of counter totals (and gauges, when present)."""
    if not counters and not gauges:
        return "counters: none recorded"
    lines = ["counters:"]
    for name in sorted(counters):
        value = counters[name]
        rendered = f"{value:g}" if isinstance(value, float) else str(value)
        lines.append(f"  {name:<40s} {rendered:>12s}")
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name:<40s} {str(gauges[name]):>12s}")
    return "\n".join(lines)


def render_trace(trace: Trace) -> str:
    """Tree plus counters: the full console report of one trace."""
    parts = [render_tree(trace.spans)]
    if trace.counters or trace.gauges:
        parts.append(render_counters(trace.counters, trace.gauges))
    return "\n\n".join(parts)
