"""Power-targeted tuning (the Sec. III metric extension)."""

import pytest

from repro.cells.catalog import build_catalog
from repro.characterization.characterize import Characterizer
from repro.core.power_tuning import (
    compare_window_maps,
    pin_equivalent_power_sigma,
    power_sigma_windows,
    restrict_pin_power,
    window_overlap,
)
from repro.core.restriction import SlewLoadWindow
from repro.core.tuner import LibraryTuner
from repro.errors import TuningError


@pytest.fixture(scope="module")
def power_library():
    specs = build_catalog(families=["INV", "ND2", "NR2", "ADDF"])
    return Characterizer(include_power=True).statistical_library(
        specs, n_samples=25, seed=11
    )


class TestPowerRestriction:
    def test_equivalent_is_max_over_arcs(self, power_library):
        import numpy as np

        pin = power_library.cell("ADDF_2").pin("S")
        equivalent = pin_equivalent_power_sigma(pin)
        stacked = np.stack(
            [t.values for arc in pin.timing for t in arc.power_sigma_tables()]
        )
        assert np.allclose(equivalent.values, stacked.max(axis=0))

    def test_huge_ceiling_keeps_everything(self, power_library):
        pin = power_library.cell("INV_1").pin("Z")
        window = restrict_pin_power(pin, ceiling=1e9)
        equivalent = pin_equivalent_power_sigma(pin)
        assert window.max_slew == pytest.approx(float(equivalent.index_1[-1]))
        assert window.max_load == pytest.approx(float(equivalent.index_2[-1]))

    def test_tiny_ceiling_excludes(self, power_library):
        pin = power_library.cell("INV_8").pin("Z")
        assert restrict_pin_power(pin, ceiling=1e-12) is None

    def test_moderate_ceiling_cuts_slow_edges(self, power_library):
        """Energy sigma is driven by the short-circuit (slew) term, so
        the window caps the input slew first."""
        import numpy as np

        pin = power_library.cell("INV_1").pin("Z")
        equivalent = pin_equivalent_power_sigma(pin)
        ceiling = float(np.quantile(equivalent.values, 0.5))
        window = restrict_pin_power(pin, ceiling)
        assert window is not None
        assert window.max_slew < float(equivalent.index_1[-1])

    def test_invalid_ceiling_rejected(self, power_library):
        with pytest.raises(TuningError):
            restrict_pin_power(power_library.cell("INV_1").pin("Z"), 0.0)

    def test_delay_library_rejected(self, statistical_library):
        with pytest.raises(TuningError):
            pin_equivalent_power_sigma(statistical_library.cell("INV_1").pin("Z"))


class TestLibraryLevel:
    def test_windows_cover_all_pins(self, power_library):
        windows = power_sigma_windows(power_library, ceiling=1e-3)
        expected = {
            (cell.name, pin.name)
            for cell in power_library
            for pin in cell.output_pins()
        }
        assert set(windows) == expected

    def test_power_and_delay_tuning_cut_opposite_cells(self, power_library):
        """Delay sigma falls with drive strength (Pelgrom) while energy
        sigma *grows* with it (short-circuit current scales with
        width) — so a power ceiling restricts the strong variants the
        delay ceiling leaves untouched.  The two metrics genuinely
        disagree, which is why the paper's "other properties" extension
        is a different tuning, not a rerun."""
        import numpy as np

        delay = LibraryTuner(power_library).tune("sigma_ceiling", 0.03).windows
        sigmas = [
            pin_equivalent_power_sigma(cell.pin(pin)).values
            for cell in power_library
            for pin in (p.name for p in cell.output_pins())
        ]
        ceiling = float(np.quantile(np.stack(sigmas), 0.75))
        power = power_sigma_windows(power_library, ceiling)
        overlaps = compare_window_maps(delay, power)
        assert any(v < 0.999 for v in overlaps.values())  # not identical

        def usable_fraction(windows, cell_name):
            window = windows[(cell_name, "Z")]
            if window is None:
                return 0.0
            grid = pin_equivalent_power_sigma(power_library.cell(cell_name).pin("Z"))
            full = (float(grid.index_1[-1]) - float(grid.index_1[0])) * (
                float(grid.index_2[-1]) - float(grid.index_2[0])
            )
            area = (window.max_slew - window.min_slew) * (
                window.max_load - window.min_load
            )
            return area / full

        # power ceiling: strong inverter more restricted than weak
        assert usable_fraction(power, "INV_32") < usable_fraction(power, "INV_1")
        # delay ceiling: the other way around
        assert usable_fraction(delay, "INV_32") >= usable_fraction(delay, "INV_1")


class TestWindowOverlap:
    def test_identical_windows(self):
        window = SlewLoadWindow(0.0, 1.0, 0.0, 0.01)
        assert window_overlap(window, window) == pytest.approx(1.0)

    def test_disjoint_windows(self):
        a = SlewLoadWindow(0.0, 0.1, 0.0, 0.001)
        b = SlewLoadWindow(0.5, 1.0, 0.005, 0.01)
        assert window_overlap(a, b) == 0.0

    def test_nested_windows(self):
        outer = SlewLoadWindow(0.0, 1.0, 0.0, 0.01)
        inner = SlewLoadWindow(0.0, 0.5, 0.0, 0.005)
        assert window_overlap(outer, inner) == pytest.approx(0.25)

    def test_none_handling(self):
        window = SlewLoadWindow(0.0, 1.0, 0.0, 0.01)
        assert window_overlap(None, None) == 1.0
        assert window_overlap(window, None) == 0.0

    def test_mismatched_maps_rejected(self):
        with pytest.raises(TuningError):
            compare_window_maps({("A", "Z"): None}, {("B", "Z"): None})
