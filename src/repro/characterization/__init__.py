"""Characterization surrogate: the package's stand-in for SPICE.

Turns :class:`~repro.cells.catalog.CellSpec` entries into Liberty cells
with NLDM delay/transition LUTs, either nominally or under sampled
process variation.  The analytical model is deliberately simple —
effective-resistance switching with an alpha-power-law overdrive — but
reproduces the qualitative structure the paper's tuning method relies
on (sigma rising with slew and load, falling with drive strength).
"""

from repro.characterization.devices import CellElectricalView, network_geometry
from repro.characterization.delaymodel import GateDelayModel, ArcTables
from repro.characterization.grids import GridConfig, slew_grid, load_grid
from repro.characterization.characterize import Characterizer
from repro.characterization.power import PowerModel, leakage_statistics

__all__ = [
    "CellElectricalView",
    "network_geometry",
    "GateDelayModel",
    "ArcTables",
    "GridConfig",
    "slew_grid",
    "load_grid",
    "Characterizer",
    "PowerModel",
    "leakage_statistics",
]
