"""Trace persistence: JSONL round-trips and cross-process merging.

The exporter's claim is that any number of processes can append to one
trace file and the read-back (:func:`~repro.observe.load_trace`)
reconstructs the full span tree and the true counter totals.  The
worker test exercises exactly the production path: a
``ProcessPoolExecutor`` whose tasks join the trace through a pickled
:class:`~repro.observe.TraceHandle`.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

from repro.observe import (
    JsonlExporter,
    Tracer,
    install_worker_tracer,
    load_trace,
    merge_records,
    set_tracer,
)


def _worker_task(handle, index):
    """Pool task: join the trace, record one span and one counter."""
    tracer = install_worker_tracer(handle)
    try:
        with tracer.span("worker.task", index=index):
            tracer.add("worker.items", 1)
        tracer.flush_counters()
    finally:
        set_tracer(None)
    return index


class TestJsonlRoundTrip:
    """Write records, read the same trace back."""

    def test_spans_and_counters_round_trip(self, tmp_path):
        """Span tree, attributes and counter totals all survive."""
        path = tmp_path / "t.jsonl"
        tracer = Tracer(JsonlExporter(path, truncate=True))
        with tracer.span("root") as root:
            with tracer.span("child", key="abc"):
                pass
            tracer.add("n", 7)
        tracer.finish()
        trace = load_trace(path)
        assert trace.span_names() == ["child", "root"]
        child = next(s for s in trace.spans if s["name"] == "child")
        assert child["parent"] == root.span_id
        assert child["attrs"] == {"key": "abc"}
        assert trace.counters == {"n": 7}
        assert trace.total_wall("root") == root.wall

    def test_truncate_clears_previous_contents(self, tmp_path):
        """``truncate=True`` empties the file eagerly at construction."""
        path = tmp_path / "t.jsonl"
        path.write_text('{"type":"span","stale":true}\n')
        JsonlExporter(path, truncate=True)
        assert path.read_text() == ""

    def test_append_mode_preserves_previous_contents(self, tmp_path):
        """Without ``truncate``, a new exporter appends (worker mode)."""
        path = tmp_path / "t.jsonl"
        first = Tracer(JsonlExporter(path))
        with first.span("one"):
            pass
        second = Tracer(JsonlExporter(path))
        with second.span("two"):
            pass
        assert len(load_trace(path).spans) == 2

    def test_unparseable_lines_are_skipped(self, tmp_path):
        """A torn line (crashed writer) doesn't fail the whole read."""
        path = tmp_path / "t.jsonl"
        tracer = Tracer(JsonlExporter(path))
        with tracer.span("ok"):
            pass
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "span", "torn...\n')
        trace = load_trace(path)
        assert trace.span_names() == ["ok"]

    def test_merge_records_sums_counter_deltas(self):
        """Counter records are deltas: records from N writers sum."""
        trace = merge_records([
            {"type": "counters", "counters": {"n": 3}, "gauges": {"w": 1}},
            {"type": "counters", "counters": {"n": 4, "m": 1}, "gauges": {"w": 8}},
        ])
        assert trace.counters == {"n": 7, "m": 1}
        assert trace.gauges == {"w": 8}


class TestWorkerMerge:
    """Spans from pool workers merge into the parent's trace file."""

    def test_worker_spans_nest_under_submitting_span(self, tmp_path):
        """Every worker span links to the span open at submission, and
        per-worker counter flushes sum to the true total."""
        path = tmp_path / "t.jsonl"
        tracer = Tracer(JsonlExporter(path, truncate=True))
        n_tasks = 6
        with tracer.span("fanout") as fanout:
            handle = tracer.handle()
            with ProcessPoolExecutor(max_workers=2) as pool:
                results = list(
                    pool.map(_worker_task, [handle] * n_tasks, range(n_tasks))
                )
        tracer.finish()
        assert results == list(range(n_tasks))
        trace = load_trace(path)
        worker_spans = [s for s in trace.spans if s["name"] == "worker.task"]
        assert len(worker_spans) == n_tasks
        assert all(s["parent"] == fanout.span_id for s in worker_spans)
        assert all(s["trace"] == tracer.trace_id for s in worker_spans)
        assert sorted(s["attrs"]["index"] for s in worker_spans) == list(
            range(n_tasks)
        )
        assert trace.counters["worker.items"] == n_tasks

    def test_install_worker_tracer_drops_foreign_tracer(self):
        """Without a handle, a fork-inherited tracer must not leak:
        the installed tracer always belongs to the current process."""
        tracer = install_worker_tracer(None)
        import os

        assert tracer.pid == os.getpid()
