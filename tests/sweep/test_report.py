"""The markdown grid report, rendered from hand-built sweep results
(no flows, no store — pure formatting)."""

from __future__ import annotations

from repro.flow.metrics import TuningComparison
from repro.sweep import (
    GridPoint,
    PointResult,
    SweepGrid,
    SweepResult,
    render_sweep_report,
)


def _comparison(point: GridPoint, met: bool = True) -> TuningComparison:
    return TuningComparison(
        method=point.method,
        parameter=point.parameter,
        clock_period=point.clock_period,
        baseline_sigma=0.10,
        tuned_sigma=0.08,
        baseline_area=1000.0,
        tuned_area=1050.0,
        tuned_met=met,
    )


def _result(points_statuses, scheduled=0, backend="serial"):
    results = [
        PointResult(point=p, status=s, comparison=_comparison(p, met))
        for p, s, met in points_statuses
    ]
    counts = {
        status: sum(1 for r in results if r.status == status)
        for status in ("hit", "skip", "run")
    }
    designs = tuple(dict.fromkeys(r.point.design for r in results))
    return SweepResult(
        grid=SweepGrid(
            designs=designs,
            methods=("sigma_ceiling",),
            parameters=(0.5,),
            clock_periods=(3.0,),
        ),
        results=results,
        counts=counts,
        scheduled=scheduled,
        backend=backend,
        statlib_key="a" * 64,
        design_keys={design: "b" * 64 for design in designs},
        wall=1.5,
    )


class TestReport:
    def test_header_summarizes_incremental_counts(self):
        result = _result(
            [
                (GridPoint("microcontroller", "sigma_ceiling", 0.5, 3.0),
                 "run", True),
                (GridPoint("sensor", "sigma_ceiling", 0.5, 3.0),
                 "hit", True),
            ],
            scheduled=2,
            backend="queue",
        )
        report = render_sweep_report(result)
        assert "# Design-family sweep" in report
        assert "1 run, 0 skip (shared baseline only), 1 hit" in report
        assert "(2 tasks dispatched)" in report
        assert "backend: queue" in report
        assert f"`{'a' * 12}`" in report

    def test_per_design_grids_and_results_rows(self):
        result = _result(
            [
                (GridPoint("microcontroller", "sigma_ceiling", 0.5, 3.0),
                 "hit", True),
                (GridPoint("sensor", "sigma_ceiling", 0.5, 3.0),
                 "skip", True),
            ]
        )
        report = render_sweep_report(result)
        assert "### microcontroller" in report
        assert "### sensor" in report
        assert "| 3 ns |" in report
        assert "| sigma_ceiling | hit |" in report
        assert "| sigma_ceiling | skip |" in report
        assert (
            "| microcontroller | sigma_ceiling | 0.5 | 3 | hit "
            "| +20.0% | +5.0% |" in report
        )

    def test_mixed_cell_shows_per_status_counts(self):
        points = [
            (GridPoint("microcontroller", "sigma_ceiling", p, 3.0), s, True)
            for p, s in ((0.25, "hit"), (0.5, "run"), (0.75, "run"))
        ]
        report = render_sweep_report(_result(points))
        assert "hit x1, run x2" in report

    def test_uniform_multi_point_cell_is_counted(self):
        points = [
            (GridPoint("microcontroller", "sigma_ceiling", p, 3.0),
             "hit", True)
            for p in (0.25, 0.5)
        ]
        report = render_sweep_report(_result(points))
        assert "hit x2" in report

    def test_infeasible_point_marked(self):
        result = _result(
            [
                (GridPoint("microcontroller", "sigma_ceiling", 0.5, 3.0),
                 "run", False),
            ],
            scheduled=2,
        )
        report = render_sweep_report(result)
        assert "infeasible" in report
        assert "+20.0%" not in report
