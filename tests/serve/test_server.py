"""End-to-end HTTP contract: routing, errors, trace ids, backpressure."""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.errors import ServerBusyError, TuningError
from repro.flow.experiment import FlowConfig
from repro.flow.metrics import TuningComparison
from repro.observe import MemorySink, Tracer
from repro.serve.client import TuningClient, request_async
from repro.serve.handlers import TuningService
from repro.serve.loadgen import run_burst, tune_burst
from repro.serve.schema import ErrorResponse, TuneRequest
from repro.serve.server import TuningServer


def stub_evaluate(config, point):
    """A synthesis-free evaluation with the flow's result shape."""
    clock, method, parameter = point
    return TuningComparison(
        method=method or "baseline",
        parameter=parameter,
        clock_period=clock,
        baseline_sigma=0.10,
        tuned_sigma=0.05,
        baseline_area=100.0,
        tuned_area=104.0,
    )


def make_service(evaluate=stub_evaluate, max_pending=8, tracer=None):
    """A tiny serial-backend service around ``evaluate``."""
    config = FlowConfig.from_env(
        scale="tiny", backend="serial", jobs=1, tracer=tracer
    )
    return TuningService(
        config=config, max_pending=max_pending, evaluate=evaluate
    )


async def raw_http(port, payload_bytes, method=b"POST", target=b"/v1/request"):
    """One raw HTTP exchange; returns (status, parsed JSON body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    head = (
        method + b" " + target + b" HTTP/1.1\r\n"
        b"host: test\r\n"
        b"content-length: " + str(len(payload_bytes)).encode() + b"\r\n"
        b"connection: close\r\n\r\n"
    )
    writer.write(head + payload_bytes)
    await writer.drain()
    raw = await reader.read(-1)
    writer.close()
    await writer.wait_closed()
    status = int(raw.split(b" ", 2)[1])
    body = raw.partition(b"\r\n\r\n")[2]
    return status, json.loads(body)


class TestRouting:
    def test_healthz_and_status(self):
        async def scenario():
            async with TuningServer(
                service=make_service(), ledger=False
            ) as server:
                status, body = await raw_http(
                    server.port, b"", method=b"GET", target=b"/healthz"
                )
                assert (status, body["ok"]) == (200, True)
                status, body = await raw_http(
                    server.port, b"", method=b"GET", target=b"/v1/status"
                )
                assert status == 200
                assert body["kind"] == "status.result"
                assert body["status"]["backend"] == "serial"

        asyncio.run(scenario())

    def test_unknown_path_is_404(self):
        async def scenario():
            async with TuningServer(
                service=make_service(), ledger=False
            ) as server:
                status, body = await raw_http(
                    server.port, b"", method=b"GET", target=b"/v2/zap"
                )
                assert status == 404
                assert body["error"]["type"] == "RequestError"

        asyncio.run(scenario())

    def test_wrong_method_is_405_style_error(self):
        async def scenario():
            async with TuningServer(
                service=make_service(), ledger=False
            ) as server:
                status, body = await raw_http(
                    server.port, b"", method=b"DELETE", target=b"/v1/status"
                )
                assert status == 400
                assert "GET" in body["error"]["message"]

        asyncio.run(scenario())

    def test_tune_over_client_echoes_trace_id(self):
        async def scenario():
            async with TuningServer(
                service=make_service(), ledger=False
            ) as server:
                client = TuningClient(port=server.port)
                response = await asyncio.to_thread(
                    client.tune,
                    "cell_load_slope",
                    0.2,
                    3.0,
                    "microcontroller",
                    None,
                    "my-trace-42",
                )
                assert response.trace_id == "my-trace-42"
                assert response.outcome == "computed"
                assert response.sigma_reduction == pytest.approx(0.5)
                assert response.wall_ms > 0

        asyncio.run(scenario())


class TestErrorContract:
    """Invalid payloads return structured errors — never tracebacks."""

    def test_invalid_json_is_structured_400(self):
        async def scenario():
            async with TuningServer(
                service=make_service(), ledger=False
            ) as server:
                status, body = await raw_http(server.port, b"{not json")
                assert status == 400
                assert body["error"]["type"] == "RequestError"
                assert "JSON" in body["error"]["message"]
                assert "Traceback" not in json.dumps(body)

        asyncio.run(scenario())

    def test_unknown_kind_is_structured_400(self):
        async def scenario():
            async with TuningServer(
                service=make_service(), ledger=False
            ) as server:
                payload = json.dumps({"schema": 1, "kind": "zap"}).encode()
                status, body = await raw_http(server.port, payload)
                assert status == 400
                assert body["error"]["type"] == "RequestError"

        asyncio.run(scenario())

    def test_unknown_tuning_method_maps_to_tuning_error(self):
        async def scenario():
            async with TuningServer(
                service=make_service(), ledger=False
            ) as server:
                client = TuningClient(port=server.port)
                with pytest.raises(TuningError, match="nope"):
                    await asyncio.to_thread(
                        client.tune, "nope", 0.2, 3.0
                    )

        asyncio.run(scenario())

    def test_oversized_body_is_413(self):
        async def scenario():
            async with TuningServer(
                service=make_service(), ledger=False
            ) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(
                    b"POST /v1/request HTTP/1.1\r\n"
                    b"content-length: 99999999\r\n\r\n"
                )
                await writer.drain()
                raw = await reader.read(-1)
                writer.close()
                await writer.wait_closed()
                assert b" 413 " in raw.split(b"\r\n", 1)[0]

        asyncio.run(scenario())

    def test_internal_error_is_opaque_500(self):
        def exploding(config, point):
            raise ValueError("database password is hunter2")

        async def scenario():
            async with TuningServer(
                service=make_service(evaluate=exploding), ledger=False
            ) as server:
                request = TuneRequest(
                    method="cell_load_slope", parameter=0.2, clock_period=3.0
                )
                status, response = await request_async(
                    request, port=server.port
                )
                assert status == 500
                assert isinstance(response, ErrorResponse)
                assert response.error_type == "InternalError"
                assert "Traceback" not in response.message

        asyncio.run(scenario())


class TestCoalescingOverHttp:
    def test_identical_burst_computes_once(self):
        gate = threading.Event()
        calls = []

        def gated(config, point):
            calls.append(point)
            assert gate.wait(timeout=30)
            return stub_evaluate(config, point)

        service = make_service(evaluate=gated)

        async def scenario():
            async with TuningServer(service=service, ledger=False) as server:
                requests = tune_burst(10, "cell_load_slope", 0.2, 3.0)
                burst = asyncio.ensure_future(
                    run_burst(requests, port=server.port, concurrency=10)
                )
                for _ in range(2000):
                    if service.coalescer.coalesced == 9:
                        break
                    await asyncio.sleep(0.005)
                gate.set()
                report = await burst
                assert report.statuses == {200: 10}
                assert report.outcomes["computed"] == 1
                assert report.outcomes["coalesced"] == 9
                assert len(calls) == 1
                assert len(report.latencies_ms) == 10
                assert report.p50 <= report.p95 <= report.p99

        asyncio.run(scenario())


class TestBackpressure:
    def test_full_queue_returns_429(self):
        gate = threading.Event()

        def gated(config, point):
            assert gate.wait(timeout=30)
            return stub_evaluate(config, point)

        service = make_service(evaluate=gated, max_pending=1)

        async def scenario():
            async with TuningServer(service=service, ledger=False) as server:
                first = TuneRequest(
                    method="cell_load_slope", parameter=0.1, clock_period=3.0
                )
                second = TuneRequest(
                    method="cell_load_slope", parameter=0.2, clock_period=3.0
                )
                leader = asyncio.ensure_future(
                    request_async(first, port=server.port)
                )
                for _ in range(2000):
                    if service.dispatcher.pending == 1:
                        break
                    await asyncio.sleep(0.005)
                status, response = await request_async(
                    second, port=server.port
                )
                assert status == 429
                assert isinstance(response, ErrorResponse)
                assert response.error_type == "ServerBusyError"
                gate.set()
                status, _ = await leader
                assert status == 200
                assert service.counters["rejected"] == 1

        asyncio.run(scenario())

    def test_client_raises_server_busy_error(self):
        gate = threading.Event()

        def gated(config, point):
            assert gate.wait(timeout=30)
            return stub_evaluate(config, point)

        service = make_service(evaluate=gated, max_pending=1)

        async def scenario():
            async with TuningServer(service=service, ledger=False) as server:
                leader = asyncio.ensure_future(
                    request_async(
                        TuneRequest(
                            method="cell_load_slope",
                            parameter=0.1,
                            clock_period=3.0,
                        ),
                        port=server.port,
                    )
                )
                for _ in range(2000):
                    if service.dispatcher.pending == 1:
                        break
                    await asyncio.sleep(0.005)
                client = TuningClient(port=server.port)
                with pytest.raises(ServerBusyError):
                    await asyncio.to_thread(
                        client.tune, "cell_load_slope", 0.9, 3.0
                    )
                gate.set()
                await leader

        asyncio.run(scenario())


async def raw_text_http(port, target=b"/metrics", method=b"GET"):
    """One raw HTTP exchange returning (status, content-type, text)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        method + b" " + target + b" HTTP/1.1\r\n"
        b"host: test\r\n"
        b"content-length: 0\r\n"
        b"connection: close\r\n\r\n"
    )
    await writer.drain()
    raw = await reader.read(-1)
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    content_type = b""
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-type":
            content_type = value.strip()
    return status, content_type.decode(), body.decode()


class TestMetricsEndpoint:
    def test_metrics_exposition_reflects_traffic(self):
        from repro.observe.metrics import get_metrics, parse_prometheus

        get_metrics().reset()
        service = make_service()

        async def scenario():
            async with TuningServer(service=service, ledger=False) as server:
                client = TuningClient(port=server.port)
                for _ in range(2):
                    await asyncio.to_thread(
                        client.tune, "cell_load_slope", 0.2, 3.0
                    )
                return await raw_text_http(server.port)

        status, content_type, text = asyncio.run(scenario())
        assert status == 200
        assert content_type.startswith("text/plain; version=0.0.4")
        snapshot = parse_prometheus(text)
        # The stub evaluator stores nothing, so both sequential tunes
        # take the cold leader path and count as computed.
        computed = snapshot.value(
            "repro_serve_requests_total", kind="tune", outcome="computed"
        )
        assert computed == 2
        latency = snapshot.value(
            "repro_serve_request_seconds", kind="tune", outcome="computed"
        )
        assert latency.count == 2
        # The scrape itself is the one request in flight when the
        # snapshot is rendered.
        assert snapshot.value("repro_serve_inflight_requests") == 1
        assert (
            snapshot.value("repro_serve_http_responses_total", **{"class": "2xx"})
            >= 2
        )
        assert (
            snapshot.value("repro_serve_coalesce_total", role="leader") >= 2
        )

    def test_metrics_endpoint_is_get_only(self):
        async def scenario():
            async with TuningServer(
                service=make_service(), ledger=False
            ) as server:
                return await raw_http(
                    server.port, b"", method=b"POST", target=b"/metrics"
                )

        status, body = asyncio.run(scenario())
        assert status == 400
        assert "GET" in body["error"]["message"]

    def test_scrapes_stay_out_of_the_ledger(self, tmp_path):
        from repro.observe.ledger import RunLedger

        ledger = RunLedger(tmp_path / "ledger.jsonl")

        async def scenario():
            async with TuningServer(
                service=make_service(), ledger=ledger
            ) as server:
                for _ in range(3):
                    status, _, _ = await raw_text_http(server.port)
                    assert status == 200

        asyncio.run(scenario())
        assert ledger.read() == []


class TestLoadReportDegeneracy:
    def test_empty_latency_percentile_warns_not_crashes(self):
        from repro.serve.loadgen import LoadReport

        report = LoadReport(
            requests=0, wall_s=0.0, statuses={}, outcomes={}, latencies_ms=()
        )
        with pytest.warns(RuntimeWarning, match="empty latency"):
            assert report.percentile(99) == 0.0
        with pytest.warns(RuntimeWarning):
            assert report.p50 == 0.0
        assert report.throughput_rps == 0.0

    def test_out_of_range_quantile_clamps(self):
        from repro.serve.loadgen import LoadReport

        report = LoadReport(
            requests=2,
            wall_s=1.0,
            statuses={200: 2},
            outcomes={"warm": 2},
            latencies_ms=(1.0, 2.0),
        )
        assert report.percentile(100) == 2.0
        assert report.percentile(150) == 2.0  # clamped, not IndexError

    def test_all_failed_burst_warns(self):
        def exploding(config, point):
            raise ValueError("boom")

        async def scenario():
            async with TuningServer(
                service=make_service(evaluate=exploding), ledger=False
            ) as server:
                requests = tune_burst(2, "cell_load_slope", 0.2, 3.0)
                return await run_burst(
                    requests, port=server.port, concurrency=1
                )

        with pytest.warns(RuntimeWarning, match="no 200 responses"):
            report = asyncio.run(scenario())
        assert report.ok() == 0
        assert report.statuses == {500: 2}


class TestObservability:
    def test_requests_land_in_span_tree_and_ledger(self, tmp_path):
        from repro.observe.ledger import RunLedger

        tracer = Tracer(MemorySink())
        service = make_service(tracer=tracer)
        ledger = RunLedger(tmp_path / "ledger.jsonl")

        async def scenario():
            async with TuningServer(service=service, ledger=ledger) as server:
                client = TuningClient(port=server.port)
                await asyncio.to_thread(
                    client.tune,
                    "cell_load_slope",
                    0.2,
                    3.0,
                    "microcontroller",
                    None,
                    "trace-ledger-1",
                )
                await asyncio.to_thread(client.status)

        asyncio.run(scenario())
        spans = [s for s in tracer.spans if s.name == "serve.request"]
        assert len(spans) == 2
        tune_span = next(s for s in spans if s.attrs["kind"] == "tune")
        assert tune_span.attrs["outcome"] == "computed"
        assert tune_span.attrs["status"] == 200
        assert tune_span.attrs["request_trace"] == "trace-ledger-1"
        records = ledger.read()
        by_experiment = {r.experiment: r for r in records}
        assert set(by_experiment) == {"serve.tune", "serve.status"}
        tune_record = by_experiment["serve.tune"]
        assert tune_record.run_id == "trace-ledger-1"
        assert tune_record.counters["serve.status"] == 200.0
        assert tune_record.counters["serve.outcome.computed"] == 1.0
        assert tune_record.metrics["latency_ms"] > 0
        assert tune_record.scale == "tiny"
