"""Technology parameters and PVT corners for the 40 nm surrogate.

The paper characterizes everything in the typical corner
(TT / 1.1 V / 25 C) and validates in Sec. VII.C that mean and sigma
scale by the same factor when moving to fast or slow corners.  The
corner model here reproduces exactly that mechanism: a corner shifts
the threshold voltage and channel length globally, which scales the
effective drive resistance — and therefore both the mean delay and,
through the same resistance, the delay sensitivity to local mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.errors import VariationError
from repro.units import NOMINAL_TEMPERATURE, NOMINAL_VDD


@dataclass(frozen=True)
class TechnologyParams:
    """Electrical parameters of the CMOS 40 nm surrogate process.

    Units: volts, um, kOhm, pF, ns — chosen so that
    ``R [kOhm] * C [pF] = time [ns]``.
    """

    #: Supply voltage of the characterization corner (V).
    vdd: float = NOMINAL_VDD
    #: Nominal NMOS/PMOS threshold voltage magnitude (V).
    vth: float = 0.45
    #: Alpha-power-law velocity-saturation exponent.
    alpha: float = 1.35
    #: Nominal drawn channel length (um).
    channel_length: float = 0.04
    #: Unit NMOS width (um) — the width of a drive-strength-1 pulldown.
    w_unit_n: float = 0.12
    #: Unit PMOS width (um) — wider to balance hole mobility.
    w_unit_p: float = 0.20
    #: Drive-resistance constant: R = k_res * L / (W * (vdd - vth)^alpha),
    #: in kOhm * um / um, calibrated so a unit inverter FO2 stage is ~30 ps.
    k_res: float = 78.0
    #: Extra resistivity of PMOS devices (hole mobility); the wider
    #: w_unit_p brings pull-up and pull-down resistance back to parity.
    p_resistance_factor: float = 1.7
    #: Gate capacitance per um of gate width (pF/um).
    c_gate: float = 0.0008
    #: Drain-diffusion (parasitic output) capacitance per um width (pF/um).
    c_diff: float = 0.00035
    #: Delay contribution factor of the input slew (dimensionless).
    k_slew_delay: float = 0.28
    #: Output-transition factor: slew_out ~ k_tr * R * C.
    k_transition: float = 2.1
    #: Input-slew feed-through into the output transition.
    k_slew_feedthrough: float = 0.06
    #: Switching-point fraction of vdd: a threshold mismatch dvth moves
    #: the input crossing time by dvth * slew / (k_switch * vdd) — slow
    #: edges amplify mismatch (zero effect at nominal dvth = 0).
    k_switch: float = 0.8
    #: Internal switching capacitance per um of stage width (pF/um):
    #: nodes inside the cell that toggle along with the output.
    c_internal: float = 0.0003
    #: Short-circuit energy factor: both networks conduct while the
    #: input crosses; energy ~ k_shortcircuit * slew * W * overdrive.
    k_shortcircuit: float = 0.004
    #: Subthreshold leakage prefactor (uA per um width).
    i_leak0: float = 0.08
    #: Subthreshold slope voltage (V): leakage ~ exp(-vth / v_slope).
    v_leak_slope: float = 0.085

    def overdrive(self, dvth: float = 0.0) -> float:
        """(vdd - vth - dvth)^alpha, guarded against non-conduction."""
        headroom = self.vdd - (self.vth + dvth)
        if headroom <= 0.05:
            raise VariationError(
                f"threshold shift {dvth:+.3f} V leaves no gate overdrive "
                f"(vdd={self.vdd} V, vth={self.vth} V)"
            )
        return headroom ** self.alpha


@dataclass(frozen=True)
class Corner:
    """A PVT corner: a global shift applied to every device on the die."""

    name: str
    #: Global threshold-voltage shift (V). Positive = slower.
    dvth: float = 0.0
    #: Relative channel-length change. Positive = longer = slower.
    dlength_rel: float = 0.0
    #: Supply voltage (V).
    voltage: float = NOMINAL_VDD
    #: Junction temperature (degC).
    temperature: float = NOMINAL_TEMPERATURE
    #: Extra multiplicative derate on drive resistance (temperature
    #: dependence folded in: hot = higher resistance).
    resistance_derate: float = 1.0

    def apply(self, tech: TechnologyParams) -> TechnologyParams:
        """Return the technology parameters shifted into this corner."""
        return replace(
            tech,
            vdd=self.voltage,
            vth=tech.vth + self.dvth,
            channel_length=tech.channel_length * (1.0 + self.dlength_rel),
            k_res=tech.k_res * self.resistance_derate,
        )


def typical_corner() -> Corner:
    """TT / 1.1 V / 25 C — the paper's characterization corner."""
    return Corner(name="TT1P1V25C")


def fast_corner() -> Corner:
    """FF-like corner: low vth, short channel, high voltage, cold."""
    return Corner(
        name="FF1P21V0C",
        dvth=-0.045,
        dlength_rel=-0.05,
        voltage=1.21,
        temperature=0.0,
        resistance_derate=0.96,
    )


def slow_corner() -> Corner:
    """SS-like corner: high vth, long channel, low voltage, hot."""
    return Corner(
        name="SS0P99V125C",
        dvth=0.045,
        dlength_rel=0.05,
        voltage=0.99,
        temperature=125.0,
        resistance_derate=1.06,
    )


#: The three corners used in the Sec. VII.C validation (Fig. 15).
CORNERS: Dict[str, Corner] = {
    "fast": fast_corner(),
    "typical": typical_corner(),
    "slow": slow_corner(),
}


def corner_by_name(name: str) -> Corner:
    """Look up one of the canonical corners (``fast``/``typical``/``slow``)."""
    try:
        return CORNERS[name]
    except KeyError:
        raise VariationError(
            f"unknown corner {name!r}; available: {sorted(CORNERS)}"
        ) from None
