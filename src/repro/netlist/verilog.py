"""Structural Verilog export/import for netlists.

A mapped netlist serializes to the gate-level Verilog a synthesis tool
would hand to place-and-route::

    module microcontroller (clk, rst_n, ...);
      input clk;
      output [31:0] mem_addr;
      wire n42;
      ND2_4 u123 (.A(n41), .B(n17), .Z(n42));
    endmodule

and the reader parses that subset back.  Escaping: the generators use
hierarchical names (``alu0/add/fa3``, ``mux2.Z``) which are not legal
Verilog identifiers, so they are emitted as escaped identifiers
(``\\alu0/add/fa3 ``) per the Verilog standard.

Bound cells are emitted as the module type when present, otherwise the
technology-independent family — so both pre- and post-synthesis
netlists round-trip.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import NetlistError
from repro.netlist.model import Netlist, PortDirection

_SIMPLE_ID = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")


def _escape(name: str) -> str:
    """Verilog identifier; escaped form for hierarchical names."""
    if _SIMPLE_ID.match(name):
        return name
    return f"\\{name} "


def _unescape(token: str) -> str:
    if token.startswith("\\"):
        return token[1:]
    return token


def _bus_ports(netlist: Netlist) -> Tuple[Dict[str, Tuple[int, PortDirection]], List[str]]:
    """Group ``name[i]`` ports into buses; return (buses, scalar ports)."""
    buses: Dict[str, Dict[int, PortDirection]] = {}
    scalars: List[str] = []
    pattern = re.compile(r"^(?P<base>.+)\[(?P<index>\d+)\]$")
    for port, direction in netlist.ports.items():
        match = pattern.match(port)
        if match:
            buses.setdefault(match.group("base"), {})[int(match.group("index"))] = direction
        else:
            scalars.append(port)
    complete: Dict[str, Tuple[int, PortDirection]] = {}
    for base, bits in list(buses.items()):
        width = max(bits) + 1
        directions = set(bits.values())
        if set(bits) == set(range(width)) and len(directions) == 1:
            complete[base] = (width, directions.pop())
        else:  # ragged "bus": keep as scalars
            for index in bits:
                scalars.append(f"{base}[{index}]")
    return complete, scalars


def write_verilog(netlist: Netlist) -> str:
    """Serialize the netlist as structural Verilog."""
    buses, scalars = _bus_ports(netlist)
    port_names = [_escape(p) for p in scalars] + [_escape(b) for b in buses]
    lines = [f"module {_escape(netlist.name)} ("]
    lines.append("  " + ",\n  ".join(port_names))
    lines.append(");")

    for port in scalars:
        direction = netlist.ports[port].value
        lines.append(f"  {direction} {_escape(port)};")
    for base, (width, direction) in buses.items():
        lines.append(f"  {direction.value} [{width - 1}:0] {_escape(base)};")

    port_nets = set(netlist.ports)
    for net in netlist.nets:
        if net not in port_nets:
            lines.append(f"  wire {_escape(net)};")

    # output ports are separate from their driving nets in the model;
    # connect them the way a tool would, with continuous assignments
    for port, direction in netlist.ports.items():
        if direction is PortDirection.OUTPUT:
            net = netlist.port_net(port)
            if net != port:
                lines.append(
                    f"  assign {_format_net(port, buses)} = {_format_net(net, buses)};"
                )

    for instance in netlist.instances.values():
        module = instance.cell or instance.family
        connections = ", ".join(
            f".{pin}({_format_net(net, buses)})"
            for pin, net in instance.connections.items()
        )
        lines.append(f"  {module} {_escape(instance.name)} ({connections});")
    lines.append("endmodule")
    lines.append("")
    return "\n".join(lines)


def _format_net(net: str, buses: Dict[str, Tuple[int, PortDirection]]) -> str:
    match = re.match(r"^(?P<base>.+)\[(?P<index>\d+)\]$", net)
    if match and match.group("base") in buses:
        return f"{_escape(match.group('base'))}[{match.group('index')}]"
    return _escape(net)


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<escaped>\\[^\s]+)            # escaped identifier (ends at space)
  | (?P<word>[A-Za-z_$][\w$]*)       # plain identifier / keyword
  | (?P<number>\d+)
  | (?P<punct>[()\[\];,.:=])
    """,
    re.VERBOSE,
)

_KNOWN_CELL = re.compile(r"^[A-Z][A-Z0-9]*(_\d+(P\d+)?)?$")


def _tokenize(text: str) -> List[str]:
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
    tokens: List[str] = []
    for match in _TOKEN_RE.finditer(text):
        tokens.append(match.group())
    return tokens


class _Reader:
    def __init__(self, tokens: List[str]):
        self._tokens = tokens
        self._pos = 0

    def peek(self) -> Optional[str]:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise NetlistError("unexpected end of verilog input")
        self._pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise NetlistError(f"verilog: expected {token!r}, got {got!r}")

    def read_net(self) -> str:
        base = _unescape(self.next())
        if self.peek() == "[":
            self.next()
            index = self.next()
            self.expect("]")
            return f"{base}[{index}]"
        return base


def parse_verilog(text: str) -> Netlist:
    """Parse the structural subset :func:`write_verilog` produces.

    Cell references are split back into (family, cell): a module name
    with a drive-strength suffix binds the instance, a bare family
    leaves it unmapped.
    """
    from repro.cells.functions import FUNCTIONS
    from repro.cells.naming import parse_cell_name

    reader = _Reader(_tokenize(text))
    reader.expect("module")
    netlist = Netlist(_unescape(reader.next()))
    reader.expect("(")
    while reader.next() != ")":
        pass
    reader.expect(";")

    pending_instances: List[Tuple[str, str, Dict[str, str]]] = []
    declared: Dict[str, Tuple[str, int]] = {}
    assigns: Dict[str, str] = {}
    while True:
        token = reader.next()
        if token == "endmodule":
            break
        if token == "assign":
            target = reader.read_net()
            reader.expect("=")
            assigns[target] = reader.read_net()
            reader.expect(";")
            continue
        if token in ("input", "output", "wire"):
            width = 1
            if reader.peek() == "[":
                reader.next()
                high = int(reader.next())
                reader.expect(":")
                low = int(reader.next())
                reader.expect("]")
                width = high - low + 1
            name = _unescape(reader.next())
            reader.expect(";")
            declared[name] = (token, width)
            continue
        # instance: <module> <name> ( .PIN(net), ... );
        module = token
        instance_name = _unescape(reader.next())
        reader.expect("(")
        connections: Dict[str, str] = {}
        while True:
            nxt = reader.next()
            if nxt == ")":
                break
            if nxt == ",":
                continue
            if nxt != ".":
                raise NetlistError(f"verilog: expected '.pin', got {nxt!r}")
            pin = reader.next()
            reader.expect("(")
            connections[pin] = reader.read_net()
            reader.expect(")")
        reader.expect(";")
        pending_instances.append((instance_name, module, connections))

    # declare ports (inputs first so their nets exist as driven)
    for name, (kind, width) in declared.items():
        if kind != "input":
            continue
        if width == 1:
            netlist.add_input_port(name)
        else:
            for index in range(width):
                netlist.add_input_port(f"{name}[{index}]")
    if "clk" in netlist.ports:
        netlist.set_clock("clk")

    for instance_name, module, connections in pending_instances:
        if module in FUNCTIONS:
            family, cell = module, ""
        else:
            parsed = parse_cell_name(module)
            family, cell = parsed.family, module
        instance = netlist.add_instance(instance_name, family, connections)
        instance.cell = cell

    for name, (kind, width) in declared.items():
        if kind != "output":
            continue
        bits = [name] if width == 1 else [f"{name}[{i}]" for i in range(width)]
        for bit in bits:
            netlist.add_output_port(bit, assigns.get(bit, bit))
    return netlist
