"""Slope tables of a sigma LUT (paper eqs. 12-13).

The paper differentiates the maximum-equivalent sigma LUT along the
slew and the load axes *in index space*::

    slew(i, j) = (Q(i, j) - Q(i-1, j)) / delta_i        (eq. 12)
    load(i, j) = (Q(i, j) - Q(i, j-1)) / delta_j        (eq. 13)

with ``delta_i = delta_j = 1`` (the indexes step by one), so the slope
is simply the forward difference between adjacent entries.  "Because
the indexes start at greater than one, the first row or column of the
slew and load slope tables is filled with zeros."

Index-space (rather than physical-unit) slopes make the bounds of
Table 2 (1, 0.05, 0.03, 0.01) dimensionally sigma-per-grid-step, which
is how we interpret and reproduce them.  A physical-unit variant is
provided for the ablation benches.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TuningError
from repro.liberty.model import Lut


def _check_values(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise TuningError(f"slope tables need a 2-D LUT, got shape {values.shape}")
    return values


def slew_slope_table(values: np.ndarray) -> np.ndarray:
    """Eq. 12: forward difference along the slew axis (rows).

    Row 0 is zero-filled, matching the paper's convention.
    """
    values = _check_values(values)
    slope = np.zeros_like(values)
    slope[1:, :] = values[1:, :] - values[:-1, :]
    return slope


def load_slope_table(values: np.ndarray) -> np.ndarray:
    """Eq. 13: forward difference along the load axis (columns).

    Column 0 is zero-filled, matching the paper's convention.
    """
    values = _check_values(values)
    slope = np.zeros_like(values)
    slope[:, 1:] = values[:, 1:] - values[:, :-1]
    return slope


def slew_slope_table_physical(lut: Lut) -> np.ndarray:
    """Slope per ns of input slew (ablation variant of eq. 12)."""
    slope = np.zeros_like(lut.values)
    steps = np.diff(lut.index_1)[:, None]
    slope[1:, :] = (lut.values[1:, :] - lut.values[:-1, :]) / steps
    return slope


def load_slope_table_physical(lut: Lut) -> np.ndarray:
    """Slope per pF of output load (ablation variant of eq. 13)."""
    slope = np.zeros_like(lut.values)
    steps = np.diff(lut.index_2)[None, :]
    slope[:, 1:] = (lut.values[:, 1:] - lut.values[:, :-1]) / steps
    return slope
