"""Parser/writer round-trips.

``parse_liberty(write_liberty(lib))`` must reconstruct every cell, pin,
arc and LUT entry — checked on hand-written text, on the characterized
libraries (nominal and statistical) and property-style across cells.
"""

import numpy as np
import pytest

from repro.errors import LibertyParseError
from repro.liberty.model import Library, PinDirection
from repro.liberty.parser import parse_liberty, tokenize
from repro.liberty.writer import write_liberty


def roundtrip(library: Library) -> Library:
    return parse_liberty(write_liberty(library))


def assert_libraries_equal(a: Library, b: Library) -> None:
    assert set(a.cells) == set(b.cells)
    assert a.is_statistical == b.is_statistical
    assert a.operating_conditions.name == b.operating_conditions.name
    assert a.operating_conditions.voltage == pytest.approx(b.operating_conditions.voltage)
    for name, cell_a in a.cells.items():
        cell_b = b.cells[name]
        assert cell_a.area == pytest.approx(cell_b.area)
        assert cell_a.is_sequential == cell_b.is_sequential
        assert cell_a.is_latch == cell_b.is_latch
        assert cell_a.clock_pin == cell_b.clock_pin
        assert set(cell_a.pins) == set(cell_b.pins)
        for pin_name, pin_a in cell_a.pins.items():
            pin_b = cell_b.pins[pin_name]
            assert pin_a.direction == pin_b.direction
            assert pin_a.capacitance == pytest.approx(pin_b.capacitance)
            assert pin_a.function == pin_b.function
            assert len(pin_a.timing) == len(pin_b.timing)
            for arc_a, arc_b in zip(pin_a.timing, pin_b.timing):
                assert arc_a.related_pin == arc_b.related_pin
                assert arc_a.timing_sense == arc_b.timing_sense
                for slot in (
                    "cell_rise",
                    "cell_fall",
                    "rise_transition",
                    "fall_transition",
                    "sigma_rise",
                    "sigma_fall",
                ):
                    lut_a = getattr(arc_a, slot)
                    lut_b = getattr(arc_b, slot)
                    assert (lut_a is None) == (lut_b is None)
                    if lut_a is not None:
                        assert lut_a.allclose(lut_b, rtol=1e-6, atol=1e-12)


class TestRoundtrip:
    def test_nominal_library(self, nominal_library):
        assert_libraries_equal(nominal_library, roundtrip(nominal_library))

    def test_statistical_library(self, statistical_library):
        parsed = roundtrip(statistical_library)
        assert parsed.is_statistical
        assert_libraries_equal(statistical_library, parsed)

    def test_sigma_tables_survive(self, statistical_library):
        parsed = roundtrip(statistical_library)
        cell = next(iter(statistical_library))
        arc = cell.output_pins()[0].timing[0]
        parsed_arc = parsed.cell(cell.name).pin(arc and cell.output_pins()[0].name).timing[0]
        assert parsed_arc.sigma_rise is not None
        assert np.allclose(parsed_arc.sigma_rise.values, arc.sigma_rise.values, rtol=1e-6)


class TestParserDirect:
    MINIMAL = """
    library (mini) {
      time_unit : "1ns";
      operating_conditions (TT) { process : 1; voltage : 1.1; temperature : 25; }
      cell (INV_1) {
        area : 0.8;
        pin (A) { direction : input; capacitance : 0.0002; }
        pin (Z) {
          direction : output;
          function : "!A";
          max_capacitance : 0.01;
          timing () {
            related_pin : "A";
            timing_sense : negative_unate;
            cell_rise (t) {
              index_1 ("0.01, 0.1");
              index_2 ("0.001, 0.01");
              values ("0.02, 0.08", "0.03, 0.09");
            }
            cell_fall (t) {
              index_1 ("0.01, 0.1");
              index_2 ("0.001, 0.01");
              values ("0.02, 0.07", "0.03, 0.10");
            }
          }
        }
      }
    }
    """

    def test_parse_minimal(self):
        library = parse_liberty(self.MINIMAL)
        cell = library.cell("INV_1")
        assert cell.area == pytest.approx(0.8)
        assert cell.pin("A").capacitance == pytest.approx(0.0002)
        arc = cell.pin("Z").arc_from("A")
        assert arc.cell_rise.values[1, 1] == pytest.approx(0.09)
        assert arc.cell_fall.values[0, 1] == pytest.approx(0.07)

    def test_comments_are_ignored(self):
        text = self.MINIMAL.replace(
            "area : 0.8;", "/* a block\ncomment */ area : 0.8;"
        )
        assert parse_liberty(text).cell("INV_1").area == pytest.approx(0.8)

    def test_empty_input_rejected(self):
        with pytest.raises(LibertyParseError):
            parse_liberty("")

    def test_wrong_top_group_rejected(self):
        with pytest.raises(LibertyParseError):
            parse_liberty("cell (x) { }")

    def test_unterminated_group_rejected(self):
        with pytest.raises(LibertyParseError):
            parse_liberty("library (x) { cell (y) { ")

    def test_tokenizer_tracks_lines(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens] == [1, 2, 3]

    def test_line_continuations_joined(self):
        tokens = tokenize('values ("1, 2", \\\n "3, 4");')
        assert any(t.text == '"3, 4"' for t in tokens)

    def test_direction_parsed(self):
        library = parse_liberty(self.MINIMAL)
        assert library.cell("INV_1").pin("Z").direction is PinDirection.OUTPUT


class TestWriterDirect:
    def test_output_is_parseable_text(self, nominal_library):
        text = write_liberty(nominal_library)
        assert text.startswith("library (")
        assert "lu_table_template" in text
        parse_liberty(text)

    def test_statistical_flag_emitted(self, statistical_library):
        assert "statistical : true;" in write_liberty(statistical_library)

    def test_file_io(self, nominal_library, tmp_path):
        from repro.liberty.parser import parse_liberty_file
        from repro.liberty.writer import write_liberty_file

        path = tmp_path / "lib.lib"
        write_liberty_file(nominal_library, str(path))
        assert_libraries_equal(nominal_library, parse_liberty_file(str(path)))
