"""Property-based invariants of bilinear LUT interpolation (hypothesis).

The vectorized :func:`~repro.liberty.lut.bilinear_interpolate_many` is
the STA hot path; these properties pin it to the scalar reference
implementation, to the table itself on grid points, and to
monotonicity on monotone tables.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.liberty.lut import bilinear_interpolate, bilinear_interpolate_many
from repro.liberty.model import Lut


@st.composite
def luts(draw, monotone=False):
    """Random LUTs with strictly increasing axes; optionally with
    values nondecreasing along both axes."""
    n_slew = draw(st.integers(2, 7))
    n_load = draw(st.integers(2, 7))
    slew_start = draw(st.floats(0.001, 0.1))
    load_start = draw(st.floats(0.0001, 0.01))
    slew_steps = draw(
        st.lists(st.floats(0.01, 0.5), min_size=n_slew - 1, max_size=n_slew - 1)
    )
    load_steps = draw(
        st.lists(st.floats(0.001, 0.05), min_size=n_load - 1, max_size=n_load - 1)
    )
    slews = slew_start + np.concatenate([[0.0], np.cumsum(slew_steps)])
    loads = load_start + np.concatenate([[0.0], np.cumsum(load_steps)])
    cells = st.floats(0.0, 1.0)
    raw = np.array(
        draw(
            st.lists(
                st.lists(cells, min_size=n_load, max_size=n_load),
                min_size=n_slew,
                max_size=n_slew,
            )
        )
    )
    if monotone:
        raw = np.cumsum(np.cumsum(raw, axis=0), axis=1)
    return Lut(slews, loads, raw + 0.01)


#: Query points reaching well outside the characterized ranges, to
#: exercise the clamping path on both axes.
POINTS = st.tuples(st.floats(-0.5, 3.0), st.floats(-0.01, 0.2))


class TestMatchesScalarReference:
    @given(lut=luts(), points=st.lists(POINTS, min_size=1, max_size=12))
    @settings(max_examples=120, deadline=None)
    def test_vectorized_equals_scalar(self, lut, points):
        """Identical arithmetic, identical results — bit-for-bit."""
        slews = np.array([p[0] for p in points])
        loads = np.array([p[1] for p in points])
        many = bilinear_interpolate_many(lut, slews, loads)
        scalar = np.array([
            bilinear_interpolate(lut, slew, load) for slew, load in points
        ])
        assert np.array_equal(many, scalar)

    @given(lut=luts())
    @settings(max_examples=80, deadline=None)
    def test_broadcasting_matches_flat_queries(self, lut):
        """A (slew column, load row) outer-product query must equal the
        element-by-element evaluation."""
        slews = lut.index_1[:, None]
        loads = lut.index_2[None, :]
        grid = bilinear_interpolate_many(lut, slews, loads)
        assert grid.shape == lut.values.shape
        flat = bilinear_interpolate_many(
            lut,
            np.repeat(lut.index_1, lut.index_2.size),
            np.tile(lut.index_2, lut.index_1.size),
        )
        assert np.array_equal(grid.ravel(), flat)


class TestExactOnGridPoints:
    @given(lut=luts())
    @settings(max_examples=100, deadline=None)
    def test_reproduces_table_entries_exactly(self, lut):
        """On characterized (slew, load) grid points the interpolant is
        the table value itself, exactly."""
        grid = bilinear_interpolate_many(
            lut, lut.index_1[:, None], lut.index_2[None, :]
        )
        assert np.array_equal(grid, lut.values)


class TestMonotonicity:
    @given(
        lut=luts(monotone=True),
        base=POINTS,
        offsets=st.tuples(st.floats(0.0, 1.0), st.floats(0.0, 0.05)),
    )
    @settings(max_examples=120, deadline=None)
    def test_monotone_table_gives_monotone_interpolant(self, lut, base, offsets):
        """If the table is nondecreasing along both axes, moving the
        query up along both axes cannot decrease the result."""
        slew, load = base
        value_low = bilinear_interpolate_many(lut, np.array(slew), np.array(load))
        value_high = bilinear_interpolate_many(
            lut, np.array(slew + offsets[0]), np.array(load + offsets[1])
        )
        assert float(value_high) >= float(value_low) - 1e-12

    @given(lut=luts(monotone=True))
    @settings(max_examples=60, deadline=None)
    def test_interpolant_bounded_by_bracketing_entries(self, lut):
        """Inside a monotone table, midpoint queries stay between the
        smallest and largest table value (no over/undershoot)."""
        mid_slews = (lut.index_1[:-1] + lut.index_1[1:]) / 2
        mid_loads = (lut.index_2[:-1] + lut.index_2[1:]) / 2
        values = bilinear_interpolate_many(
            lut, mid_slews[:, None], mid_loads[None, :]
        )
        assert np.all(values >= lut.values.min() - 1e-12)
        assert np.all(values <= lut.values.max() + 1e-12)
