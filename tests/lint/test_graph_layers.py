"""Loading ``[tool.repro-lint]``: tomllib path and the 3.9/3.10 fallback."""

import textwrap

from repro.lint.graph.layers import (
    _parse_section_fallback,
    load_graph_settings,
    load_lint_table,
)

PYPROJECT = textwrap.dedent(
    """
    [project]
    name = "demo"

    [tool.repro-lint]
    # lowest first
    layers = [
        ["repro.errors"],
        ["repro.core", "repro.flow"],  # same layer
        ["repro.serve"],
    ]
    async-packages = ["repro.serve", "repro.extra"]

    [tool.other]
    key = "unrelated"
    """
)


class TestLoadSettings:
    def test_layers_and_async_packages(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(PYPROJECT)
        settings = load_graph_settings(pyproject)
        assert settings.layers == [
            ["repro.errors"],
            ["repro.core", "repro.flow"],
            ["repro.serve"],
        ]
        assert settings.async_packages == ("repro.serve", "repro.extra")

    def test_missing_file_yields_defaults(self, tmp_path):
        settings = load_graph_settings(tmp_path / "pyproject.toml")
        assert settings.layers == []
        assert settings.async_packages == ("repro.serve",)

    def test_missing_section_yields_defaults(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[project]\nname = 'demo'\n")
        assert load_lint_table(pyproject) == {}
        assert load_graph_settings(pyproject).layers == []


class TestFallbackParser:
    def test_fallback_matches_tomllib_on_this_section(self):
        parsed = _parse_section_fallback(PYPROJECT)
        assert parsed["layers"] == [
            ["repro.errors"],
            ["repro.core", "repro.flow"],
            ["repro.serve"],
        ]
        assert parsed["async-packages"] == ["repro.serve", "repro.extra"]
        assert "key" not in parsed  # other sections stay out

    def test_fallback_on_the_real_pyproject(self):
        """The committed layer map parses identically both ways."""
        from pathlib import Path

        text = (
            Path(__file__).resolve().parents[2] / "pyproject.toml"
        ).read_text()
        parsed = _parse_section_fallback(text)
        real = load_graph_settings(
            Path(__file__).resolve().parents[2] / "pyproject.toml"
        )
        assert parsed["layers"] == real.layers
        assert list(real.async_packages) == parsed["async-packages"]

    def test_fallback_skips_unparseable_values(self):
        text = "[tool.repro-lint]\nlayers = not-a-literal\nok = [1]\n"
        parsed = _parse_section_fallback(text)
        assert parsed == {"ok": [1]}
