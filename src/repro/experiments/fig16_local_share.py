"""Fig. 16 — local vs total (global+local) variation per path depth.

The paper's key population insight: local variation contributes ~65%
of a short path's total sigma, ~37% of a medium path's, ~6% of a long
55-cell path's — short paths are where library tuning matters, and
about a third of endpoint paths are short.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.base import ExperimentContext, ExperimentResult
from repro.experiments.fig15_corners import PAPER_DEPTHS, QUICK_DEPTHS
from repro.flow.pathmc import PathMonteCarlo, pick_paths_by_depth


def run(
    context: ExperimentContext,
    n_samples: int = 200,
    seed: int = 16,
    period: Optional[float] = None,
) -> ExperimentResult:
    """Build this experiment's rows (see the module docstring)."""
    flow = context.flow
    clock = period if period is not None else context.high_performance_period
    baseline = flow.baseline(clock)
    targets = PAPER_DEPTHS if context.is_paper_scale else QUICK_DEPTHS
    chosen = pick_paths_by_depth(baseline.paths, targets)
    mc = PathMonteCarlo(flow.specs)

    rows = []
    shares = []
    for label, path in zip(("short", "medium", "long"), chosen):
        total = mc.sample_path(
            path, n_samples=n_samples, seed=seed,
            include_local=True, include_global=True,
        )
        local = mc.sample_path(
            path, n_samples=n_samples, seed=seed,
            include_local=True, include_global=False,
        )
        share = local.sigma / total.sigma
        shares.append(share)
        rows.append({
            "path": label,
            "depth": path.depth,
            "sigma_total_ns": round(total.sigma, 5),
            "sigma_local_ns": round(local.sigma, 5),
            "local_share": round(share, 3),
        })
    short_fraction = sum(
        1 for p in baseline.paths if p.depth <= targets[0] + 2
    ) / len(baseline.paths)
    decays = shares[0] > shares[1] > shares[2]
    return ExperimentResult(
        experiment_id="fig16",
        title=f"Local-variation share of total sigma (N={n_samples}) "
              f"at {clock:g} ns",
        rows=rows,
        notes=(
            f"local share decays with depth: {decays} (paper: 65%/37%/6%); "
            f"fraction of endpoint paths that are short: {short_fraction:.0%} "
            "(paper: about one third)"
        ),
    )
