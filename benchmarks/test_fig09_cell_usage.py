"""Bench: Fig. 9 — cell-usage histograms baseline vs tuned."""

from conftest import show

from repro.experiments import fig09_cell_usage


def test_fig09_cell_usage(benchmark, context):
    result = benchmark.pedantic(
        fig09_cell_usage.run, args=(context,), rounds=1, iterations=1
    )
    show(result)
    families = {row["cell"].split("_")[0] for row in result.rows}
    # basic cells dominate the listed population (paper Fig. 9)
    assert {"ND2", "INV"} & families
    assert any(f.startswith("DFF") for f in families)
    # tuning increases inverter use through buffering (paper Sec. VII.A)
    note = result.notes
    base_inv, tuned_inv = _parse_inverters(note)
    assert tuned_inv >= base_inv
    # ... and shifts the design towards higher drive strengths
    base_strength, tuned_strength = _parse_strengths(note)
    assert tuned_strength > base_strength


def _parse_inverters(note):
    part = note.split("inverter use at high-perf: baseline ")[1]
    base, rest = part.split(" -> tuned ", 1)
    return int(base), int(rest.split(";")[0])


def _parse_strengths(note):
    part = note.split("mean drive strength baseline ")[1]
    base, rest = part.split(" -> tuned ", 1)
    return float(base), float(rest)
