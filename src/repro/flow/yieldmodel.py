"""Clock-uncertainty and timing-yield model.

The paper's motivation (Sec. III): "Local variations are taken into
account ... by adding an uncertainty factor to the desired clock
period. ... If one could reduce the impact of local variation, one
could also reduce the clock uncertainty.  A lower clock uncertainty
means that the desired clock period can be decreased resulting in a
faster design."

This module quantifies that chain for a synthesized design:

* per-path failure probability at a clock: P(delay > effective period)
  under the Gaussian path model (mu, sigma from eqs. 5/10);
* design timing yield: product over the worst endpoint paths
  (independent-path approximation, consistent with rho = 0);
* the *clock uncertainty* needed for a target yield: the guard band g
  such that yield(T - g) >= target — tuned designs need a smaller g,
  which is exactly the speed-up the paper promises.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import ReproError
from repro.sta.statistics import PathStatistics


def _phi(z: np.ndarray) -> np.ndarray:
    """Standard normal CDF."""
    return 0.5 * (1.0 + np.vectorize(math.erf)(z / math.sqrt(2.0)))


def path_failure_probability(stats: PathStatistics, effective_period: float) -> float:
    """P(path delay > effective period) under the Gaussian model."""
    if stats.sigma <= 0:
        return 0.0 if stats.mean <= effective_period else 1.0
    z = (effective_period - stats.mean) / stats.sigma
    return float(1.0 - _phi(np.asarray(z)))


def timing_yield(
    path_stats: Sequence[PathStatistics], effective_period: float
) -> float:
    """Design timing yield: every endpoint path must make the clock.

    Independent-path approximation (the rho = 0 counterpart at design
    level); a conservative lower bound when paths share logic.
    """
    if not path_stats:
        raise ReproError("timing yield needs at least one path")
    log_yield = 0.0
    for stats in path_stats:
        survive = 1.0 - path_failure_probability(stats, effective_period)
        if survive <= 0.0:
            return 0.0
        log_yield += math.log(survive)
    return math.exp(log_yield)


def required_uncertainty(
    path_stats: Sequence[PathStatistics],
    clock_period: float,
    target_yield: float = 0.997,
    resolution: float = 1e-4,
) -> float:
    """Smallest clock uncertainty (guard band, ns) hitting the yield.

    Bisects g in [0, clock_period): yield at effective period
    ``clock_period - g`` is monotone in g... inverted: larger g means a
    *smaller* effective budget, so we search for the g where the
    *design built for T - g* still yields when variation eats into the
    margin — concretely: yield(T) evaluated with paths as-built, with
    the uncertainty g being the margin between the worst mu and T.

    Operationally: find the smallest g with
    ``timing_yield(stats, mu_margined period) >= target`` where the
    period available to the paths is the full T and g absorbs sigma:
    ``yield(T) >= target`` when every path satisfies
    ``mu + z(target) * sigma <= T - 0``; we return
    ``g = max(0, max_i(mu_i + z*sigma_i) - max_i(mu_i))`` refined by
    bisection on the exact joint yield.
    """
    if not 0.0 < target_yield < 1.0:
        raise ReproError("target yield must be in (0, 1)")
    worst_mean = max(s.mean for s in path_stats)

    def yield_with_uncertainty(g: float) -> float:
        # the paths must fit in worst_mean + g (the period the designer
        # would have to choose to absorb variation)
        return timing_yield(path_stats, worst_mean + g)

    low, high = 0.0, clock_period
    if yield_with_uncertainty(high) < target_yield:
        raise ReproError("target yield unreachable within one clock period")
    while high - low > resolution:
        mid = 0.5 * (low + high)
        if yield_with_uncertainty(mid) >= target_yield:
            high = mid
        else:
            low = mid
    return high


def uncertainty_reduction(
    baseline_stats: Sequence[PathStatistics],
    tuned_stats: Sequence[PathStatistics],
    clock_period: float,
    target_yield: float = 0.997,
) -> float:
    """Fractional clock-uncertainty reduction tuning buys (paper's
    motivating speed-up: a smaller guard band = a faster clock)."""
    base = required_uncertainty(baseline_stats, clock_period, target_yield)
    tuned = required_uncertainty(tuned_stats, clock_period, target_yield)
    if base <= 0:
        raise ReproError("baseline uncertainty is zero; nothing to reduce")
    return (base - tuned) / base
