"""Bench: extension — tuning transfers across PVT corners."""

from conftest import show

from repro.experiments import ext_corner_tuning


def test_ext_corner_tuning(benchmark, context):
    result = benchmark.pedantic(
        ext_corner_tuning.run, args=(context,), rounds=1, iterations=1
    )
    show(result)
    rows = {row["corner"]: row for row in result.rows}
    # slow corner is slower and more variable; fast the opposite
    assert rows["slow"]["sigma_scale_vs_TT"] > 1.0
    assert rows["fast"]["sigma_scale_vs_TT"] < 1.0
    # with a corner-scaled ceiling, the windows substantially agree
    # with the typical-corner tuning (the Sec. VII.C transferability)
    assert rows["typical"]["window_agreement_vs_TT"] == 1.0
    for name in ("fast", "slow"):
        assert rows[name]["window_agreement_vs_TT"] > 0.7
