"""Cell-family behaviours: truth tables, arcs, unateness."""

import itertools

import pytest

from repro.cells.functions import FUNCTIONS, function_by_name
from repro.errors import CatalogError
from repro.liberty.model import TimingSense


def exhaustive_inputs(pins):
    for bits in itertools.product([False, True], repeat=len(pins)):
        yield dict(zip(pins, bits))


class TestTruthTables:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_nand(self, n):
        fn = function_by_name(f"ND{n}")
        for inputs in exhaustive_inputs(fn.input_pins):
            assert fn.evaluate(inputs)["Z"] == (not all(inputs.values()))

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_nor(self, n):
        fn = function_by_name(f"NR{n}")
        for inputs in exhaustive_inputs(fn.input_pins):
            assert fn.evaluate(inputs)["Z"] == (not any(inputs.values()))

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_or(self, n):
        fn = function_by_name(f"OR{n}")
        for inputs in exhaustive_inputs(fn.input_pins):
            assert fn.evaluate(inputs)["Z"] == any(inputs.values())

    def test_inv_buf(self):
        inv, buf = function_by_name("INV"), function_by_name("BUF")
        for a in (False, True):
            assert inv.evaluate({"A": a})["Z"] == (not a)
            assert buf.evaluate({"A": a})["Z"] == a

    def test_nor2b_bubbled_input(self):
        fn = function_by_name("NR2B")
        # Z = !(A + !B)
        for inputs in exhaustive_inputs(fn.input_pins):
            expected = not (inputs["A"] or not inputs["B"])
            assert fn.evaluate(inputs)["Z"] == expected

    @pytest.mark.parametrize("n", [2, 3])
    def test_xnor_parity(self, n):
        fn = function_by_name(f"XNR{n}")
        for inputs in exhaustive_inputs(fn.input_pins):
            parity = sum(inputs.values()) % 2
            assert fn.evaluate(inputs)["Z"] == (parity == 0)

    def test_mux2(self):
        fn = function_by_name("MUX2")
        for inputs in exhaustive_inputs(fn.input_pins):
            expected = inputs["D1"] if inputs["S"] else inputs["D0"]
            assert fn.evaluate(inputs)["Z"] == expected

    def test_mux4(self):
        fn = function_by_name("MUX4")
        for inputs in exhaustive_inputs(fn.input_pins):
            sel = (1 if inputs["S0"] else 0) | (2 if inputs["S1"] else 0)
            assert fn.evaluate(inputs)["Z"] == inputs[f"D{sel}"]

    def test_half_adder(self):
        fn = function_by_name("ADDH")
        for inputs in exhaustive_inputs(fn.input_pins):
            total = int(inputs["A"]) + int(inputs["B"])
            out = fn.evaluate(inputs)
            assert int(out["S"]) + 2 * int(out["CO"]) == total

    def test_full_adder(self):
        fn = function_by_name("ADDF")
        for inputs in exhaustive_inputs(fn.input_pins):
            total = int(inputs["A"]) + int(inputs["B"]) + int(inputs["CI"])
            out = fn.evaluate(inputs)
            assert int(out["S"]) + 2 * int(out["CO"]) == total


class TestArcsAndSenses:
    def test_combinational_arcs_are_full_bipartite(self):
        fn = function_by_name("ADDF")
        assert set(fn.arcs()) == {
            (i, o) for o in ("S", "CO") for i in ("A", "B", "CI")
        }

    def test_sequential_arcs_clock_to_q_only(self):
        fn = function_by_name("DFFR")
        assert fn.arcs() == [("CP", "Q")]

    def test_inverting_gates_negative_unate(self):
        for family in ("INV", "ND2", "ND4", "NR2", "NR3"):
            fn = function_by_name(family)
            first = fn.input_pins[0]
            assert fn.sense(first, "Z") is TimingSense.NEGATIVE_UNATE

    def test_or_positive_unate(self):
        assert function_by_name("OR3").sense("B", "Z") is TimingSense.POSITIVE_UNATE

    def test_xnor_non_unate(self):
        assert function_by_name("XNR2").sense("A", "Z") is TimingSense.NON_UNATE

    def test_nor2b_mixed_unateness(self):
        fn = function_by_name("NR2B")
        assert fn.sense("A", "Z") is TimingSense.NEGATIVE_UNATE
        assert fn.sense("B", "Z") is TimingSense.POSITIVE_UNATE

    def test_adder_carry_positive_unate(self):
        fn = function_by_name("ADDF")
        assert fn.sense("A", "CO") is TimingSense.POSITIVE_UNATE
        assert fn.sense("A", "S") is TimingSense.NON_UNATE


class TestSequentialMetadata:
    def test_dff_variants(self):
        assert function_by_name("DFF").input_pins == ("D", "CP")
        assert function_by_name("DFFR").input_pins == ("D", "CP", "RN")
        assert function_by_name("DFFS").input_pins == ("D", "CP", "SN")
        assert function_by_name("DFFSR").input_pins == ("D", "CP", "RN", "SN")

    def test_clock_pin_marked(self):
        fn = function_by_name("DFF")
        assert fn.clock_pin == "CP"
        assert fn.data_input_pins == ("D",)

    def test_latch_flag(self):
        fn = function_by_name("LATQ")
        assert fn.is_latch and fn.is_sequential
        assert fn.clock_pin == "EN"

    def test_sequential_evaluate_rejected(self):
        with pytest.raises(CatalogError):
            function_by_name("DFF").evaluate({"D": True, "CP": False})


class TestRegistry:
    def test_all_expected_families_present(self):
        expected = {
            "INV", "BUF", "ND2", "ND3", "ND4", "NR2", "NR3", "NR4", "NR2B",
            "OR2", "OR3", "OR4", "XNR2", "XNR3", "MUX2", "MUX4", "ADDH",
            "ADDF", "DFF", "DFFR", "DFFS", "DFFSR", "LATQ",
        }
        assert set(FUNCTIONS) == expected

    def test_unknown_function_raises(self):
        with pytest.raises(CatalogError):
            function_by_name("XOR9")

    def test_missing_input_rejected(self):
        with pytest.raises(CatalogError):
            function_by_name("ND2").evaluate({"A": True})
