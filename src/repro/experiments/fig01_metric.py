"""Fig. 1 — the variability (CoV) metric pitfall (paper Sec. III).

Two normal distributions with identical coefficient of variation but
10x different absolute spread: CoV cannot rank them for robustness,
sigma can.  Reproduced with the paper's exact numbers (mu=0.5,
sigma=0.01 vs mu=5, sigma=0.1) plus a Monte-Carlo confirmation.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentContext, ExperimentResult
from repro.statlib.stats import coefficient_of_variation


def run(context: ExperimentContext, n_samples: int = 20_000, seed: int = 1) -> ExperimentResult:
    """Build the Fig. 1 comparison rows."""
    rng = np.random.default_rng(seed)
    cases = [
        {"name": "left", "mean": 0.5, "sigma": 0.01},
        {"name": "right", "mean": 5.0, "sigma": 0.1},
    ]
    rows = []
    for case in cases:
        samples = rng.normal(case["mean"], case["sigma"], n_samples)
        rows.append({
            "distribution": case["name"],
            "mean": case["mean"],
            "sigma": case["sigma"],
            "variability": coefficient_of_variation(case["mean"], case["sigma"]),
            "mc_sigma": float(samples.std(ddof=1)),
            "spread_99p7": 6 * case["sigma"],
        })
    same_cov = abs(rows[0]["variability"] - rows[1]["variability"]) < 1e-12
    ratio = rows[1]["sigma"] / rows[0]["sigma"]
    return ExperimentResult(
        experiment_id="fig01",
        title="Variability pitfall: equal CoV, different sigma",
        rows=rows,
        notes=(
            f"identical variability: {same_cov}; sigma ratio {ratio:.0f}x — "
            "sigma (not CoV) is the paper's selection metric"
        ),
    )
