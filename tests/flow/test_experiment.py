"""End-to-end flow integration on a miniature configuration."""

import pytest

from repro.flow.experiment import FlowConfig, TuningFlow
from repro.netlist.generators.microcontroller import MicrocontrollerParams


@pytest.fixture(scope="module")
def tiny_flow():
    """A miniature flow: small design, few samples — seconds, not minutes."""
    config = FlowConfig(
        design=MicrocontrollerParams(
            width=12,
            regfile_bits=2,
            mult_width=6,
            n_timers=1,
            timer_width=6,
            control_gates=250,
            status_width=12,
            n_uarts=1,
            gpio_width=4,
        ),
        n_samples=12,
    )
    return TuningFlow(config)


class TestFlowStages:
    def test_catalog_is_full_appendix_a(self, tiny_flow):
        assert len(tiny_flow.specs) == 304

    def test_statistical_library_cached(self, tiny_flow):
        assert tiny_flow.statistical_library is tiny_flow.statistical_library

    def test_design_build_is_fresh_each_time(self, tiny_flow):
        a = tiny_flow.build_design()
        b = tiny_flow.build_design()
        assert a is not b
        assert a.stats() == b.stats()

    def test_tuning_memoized(self, tiny_flow):
        a = tiny_flow.tuning("sigma_ceiling", 0.03)
        b = tiny_flow.tuning("sigma_ceiling", 0.03)
        assert a is b

    def test_baseline_run(self, tiny_flow):
        run = tiny_flow.baseline(4.0)
        assert run.met
        assert run.area > 0
        assert run.design_sigma > 0
        assert len(run.paths) == run.stats.n_paths
        assert tiny_flow.baseline(4.0) is run  # memoized

    def test_tuned_run_and_comparison(self, tiny_flow):
        comparison = tiny_flow.compare(4.0, "sigma_ceiling", 0.03)
        assert comparison.baseline_area > 0
        assert comparison.tuned_met
        # the restriction must change the outcome measurably
        assert comparison.tuned_sigma != comparison.baseline_sigma

    def test_sweep_method(self, tiny_flow):
        comparisons = tiny_flow.sweep_method(4.0, "sigma_ceiling",
                                             parameters=[0.04, 0.02])
        assert [c.parameter for c in comparisons] == [0.04, 0.02]

    def test_depth_histogram_counts_paths(self, tiny_flow):
        run = tiny_flow.baseline(4.0)
        histogram = run.depth_histogram()
        assert sum(histogram.values()) == len(run.paths)


class TestConfigs:
    def test_paper_config_scale(self):
        config = FlowConfig.paper()
        assert config.design.width == 32
        assert config.n_samples == 50

    def test_quick_config_smaller(self):
        config = FlowConfig.quick()
        assert config.design.width < 32
        assert config.n_samples < 50

    def test_environment_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert FlowConfig.from_environment().design.width == 32
        monkeypatch.setenv("REPRO_SCALE", "quick")
        assert FlowConfig.from_environment().design.width < 32
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            FlowConfig.from_environment()


class TestPathMonteCarlo:
    def test_replay_matches_sta_roughly(self, tiny_flow):
        """The MC replay's nominal mean must sit near the STA arrival."""
        from repro.flow.pathmc import PathMonteCarlo, pick_paths_by_depth

        run = tiny_flow.baseline(4.0)
        path = pick_paths_by_depth(run.paths, targets=(8,))[0]
        mc = PathMonteCarlo(tiny_flow.specs)
        result = mc.sample_path(path, n_samples=60, seed=1)
        assert result.mean == pytest.approx(path.arrival, rel=0.15)

    def test_local_only_less_spread_than_total(self, tiny_flow):
        from repro.flow.pathmc import PathMonteCarlo, pick_paths_by_depth

        run = tiny_flow.baseline(4.0)
        path = pick_paths_by_depth(run.paths, targets=(10,))[0]
        mc = PathMonteCarlo(tiny_flow.specs)
        local = mc.sample_path(path, n_samples=120, seed=2)
        total = mc.sample_path(path, n_samples=120, seed=2, include_global=True)
        assert local.sigma < total.sigma

    def test_corner_scales_mean(self, tiny_flow):
        from repro.flow.pathmc import PathMonteCarlo, pick_paths_by_depth
        from repro.variation.process import fast_corner, slow_corner

        run = tiny_flow.baseline(4.0)
        path = pick_paths_by_depth(run.paths, targets=(10,))[0]
        mc = PathMonteCarlo(tiny_flow.specs)
        fast = mc.sample_path(path, n_samples=60, seed=3, corner=fast_corner())
        slow = mc.sample_path(path, n_samples=60, seed=3, corner=slow_corner())
        assert fast.mean < slow.mean

    def test_pick_paths_by_depth(self, tiny_flow):
        from repro.flow.pathmc import pick_paths_by_depth

        run = tiny_flow.baseline(4.0)
        chosen = pick_paths_by_depth(run.paths, targets=(2, 8, 14))
        depths = [p.depth for p in chosen]
        assert depths[0] <= depths[1] <= depths[2]
