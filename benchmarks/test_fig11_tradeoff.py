"""Bench: Fig. 11 — sigma-ceiling sigma/area tradeoff."""

from conftest import show

from repro.experiments import fig11_tradeoff


def test_fig11_tradeoff(benchmark, context):
    result = benchmark.pedantic(
        fig11_tradeoff.run, args=(context,), rounds=1, iterations=1
    )
    show(result)
    feasible = [r for r in result.rows if r["met"]]
    assert len(feasible) >= 2
    ordered = sorted(feasible, key=lambda r: -r["ceiling_ns"])
    # a tighter ceiling buys more sigma reduction ...
    assert ordered[-1]["sigma_reduction"] > ordered[0]["sigma_reduction"]
    # ... at a higher area price (the Fig. 11 tradeoff)
    assert ordered[-1]["area_increase"] > ordered[0]["area_increase"]
    # and every feasible point actually reduces sigma
    assert all(r["sigma_reduction"] > 0 for r in ordered)
