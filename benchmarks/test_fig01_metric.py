"""Bench: Fig. 1 — the variability metric pitfall."""

from conftest import show

from repro.experiments import fig01_metric


def test_fig01_metric(benchmark, context):
    result = benchmark(fig01_metric.run, context)
    show(result)
    rows = {row["distribution"]: row for row in result.rows}
    # identical CoV ...
    assert rows["left"]["variability"] == rows["right"]["variability"]
    # ... but 10x different sigma: the paper's argument for sigma
    assert rows["right"]["sigma"] / rows["left"]["sigma"] == 10
    assert abs(rows["left"]["mc_sigma"] - 0.01) < 0.001
