"""The 304-cell Appendix A catalog."""

import pytest

from repro.cells.catalog import (
    APPENDIX_A_CENSUS,
    build_catalog,
    catalog_census,
    family_strengths,
    spec_by_name,
)
from repro.cells.naming import parse_cell_name
from repro.errors import CatalogError


class TestCensus:
    def test_total_is_304(self, full_specs):
        assert len(full_specs) == 304

    def test_census_matches_appendix_a(self, full_specs):
        assert catalog_census(full_specs) == APPENDIX_A_CENSUS

    def test_appendix_numbers(self):
        assert APPENDIX_A_CENSUS == {
            "inverter": 19,
            "or": 36,
            "nand": 46,
            "nor": 43,
            "xnor": 29,
            "adder": 34,
            "mux": 27,
            "flipflop": 51,
            "latch": 12,
            "other": 7,
        }

    def test_names_unique(self, full_specs):
        names = [s.name for s in full_specs]
        assert len(names) == len(set(names))

    def test_all_names_parse(self, full_specs):
        for spec in full_specs:
            parsed = parse_cell_name(spec.name)
            assert parsed.strength == spec.strength
            assert parsed.family == spec.family

    def test_paper_mentioned_cells_exist(self, full_specs):
        # Cells named in the paper's figures (Fig. 4, Fig. 5, Sec. VII.A)
        for name in ("INV_1", "INV_32", "NR4_6", "NR2B_1", "NR2B_2", "NR2B_3"):
            spec_by_name(full_specs, name)

    def test_drive_strength_6_cluster_nonempty(self, full_specs):
        """The Fig. 5 cluster must exist and span several families."""
        cluster = [s for s in full_specs if s.strength == 6.0]
        families = {s.family for s in cluster}
        assert len(cluster) >= 10
        assert {"INV", "NR4", "ND2", "ADDF"} <= families


class TestElectricalModel:
    def test_area_grows_with_strength(self, full_specs):
        for family in ("INV", "ND2", "ADDF", "DFF"):
            strengths = family_strengths(full_specs, family)
            areas = [
                spec_by_name(full_specs, f"{family}_{s:g}".replace(".", "P")).area
                for s in strengths
                if float(s).is_integer()
            ]
            assert areas == sorted(areas)

    def test_max_load_scales_with_strength(self, full_specs):
        inv1 = spec_by_name(full_specs, "INV_1")
        inv32 = spec_by_name(full_specs, "INV_32")
        assert inv32.max_load == pytest.approx(32 * inv1.max_load)

    def test_nand_stacks_grow_with_fanin(self, full_specs):
        for n in (2, 3, 4):
            spec = spec_by_name(full_specs, f"ND{n}_1")
            assert spec.drive("Z").stack_fall == n
            assert spec.drive("Z").stack_rise == 1

    def test_nor_stacks_dual_of_nand(self, full_specs):
        spec = spec_by_name(full_specs, "NR4_1")
        assert spec.drive("Z").stack_rise == 4
        assert spec.drive("Z").stack_fall == 1

    def test_adder_has_two_output_drives(self, full_specs):
        spec = spec_by_name(full_specs, "ADDF_4")
        assert set(spec.drives) == {"S", "CO"}
        assert spec.drive("S").intrinsic_stages > spec.drive("CO").intrinsic_stages

    def test_unknown_output_pin_rejected(self, full_specs):
        with pytest.raises(CatalogError):
            spec_by_name(full_specs, "INV_1").drive("Q")

    def test_cap_factor_defaults_to_one(self, full_specs):
        assert spec_by_name(full_specs, "INV_1").cap_factor("A") == 1.0
        assert spec_by_name(full_specs, "MUX2_1").cap_factor("S") > 1.0


class TestSubsets:
    def test_family_subset(self):
        specs = build_catalog(families=["INV", "ND2"])
        assert {s.family for s in specs} == {"INV", "ND2"}

    def test_unknown_family_rejected(self):
        with pytest.raises(CatalogError):
            build_catalog(families=["NAND17"])

    def test_spec_by_name_missing(self, full_specs):
        with pytest.raises(CatalogError):
            spec_by_name(full_specs, "INV_999")

    def test_family_strengths_sorted(self, full_specs):
        strengths = family_strengths(full_specs, "INV")
        assert strengths == sorted(strengths)
        assert len(strengths) == 19
