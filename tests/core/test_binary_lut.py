"""Binary LUT thresholding and combination (paper Sec. VI.B)."""

import numpy as np
import pytest

from repro.core.binary_lut import (
    binarize_at_most,
    binarize_below,
    binary_fraction_true,
    combine_and,
)
from repro.errors import TuningError


VALUES = np.array([[0.0, 0.5], [1.0, 2.0]])


class TestBinarize:
    def test_strictly_below(self):
        binary = binarize_below(VALUES, 1.0)
        assert binary.tolist() == [[True, True], [False, False]]

    def test_at_most_includes_equal(self):
        binary = binarize_at_most(VALUES, 1.0)
        assert binary.tolist() == [[True, True], [True, False]]

    def test_non_2d_rejected(self):
        with pytest.raises(TuningError):
            binarize_below(np.zeros(3), 1.0)
        with pytest.raises(TuningError):
            binarize_at_most(np.zeros(3), 1.0)


class TestCombine:
    def test_logic_and(self):
        a = np.array([[True, True], [False, True]])
        b = np.array([[True, False], [True, True]])
        assert combine_and(a, b).tolist() == [[True, False], [False, True]]

    def test_three_way(self):
        a = np.ones((2, 2), dtype=bool)
        b = np.eye(2, dtype=bool)
        c = np.ones((2, 2), dtype=bool)
        assert np.array_equal(combine_and(a, b, c), np.eye(2, dtype=bool))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(TuningError):
            combine_and(np.ones((2, 2), dtype=bool), np.ones((3, 2), dtype=bool))

    def test_empty_rejected(self):
        with pytest.raises(TuningError):
            combine_and()


class TestFraction:
    def test_fraction(self):
        assert binary_fraction_true(np.eye(2, dtype=bool)) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(TuningError):
            binary_fraction_true(np.zeros((0, 0), dtype=bool))
