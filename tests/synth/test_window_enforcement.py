"""Tuning windows as hard synthesis constraints.

Hand-crafted windows (rather than tuner output) isolate each legality
rule: max_load forces upsizing/buffering, max_slew forces driver
upsizing, excluded pins make variants unusable.
"""

import math

import pytest

from repro.core.restriction import SlewLoadWindow
from repro.netlist.builder import NetlistBuilder
from repro.synth.constraints import SynthesisConstraints
from repro.synth.synthesizer import synthesize


def make_windows(library, max_load=None, max_slew=None, families=("INV",)):
    """Full windows everywhere except the targeted families.

    A load restriction scales with drive strength (``max_load`` applies
    per unit of strength), matching the structure of real tuning
    windows: weak cells get cut hard, strong ones keep headroom — a
    flat cap across strengths would be unsatisfiable by construction
    (a strong variant's own input capacitance can exceed it).
    """
    from repro.cells.naming import parse_cell_name

    windows = {}
    for cell in library:
        strength = parse_cell_name(cell.name).strength
        for pin in cell.output_pins():
            lut = pin.timing[0].cell_rise
            load_cap = pin.max_capacitance
            slew_cap = float(lut.index_1[-1])
            if cell.name.split("_")[0] in families:
                if max_load is not None:
                    load_cap = min(load_cap, max_load * strength)
                if max_slew is not None:
                    slew_cap = min(slew_cap, max_slew)
            windows[(cell.name, pin.name)] = SlewLoadWindow(
                0.0, slew_cap, 0.0, load_cap
            )
    return windows


def chain_design(n_stages=6, fanout=10):
    builder = NetlistBuilder("chain")
    builder.clock()
    net = builder.dff(builder.input("d"))
    for _ in range(n_stages):
        net = builder.inv(net)
    sinks = [builder.inv(net) for _ in range(fanout)]
    builder.register(sinks)
    builder.netlist.validate()
    return builder.netlist


class TestLoadWindows:
    def test_load_cap_respected(self, statistical_library):
        from repro.cells.naming import parse_cell_name

        windows = make_windows(statistical_library, max_load=0.004)
        constraints = SynthesisConstraints(clock_period=3.0, windows=windows)
        result = synthesize(chain_design(), statistical_library, constraints)
        assert result.met
        assert result.legality_violations == 0
        graph = result.timing.graph
        for instance in result.netlist:
            if instance.family != "INV":
                continue
            strength = parse_cell_name(instance.cell).strength
            for pin in instance.function.output_pins:
                load = graph.loads[graph.net_ids[instance.net_of(pin)]]
                assert load <= 0.004 * strength + 1e-9

    def test_tight_load_cap_triggers_buffering(self, statistical_library):
        """When even the strongest usable variant's window cannot carry
        the fanout, the synthesizer must split the net with inverter
        pairs — the paper's buffering mechanism (Sec. VII.A)."""
        loose = synthesize(
            chain_design(fanout=120), statistical_library,
            SynthesisConstraints(clock_period=3.0),
        )
        windows = make_windows(statistical_library, max_load=0.0004)
        tight = synthesize(
            chain_design(fanout=120), statistical_library,
            SynthesisConstraints(clock_period=3.0, windows=windows),
        )
        assert tight.met
        assert tight.legality_violations == 0
        assert tight.buffer_instances > loose.buffer_instances
        assert len(tight.netlist) > len(loose.netlist)


class TestSlewWindows:
    def test_input_slew_respected(self, statistical_library):
        windows = make_windows(statistical_library, max_slew=0.15)
        constraints = SynthesisConstraints(clock_period=3.0, windows=windows)
        result = synthesize(chain_design(), statistical_library, constraints)
        assert result.met
        timing = result.timing
        graph = timing.graph
        for instance in result.netlist:
            if instance.family != "INV":
                continue
            for pin in instance.function.input_pins:
                slew = timing.slew[graph.net_ids[instance.net_of(pin)]]
                assert slew <= 0.15 + 1e-6

    def test_slew_window_increases_drive(self, statistical_library):
        from repro.cells.naming import parse_cell_name

        def mean_strength(result):
            cells = [i.cell for i in result.netlist if i.family == "INV"]
            return sum(parse_cell_name(c).strength for c in cells) / len(cells)

        loose = synthesize(
            chain_design(), statistical_library,
            SynthesisConstraints(clock_period=3.0),
        )
        windows = make_windows(statistical_library, max_slew=0.1)
        tight = synthesize(
            chain_design(), statistical_library,
            SynthesisConstraints(clock_period=3.0, windows=windows),
        )
        assert tight.met
        # drivers must be stronger to keep transitions under the window
        assert mean_strength(tight) >= mean_strength(loose)


class TestConstraintsApi:
    def test_window_for_unknown_pin_raises(self, statistical_library):
        windows = make_windows(statistical_library)
        constraints = SynthesisConstraints(clock_period=3.0, windows=windows)
        from repro.errors import SynthesisError

        with pytest.raises(SynthesisError):
            constraints.window_for("GHOST_1", "Z")

    def test_untuned_constraints_allow_everything(self):
        constraints = SynthesisConstraints(clock_period=3.0)
        assert constraints.window_for("INV_1", "Z") is None
        assert constraints.is_cell_usable("INV_1", ("Z",))

    def test_effective_period(self):
        constraints = SynthesisConstraints(clock_period=2.5, guard_band=0.3)
        assert constraints.effective_period == pytest.approx(2.2)
