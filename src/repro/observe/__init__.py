"""Observability: spans, counters, profiling for the whole flow.

The package answers "where does the wall time of a run go?" with three
pieces:

* :mod:`repro.observe.tracer` — a lightweight :class:`Tracer` with
  nested spans (name, attributes, wall/CPU time, peak-RSS delta),
  monotone counters and last-write gauges.  A no-op
  :class:`NullTracer` is the process default, so instrumentation costs
  nothing when tracing is off.
* :mod:`repro.observe.export` — a process-safe JSONL exporter
  (``O_APPEND`` single-write lines) so spans emitted by
  ``ProcessPoolExecutor`` workers merge into one trace file, plus
  :func:`load_trace` to read a trace back.
* :mod:`repro.observe.render` — a console renderer printing the
  per-stage time tree with percentages and the counter totals.
* :mod:`repro.observe.ledger` — the append-only run ledger: one JSONL
  record per experiment run (scientific metrics, stage aggregates,
  fingerprints, host info) beside the artifact store.
* :mod:`repro.observe.analyze` — trace summarize/diff, the ledger
  trend report and the baseline regression gate behind ``python -m
  repro trace|report|check``.

Entry points: ``FlowConfig(tracer=...)``, ``python -m repro fig10
--trace out.jsonl`` / ``--profile``, or directly::

    from repro import Tracer
    from repro.observe import JsonlExporter, load_trace, render_trace

    tracer = Tracer(JsonlExporter("out.jsonl", truncate=True))
    with tracer.span("my-run"):
        ...  # any instrumented repro code
    tracer.finish()
    print(render_trace(load_trace("out.jsonl")))
"""

from repro.observe.analyze import (
    TraceDiff,
    check_record,
    diff_traces,
    render_report,
    summarize_trace,
)
from repro.observe.export import JsonlExporter, MemorySink, Trace, load_trace, merge_records
from repro.observe.ledger import RunLedger, RunRecord, metrics_from_result
from repro.observe.render import render_counters, render_trace, render_tree
from repro.observe.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceHandle,
    Tracer,
    get_tracer,
    install_worker_tracer,
    set_tracer,
)

__all__ = [
    "JsonlExporter",
    "MemorySink",
    "NULL_TRACER",
    "NullTracer",
    "RunLedger",
    "RunRecord",
    "Span",
    "Trace",
    "TraceDiff",
    "TraceHandle",
    "Tracer",
    "check_record",
    "diff_traces",
    "get_tracer",
    "install_worker_tracer",
    "load_trace",
    "merge_records",
    "metrics_from_result",
    "render_counters",
    "render_report",
    "render_trace",
    "render_tree",
    "set_tracer",
    "summarize_trace",
]
