"""Command-line entry point: reproduce the paper's tables and figures.

Usage::

    python -m repro list                  # available experiments
    python -m repro run fig04 table2      # run a selection
    python -m repro run --all             # everything (synthesis-heavy)
    REPRO_SCALE=paper python -m repro run table1   # full-scale flow
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.experiments.base import ExperimentContext
from repro.experiments.runner import ALL_EXPERIMENTS, LIBRARY_ONLY, run_experiments


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce 'Standard Cell Library Tuning for "
        "Variability Tolerant Designs' (DATE 2014).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_parser = sub.add_parser("run", help="run experiments")
    run_parser.add_argument("ids", nargs="*", help="experiment ids (see list)")
    run_parser.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    run_parser.add_argument(
        "--library-only",
        action="store_true",
        help="run only the fast, synthesis-free experiments",
    )
    return parser


def main(argv: List[str]) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id, fn in ALL_EXPERIMENTS.items():
            doc = (fn.__module__.split(".")[-1]).replace("_", " ")
            tag = " (library-only)" if experiment_id in LIBRARY_ONLY else ""
            print(f"{experiment_id:8s} {doc}{tag}")
        return 0

    if args.all:
        ids = list(ALL_EXPERIMENTS)
    elif args.library_only:
        ids = list(LIBRARY_ONLY)
    else:
        ids = args.ids
    unknown = [i for i in ids if i not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; try 'python -m repro list'")
        return 2
    if not ids:
        print("nothing to run; pass experiment ids, --all or --library-only")
        return 2

    context = ExperimentContext()
    for experiment_id in ids:
        start = time.time()
        result = run_experiments(context, ids=[experiment_id])[experiment_id]
        print(result.to_text())
        print(f"[{experiment_id} finished in {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
