"""Timing-graph construction.

The graph is an arc-level, array-oriented view of a mapped netlist:

* **nets** are the timing nodes (every net has exactly one driver);
* **arcs** connect an input net to an output net through a cell's
  timing arc; arcs are grouped by (logic level of the driving
  instance, LUT identity) so the engine can evaluate whole groups with
  one vectorized bilinear interpolation;
* **loads** are static per mapping: sink input-pin capacitances plus a
  per-fanout wire estimate and output-port loads.

Sequential cells split the graph: their CP->Q arc launches new source
nets at the clock edge, and their D pins are endpoints checked against
``period - guard_band - setup``.

The netlist *topology* part of the graph (arc src/dst, levels,
endpoints) is built once; :meth:`TimingGraph.remap` refreshes the parts
that depend on the instance->cell binding (loads, LUT groups), which is
what the synthesizer's sizing loop iterates on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import TimingError
from repro.liberty.model import Cell, Library, TimingArc
from repro.netlist.model import Instance, Netlist


@dataclass(frozen=True)
class StaConfig:
    """Analysis conventions."""

    #: Transition assumed at primary inputs (ns).
    input_slew: float = 0.05
    #: Transition of the (ideal) clock at sequential clock pins (ns).
    clock_slew: float = 0.04
    #: Wire capacitance added per sink pin (pF).
    wire_cap_per_fanout: float = 0.00015
    #: Load presented by a primary output (pF).
    output_port_cap: float = 0.002
    #: Slew assumed on an undriven/constant net (ns).
    default_slew: float = 0.05


@dataclass(frozen=True)
class Endpoint:
    """A timing endpoint: FF data pin or primary output."""

    net_id: int
    kind: str  # "ff_data" | "output_port"
    name: str  # "instance/D" or port name
    #: Setup time to subtract from the required time (FF endpoints).
    setup: float = 0.0

    def to_payload(self) -> dict:
        """JSON-serializable rendering (artifact pipeline)."""
        return {
            "net_id": self.net_id,
            "kind": self.kind,
            "name": self.name,
            "setup": self.setup,
        }

    @staticmethod
    def from_payload(payload: dict) -> "Endpoint":
        """Rebuild an endpoint stored with :meth:`to_payload`."""
        return Endpoint(
            net_id=int(payload["net_id"]),
            kind=payload["kind"],
            name=payload["name"],
            setup=float(payload["setup"]),
        )


@dataclass
class ArcGroup:
    """Arcs sharing LUTs and a logic level, evaluated together."""

    cell: Cell
    arc: TimingArc
    indices: np.ndarray


class TimingGraph:
    """Array-oriented timing graph of a mapped netlist."""

    def __init__(
        self,
        netlist: Netlist,
        library: Library,
        config: Optional[StaConfig] = None,
    ):
        self.netlist = netlist
        self.library = library
        self.config = config or StaConfig()
        self._build_topology()
        self.remap()

    # ------------------------------------------------------------------

    def _cell_of(self, instance: Instance) -> Cell:
        if not instance.cell:
            raise TimingError(
                f"instance {instance.name} is not bound to a library cell"
            )
        return self.library.cell(instance.cell)

    def _build_topology(self) -> None:
        """Mapping-independent structure: nets, arcs, levels, endpoints."""
        netlist = self.netlist
        self.net_ids: Dict[str, int] = {name: i for i, name in enumerate(netlist.nets)}
        self.net_names: List[str] = list(netlist.nets)

        clock_net = netlist.clock
        self.clock_net_id = self.net_ids.get(clock_net, -1)
        self.primary_input_ids = [
            self.net_ids[p] for p in netlist.input_ports() if p != clock_net
        ]

        self.launch_instances: List[Instance] = list(netlist.sequential_instances())
        self.endpoints: List[Endpoint] = []
        for instance in self.launch_instances:
            for pin in instance.function.data_input_pins:
                self.endpoints.append(
                    Endpoint(
                        net_id=self.net_ids[instance.net_of(pin)],
                        kind="ff_data",
                        name=f"{instance.name}/{pin}",
                    )
                )
        for port in netlist.output_ports():
            self.endpoints.append(
                Endpoint(
                    net_id=self.net_ids[netlist.port_net(port)],
                    kind="output_port",
                    name=port,
                )
            )
        if not self.endpoints:
            raise TimingError("design has no timing endpoints")

        levels = netlist.levelize()
        order = netlist.combinational_order()
        arc_src: List[int] = []
        arc_dst: List[int] = []
        arc_level: List[int] = []
        self.arc_instance: List[str] = []
        self.arc_related: List[str] = []
        self.arc_out_pin: List[str] = []
        for instance in order:
            level = levels[instance.name]
            for input_pin, output_pin in instance.function.arcs():
                arc_src.append(self.net_ids[instance.net_of(input_pin)])
                arc_dst.append(self.net_ids[instance.net_of(output_pin)])
                arc_level.append(level)
                self.arc_instance.append(instance.name)
                self.arc_related.append(input_pin)
                self.arc_out_pin.append(output_pin)

        self.arc_src = np.asarray(arc_src, dtype=np.int64)
        self.arc_dst = np.asarray(arc_dst, dtype=np.int64)
        self.arc_level = np.asarray(arc_level, dtype=np.int64)
        self.n_arcs = len(arc_src)

        incoming: Dict[int, List[int]] = {}
        for index, dst in enumerate(arc_dst):
            incoming.setdefault(dst, []).append(index)
        self.incoming_arcs = incoming

        # per-net sink pin lists for fast load recomputation
        self._net_sinks: List[List[Tuple[str, str]]] = []
        self._net_port_sinks: List[int] = []
        for name in self.net_names:
            net = netlist.nets[name]
            sinks = [
                (sink.instance, sink.pin)
                for sink in net.sinks
                if sink.instance is not None
            ]
            self._net_sinks.append(sinks)
            self._net_port_sinks.append(sum(1 for s in net.sinks if s.instance is None))

    # ------------------------------------------------------------------

    def remap(self) -> None:
        """Refresh mapping-dependent state from ``instance.cell``.

        Call after changing drive strengths; topology edits (buffer
        insertion) need a full :class:`TimingGraph` rebuild instead.
        """
        netlist, config = self.netlist, self.config
        # endpoint setups depend on the bound sequential cells
        endpoints: List[Endpoint] = []
        for endpoint in self.endpoints:
            if endpoint.kind == "ff_data":
                instance_name = endpoint.name.rsplit("/", 1)[0]
                cell = self._cell_of(netlist.instance(instance_name))
                endpoints.append(
                    Endpoint(endpoint.net_id, endpoint.kind, endpoint.name, cell.setup_time)
                )
            else:
                endpoints.append(endpoint)
        self.endpoints = endpoints

        # loads
        loads = np.empty(len(self.net_names))
        cell_cache: Dict[str, Cell] = {}
        instances = netlist.instances
        for net_id, sinks in enumerate(self._net_sinks):
            total = config.wire_cap_per_fanout * (
                len(sinks) + self._net_port_sinks[net_id]
            )
            total += config.output_port_cap * self._net_port_sinks[net_id]
            for instance_name, pin in sinks:
                cell_name = instances[instance_name].cell
                cell = cell_cache.get(cell_name)
                if cell is None:
                    cell = cell_cache[cell_name] = self.library.cell(cell_name)
                total += cell.pins[pin].capacitance
            loads[net_id] = total
        self.loads = loads

        # arc groups keyed by (level, cell, in pin, out pin)
        group_indices: Dict[Tuple[int, str, str, str], List[int]] = {}
        for index in range(self.n_arcs):
            key = (
                int(self.arc_level[index]),
                instances[self.arc_instance[index]].cell,
                self.arc_related[index],
                self.arc_out_pin[index],
            )
            group_indices.setdefault(key, []).append(index)
        level_groups: List[Tuple[int, ArcGroup]] = []
        for key in sorted(group_indices, key=lambda k: k[0]):
            level, cell_name, input_pin, output_pin = key
            cell = cell_cache.get(cell_name)
            if cell is None:
                cell = cell_cache[cell_name] = self.library.cell(cell_name)
            arc = cell.pin(output_pin).arc_from(input_pin)
            level_groups.append(
                (
                    level,
                    ArcGroup(
                        cell=cell,
                        arc=arc,
                        indices=np.asarray(group_indices[key], dtype=np.int64),
                    ),
                )
            )
        self.level_groups = level_groups

    # ------------------------------------------------------------------

    def total_area(self) -> float:
        """Total cell area of the mapped design (um^2)."""
        return sum(self._cell_of(i).area for i in self.netlist)

    def cell_usage(self) -> Dict[str, int]:
        """Bound-cell histogram (paper Fig. 9)."""
        return self.netlist.cell_histogram()

    def fanout_of(self, net_id: int) -> int:
        """Number of sink pins on a net."""
        return len(self._net_sinks[net_id]) + self._net_port_sinks[net_id]
