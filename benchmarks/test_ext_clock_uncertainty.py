"""Bench: extension — the clock-uncertainty reduction tuning buys.

The paper's motivation chain (Sec. III): lower local variation ->
lower clock uncertainty -> faster usable clock.  This bench closes the
loop on the synthesized design: compute the guard band needed for a
99.7% timing yield on the baseline and on the sigma-ceiling-tuned
design — the tuned design needs less.
"""

from conftest import show

from repro.experiments.base import ExperimentResult
from repro.flow.yieldmodel import required_uncertainty, timing_yield


def test_ext_clock_uncertainty(benchmark, context):
    flow = context.flow
    period = context.standard_periods()["medium"]
    baseline = flow.baseline(period)
    tuned = flow.tuned(period, "sigma_ceiling", 0.03)

    def run():
        rows = []
        for label, run_at in (("baseline", baseline), ("tuned", tuned)):
            stats = run_at.stats.path_stats
            uncertainty = required_uncertainty(
                stats, clock_period=period, target_yield=0.997
            )
            worst_mean = max(s.mean for s in stats)
            rows.append({
                "design": label,
                "worst_path_mean_ns": round(worst_mean, 4),
                "uncertainty_99p7_ns": round(uncertainty, 4),
                "usable_clock_ns": round(worst_mean + uncertainty, 4),
                "yield_at_effective": round(
                    timing_yield(stats, period - flow.config.guard_band), 4
                ),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    result = ExperimentResult(
        experiment_id="ext-uncertainty",
        title=f"Clock uncertainty for 99.7% timing yield at {period:g} ns",
        rows=rows,
        notes=(
            "the tuned design needs a smaller guard band — the paper's "
            "promised route to a faster design (Sec. III)"
        ),
    )
    show(result)
    by_design = {r["design"]: r for r in rows}
    assert (
        by_design["tuned"]["uncertainty_99p7_ns"]
        <= by_design["baseline"]["uncertainty_99p7_ns"]
    )
