"""Unit conventions and physical constants used across the package.

The whole package uses one consistent unit system, matching what a
Liberty file for a 40 nm library would typically declare:

====================  ==========  =========================================
quantity              unit        notes
====================  ==========  =========================================
time / delay / slew   ns          ``time_unit : "1ns"``
capacitance           pF          ``capacitive_load_unit (1, pf)``
voltage               V
temperature           degC
area                  um^2        cell area as reported by synthesis
length / width        um          transistor geometry for the surrogate
====================  ==========  =========================================

Keeping the units in one module (rather than scattering magic numbers)
makes the characterization surrogate and the Liberty writer agree by
construction.
"""

from __future__ import annotations

TIME_UNIT = "ns"
CAP_UNIT = "pF"
VOLTAGE_UNIT = "V"
AREA_UNIT = "um^2"
LENGTH_UNIT = "um"

#: Seconds per time unit (for converting to SI when needed).
TIME_UNIT_SECONDS = 1e-9
#: Farads per capacitance unit.
CAP_UNIT_FARADS = 1e-12

#: Nominal supply voltage of the typical corner (paper: 1.1 V).
NOMINAL_VDD = 1.1
#: Nominal temperature of the typical corner (paper: 25 degC).
NOMINAL_TEMPERATURE = 25.0

#: Guard band subtracted from the clock period during synthesis
#: (paper Sec. VII: "a guard band of 300ps was used").
GUARD_BAND_NS = 0.300


def ns(value: float) -> float:
    """Identity helper documenting that ``value`` is in nanoseconds."""
    return float(value)


def pf(value: float) -> float:
    """Identity helper documenting that ``value`` is in picofarads."""
    return float(value)


def ff_to_pf(value_ff: float) -> float:
    """Convert femtofarads to the package capacitance unit (pF)."""
    return float(value_ff) * 1e-3


def ps_to_ns(value_ps: float) -> float:
    """Convert picoseconds to the package time unit (ns)."""
    return float(value_ps) * 1e-3
