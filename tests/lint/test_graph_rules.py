"""Fixture pairs for the whole-program rules (DESIGN.md §18).

Every rule gets at least two bad fixtures (finding expected, location
asserted) and two good fixtures (no finding) — the bad ones prove the
rule sees through module boundaries, the good ones prove the escape
hatches (executor hop, lock domination, seeded sources, downward
imports) stay quiet.
"""

from repro.lint.graph import build_graph_from_sources
from repro.lint.graph.rules import (
    Arch001Layering,
    Async001BlockingInCoroutine,
    Det003CrossModuleNondeterminism,
    GraphSettings,
    Lock001UnguardedMutation,
    run_graph_rules,
)

SETTINGS = GraphSettings(
    layers=[["repro.core"], ["repro.flow"], ["repro.serve"]],
    async_packages=("repro.serve",),
    det_packages=("repro.core", "repro.flow", "repro.serve"),
)


def findings_for(rule, sources):
    graph = build_graph_from_sources(sources)
    return rule.check(graph, SETTINGS)


class TestAsync001:
    def test_bad_direct_blocking_call(self):
        findings = findings_for(Async001BlockingInCoroutine(), {
            "src/repro/serve/h.py": (
                "import time\n\n\n"
                "async def handle():\n"
                "    time.sleep(1)\n"
            ),
        })
        (finding,) = findings
        assert finding.rule_id == "ASYNC001"
        assert finding.path == "src/repro/serve/h.py"
        assert finding.line == 5
        assert "time.sleep" in finding.message

    def test_bad_transitive_through_other_module(self):
        findings = findings_for(Async001BlockingInCoroutine(), {
            "src/repro/serve/h.py": (
                "from repro.flow.disk import load\n\n\n"
                "async def handle():\n"
                "    return load()\n"
            ),
            "src/repro/flow/disk.py": (
                "def load():\n"
                "    with open('x') as fh:\n"
                "        return fh.read()\n"
            ),
        })
        (finding,) = findings
        assert finding.path == "src/repro/serve/h.py"
        assert finding.line == 5
        assert "repro.flow.disk.load" in finding.message
        assert "open" in finding.message

    def test_good_executor_hop(self):
        # Only the function *reference* crosses to the executor — no
        # ast.Call edge, so the blocking body is a safe boundary.
        findings = findings_for(Async001BlockingInCoroutine(), {
            "src/repro/serve/h.py": (
                "import asyncio\n\n"
                "from repro.flow.disk import load\n\n\n"
                "async def handle():\n"
                "    return await asyncio.to_thread(load)\n"
            ),
            "src/repro/flow/disk.py": (
                "def load():\n"
                "    with open('x') as fh:\n"
                "        return fh.read()\n"
            ),
        })
        assert findings == []

    def test_good_pure_helper(self):
        findings = findings_for(Async001BlockingInCoroutine(), {
            "src/repro/serve/h.py": (
                "from repro.flow.math import double\n\n\n"
                "async def handle():\n"
                "    return double(2)\n"
            ),
            "src/repro/flow/math.py": (
                "def double(x):\n"
                "    return 2 * x\n"
            ),
        })
        assert findings == []

    def test_good_sync_code_outside_async_packages(self):
        findings = findings_for(Async001BlockingInCoroutine(), {
            "src/repro/flow/batch.py": (
                "import time\n\n\n"
                "def run():\n"
                "    time.sleep(1)\n"
            ),
        })
        assert findings == []


LOCKED_CLASS = (
    "import threading\n\n\n"
    "class Registry:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self.count = 0\n\n"
    "    def bump(self):\n"
    "        with self._lock:\n"
    "            self.count += 1\n\n"
)


class TestLock001:
    def test_bad_unlocked_mutation_same_class(self):
        findings = findings_for(Lock001UnguardedMutation(), {
            "src/repro/flow/reg.py": LOCKED_CLASS + (
                "    def reset(self):\n"
                "        self.count = 0\n"
            ),
        })
        (finding,) = findings
        assert finding.rule_id == "LOCK001"
        assert finding.path == "src/repro/flow/reg.py"
        assert finding.line == 14
        assert "Registry.count" in finding.message
        assert "_lock" in finding.message

    def test_bad_helper_reachable_without_lock(self):
        # _clear mutates without the lock and reset() calls it from an
        # unlocked site — not lock-dominated, so the mutation is flagged.
        findings = findings_for(Lock001UnguardedMutation(), {
            "src/repro/flow/reg.py": LOCKED_CLASS + (
                "    def _clear(self):\n"
                "        self.count = 0\n\n"
                "    def reset(self):\n"
                "        self._clear()\n"
            ),
        })
        (finding,) = findings
        assert finding.line == 14
        assert "not every caller holds the lock" in finding.message

    def test_good_lock_dominated_helper(self):
        # Same helper, but every caller holds the lock at the call
        # site — the MetricsRegistry._collect_spool shape.
        findings = findings_for(Lock001UnguardedMutation(), {
            "src/repro/flow/reg.py": LOCKED_CLASS + (
                "    def _clear(self):\n"
                "        self.count = 0\n\n"
                "    def reset(self):\n"
                "        with self._lock:\n"
                "            self._clear()\n"
            ),
        })
        assert findings == []

    def test_good_all_mutations_locked(self):
        findings = findings_for(Lock001UnguardedMutation(), {
            "src/repro/flow/reg.py": LOCKED_CLASS + (
                "    def reset(self):\n"
                "        with self._lock:\n"
                "            self.count = 0\n"
            ),
        })
        assert findings == []

    def test_good_init_mutates_freely(self):
        findings = findings_for(Lock001UnguardedMutation(), {
            "src/repro/flow/reg.py": LOCKED_CLASS,
        })
        assert findings == []


class TestDet003:
    def test_bad_cross_module_wall_clock_into_fingerprint(self):
        findings = findings_for(Det003CrossModuleNondeterminism(), {
            "src/repro/flow/stamp.py": (
                "import time\n\n\n"
                "def stamp():\n"
                "    return time.time()\n"
            ),
            "src/repro/core/cache.py": (
                "from repro.flow.stamp import stamp\n\n\n"
                "def fingerprint(value):\n"
                "    return hash(value)\n\n\n"
                "def cache_key():\n"
                "    return fingerprint(stamp())\n"
            ),
        })
        (finding,) = findings
        assert finding.rule_id == "DET003"
        assert finding.path == "src/repro/core/cache.py"
        assert finding.line == 9
        assert "repro.flow.stamp.stamp" in finding.message
        assert "time.time" in finding.message

    def test_bad_flows_through_local_variable(self):
        findings = findings_for(Det003CrossModuleNondeterminism(), {
            "src/repro/flow/stamp.py": (
                "import random\n\n\n"
                "def jitter():\n"
                "    return random.random()\n"
            ),
            "src/repro/core/cache.py": (
                "from repro.flow.stamp import jitter\n\n\n"
                "def digest(value):\n"
                "    return hash(value)\n\n\n"
                "def cache_key():\n"
                "    salt = jitter()\n"
                "    return digest(salt)\n"
            ),
        })
        (finding,) = findings
        assert finding.line == 10
        assert "'salt'" in finding.message
        assert "random.random" in finding.message

    def test_good_seeded_source(self):
        findings = findings_for(Det003CrossModuleNondeterminism(), {
            "src/repro/flow/stamp.py": (
                "import numpy as np\n\n\n"
                "def draw(seed):\n"
                "    return np.random.default_rng(seed).normal()\n"
            ),
            "src/repro/core/cache.py": (
                "from repro.flow.stamp import draw\n\n\n"
                "def fingerprint(value):\n"
                "    return hash(value)\n\n\n"
                "def cache_key(seed):\n"
                "    return fingerprint(draw(seed))\n"
            ),
        })
        assert findings == []

    def test_good_sink_outside_det_packages(self):
        findings = findings_for(Det003CrossModuleNondeterminism(), {
            "src/repro/flow/stamp.py": (
                "import time\n\n\n"
                "def stamp():\n"
                "    return time.time()\n"
            ),
            "src/repro/experiments/notes.py": (
                "from repro.flow.stamp import stamp\n\n\n"
                "def fingerprint(value):\n"
                "    return hash(value)\n\n\n"
                "def run_label():\n"
                "    return fingerprint(stamp())\n"
            ),
        })
        assert findings == []


class TestArch001:
    def test_bad_upward_import(self):
        findings = findings_for(Arch001Layering(), {
            "src/repro/core/engine.py": (
                "import repro.serve.api\n"
            ),
            "src/repro/serve/api.py": "X = 1\n",
        })
        (finding,) = findings
        assert finding.rule_id == "ARCH001"
        assert finding.path == "src/repro/core/engine.py"
        assert finding.line == 1
        assert "layer 0" in finding.message
        assert "layer 2" in finding.message

    def test_bad_import_cycle(self):
        findings = findings_for(Arch001Layering(), {
            "src/repro/flow/a.py": "import repro.flow.b\n",
            "src/repro/flow/b.py": "import repro.flow.a\n",
        })
        (finding,) = findings
        assert "import cycle" in finding.message
        assert "repro.flow.a -> repro.flow.b -> repro.flow.a" in finding.message
        assert finding.path == "src/repro/flow/a.py"

    def test_good_downward_and_same_layer_imports(self):
        findings = findings_for(Arch001Layering(), {
            "src/repro/serve/api.py": (
                "import repro.core.engine\n"
                "import repro.serve.util\n"
            ),
            "src/repro/serve/util.py": "X = 1\n",
            "src/repro/core/engine.py": "Y = 2\n",
        })
        assert findings == []

    def test_good_deferred_import_is_exempt(self):
        # A function-level import is a deliberate cycle-breaker, not a
        # module-level layering edge.
        findings = findings_for(Arch001Layering(), {
            "src/repro/core/engine.py": (
                "def late():\n"
                "    import repro.serve.api\n"
                "    return repro.serve.api.X\n"
            ),
            "src/repro/serve/api.py": "X = 1\n",
        })
        assert findings == []

    def test_good_unlisted_module_is_exempt_from_layers(self):
        findings = findings_for(Arch001Layering(), {
            "src/repro/extras/tool.py": "import repro.serve.api\n",
            "src/repro/serve/api.py": "X = 1\n",
        })
        assert findings == []


class TestSuppression:
    def test_line_noqa_suppresses_graph_finding(self):
        findings = findings_for(Async001BlockingInCoroutine(), {
            "src/repro/serve/h.py": (
                "import time\n\n\n"
                "async def handle():\n"
                "    time.sleep(1)  # repro: noqa[ASYNC001] startup only\n"
            ),
        })
        assert findings == []

    def test_file_noqa_suppresses_graph_finding(self):
        findings = findings_for(Async001BlockingInCoroutine(), {
            "src/repro/serve/h.py": (
                "# repro: noqa-file[ASYNC001] legacy sync handler\n"
                "import time\n\n\n"
                "async def handle():\n"
                "    time.sleep(1)\n"
            ),
        })
        assert findings == []


class TestRunner:
    def test_run_graph_rules_sorts_across_rules(self):
        graph = build_graph_from_sources({
            "src/repro/serve/h.py": (
                "import time\n\n"
                "import repro.core.engine\n\n\n"
                "async def handle():\n"
                "    time.sleep(1)\n"
            ),
            "src/repro/core/engine.py": "import repro.serve.h\n",
        })
        findings = run_graph_rules(graph, SETTINGS)
        assert [f.rule_id for f in findings] == sorted(
            f.rule_id for f in findings
        ) or findings == sorted(findings)
        assert {f.rule_id for f in findings} >= {"ASYNC001", "ARCH001"}
