"""Appendix A naming convention."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cells.naming import (
    CellName,
    format_cell_name,
    format_strength,
    parse_cell_name,
    parse_strength,
)
from repro.errors import CatalogError


class TestFormat:
    def test_integer_strength(self):
        assert format_cell_name("INV", 4) == "INV_4"

    def test_fractional_strength_uses_p(self):
        assert format_cell_name("INV", 0.5) == "INV_0P5"

    def test_input_count(self):
        assert format_cell_name("ND", 2, n_inputs=4) == "ND4_2"

    def test_ability(self):
        assert format_cell_name("NR", 2, n_inputs=2, ability="B") == "NR2B_2"

    def test_zero_strength_rejected(self):
        with pytest.raises(CatalogError):
            format_strength(0)


class TestParse:
    @pytest.mark.parametrize(
        "name, function, n_inputs, ability, strength",
        [
            ("INV_1", "INV", None, "", 1.0),
            ("INV_0P5", "INV", None, "", 0.5),
            ("INV_32", "INV", None, "", 32.0),
            ("ND2_4", "ND", 2, "", 4.0),
            ("NR4_6", "NR", 4, "", 6.0),
            ("NR2B_2", "NR", 2, "B", 2.0),
            ("XNR3_1P5", "XNR", 3, "", 1.5),
            ("ADDF_16", "ADDF", None, "", 16.0),
            ("DFFR_12", "DFFR", None, "", 12.0),
            ("MUX4_24", "MUX", 4, "", 24.0),
        ],
    )
    def test_examples(self, name, function, n_inputs, ability, strength):
        parsed = parse_cell_name(name)
        assert parsed == CellName(function, n_inputs, ability, strength)

    def test_family_property(self):
        assert parse_cell_name("NR2B_2").family == "NR2B"
        assert parse_cell_name("INV_1").family == "INV"

    @pytest.mark.parametrize("bad", ["INV", "INV_", "_4", "inv_1", "INV_4P"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(CatalogError):
            parse_cell_name(bad)

    def test_parse_strength_roundtrip(self):
        for value in (0.5, 1.0, 1.5, 6.0, 48.0):
            assert parse_strength(format_strength(value)) == value


class TestRoundtripProperty:
    @given(
        function=st.sampled_from(["INV", "ND", "NR", "OR", "XNR", "ADDF", "MUX"]),
        n_inputs=st.one_of(st.none(), st.integers(2, 4)),
        strength=st.sampled_from([0.5, 1.0, 1.5, 2.0, 3.0, 6.0, 12.0, 48.0]),
    )
    @settings(max_examples=100, deadline=None)
    def test_format_parse_roundtrip(self, function, n_inputs, strength):
        name = format_cell_name(function, strength, n_inputs=n_inputs)
        parsed = parse_cell_name(name)
        assert parsed.strength == strength
        assert parsed.n_inputs == n_inputs
        assert parsed.function == function
