"""Fig. 5 — sigma surfaces of the drive-strength-6 cell cluster.

"Not all cells seem to have an identical load range or slope (e.g.
NR4_6)" — the cluster mixes topologies, which is exactly why the
strength-based threshold uses the cluster *maximum* equivalent LUT.
"""

from __future__ import annotations

import numpy as np

from repro.core.clusters import cluster_by_strength
from repro.core.slope import load_slope_table
from repro.core.threshold import equivalent_sigma_lut
from repro.experiments.base import ExperimentContext, ExperimentResult


def run(context: ExperimentContext, strength_key_name: str = "strength_6") -> ExperimentResult:
    """Build this experiment's rows (see the module docstring)."""
    library = context.flow.statistical_library
    clusters = cluster_by_strength(library)
    cluster = clusters[strength_key_name]
    rows = []
    for cell in sorted(cluster, key=lambda c: c.name)[:14]:
        # one timing arc per cell, as in the paper's figure
        arc = cell.output_pins()[0].timing[0]
        sigma = arc.sigma_fall
        rows.append({
            "cell": cell.name,
            "load_max_pF": float(sigma.index_2[-1]),
            "sigma_max": float(sigma.values.max()),
            "load_grad_max": float(np.abs(load_slope_table(sigma.values)).max()),
        })
    equivalent = equivalent_sigma_lut(cluster)
    spread = max(r["sigma_max"] for r in rows) / min(r["sigma_max"] for r in rows)
    return ExperimentResult(
        experiment_id="fig05",
        title=f"Sigma surfaces of the {strength_key_name} cluster",
        rows=rows,
        notes=(
            f"{len(cluster)} cells in cluster; per-cell sigma_max spread "
            f"{spread:.1f}x; cluster max-equivalent sigma_max "
            f"{float(equivalent.values.max()):.4f} ns"
        ),
    )
