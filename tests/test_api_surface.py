"""The curated package surface: lazy exports, audited and complete."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path


class TestCuratedExports:
    """``repro.__all__`` and the lazy-import table stay in lock-step."""

    def test_all_matches_lazy_import_table(self):
        """``__all__`` is exactly the sorted lazy-export table — a name
        cannot be advertised without a defining module, nor wired up
        without being advertised."""
        import repro

        assert repro.__all__ == sorted(repro._EXPORTS)

    def test_every_export_resolves_to_its_module(self):
        """Each lazy name resolves, and to the declared module's own
        attribute (no accidental re-export shadowing)."""
        import importlib

        import repro

        for name, module_name in repro._EXPORTS.items():
            value = getattr(repro, name)
            assert value is getattr(importlib.import_module(module_name), name)

    def test_serve_names_are_curated(self):
        """The service surface is part of the package's front door."""
        import repro

        for name in (
            "TuningServer",
            "TuningService",
            "TuningClient",
            "TuneRequest",
            "SweepRequest",
            "StatusRequest",
        ):
            assert name in repro.__all__
        assert repro._EXPORTS["TuningServer"] == "repro.serve.server"
        assert repro._EXPORTS["TuningClient"] == "repro.serve.client"
        assert repro._EXPORTS["TuneRequest"] == "repro.serve.schema"

    def test_import_repro_stays_stdlib_only(self):
        """``import repro`` in a pristine interpreter loads nothing
        beyond the standard library — no numpy, no package submodules
        (the lazy-export contract the serve additions must not
        break)."""
        import repro

        src_dir = str(Path(repro.__file__).resolve().parent.parent)
        code = (
            "import sys; baseline = set(sys.modules); import repro; "
            "extra = {m for m in sys.modules if m not in baseline}; "
            "bad = {m for m in extra if m.startswith('repro.') "
            "or m.split('.')[0] == 'numpy'}; "
            "assert not bad, f'import repro dragged in: {sorted(bad)}'; "
            "print('stdlib-only-ok')"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": src_dir, "PATH": "/usr/bin:/bin"},
        )
        assert "stdlib-only-ok" in result.stdout

    def test_serve_exports_are_the_real_objects(self):
        """Lazy serve exports are the same objects as deep imports."""
        import repro
        from repro.serve.client import TuningClient
        from repro.serve.schema import TuneRequest
        from repro.serve.server import TuningServer

        assert repro.TuningServer is TuningServer
        assert repro.TuningClient is TuningClient
        assert repro.TuneRequest is TuneRequest
