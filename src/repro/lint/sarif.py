"""SARIF 2.1.0 rendering of lint findings.

SARIF (Static Analysis Results Interchange Format) is what GitHub
code scanning ingests: one ``run`` per tool, a rule catalog under
``tool.driver.rules``, and one ``result`` per finding pointing at a
``physicalLocation``.  Baselined findings are emitted too, marked with
an ``external`` suppression, so the code-scanning UI shows accepted
debt as suppressed instead of losing it.

Output is byte-deterministic — sorted results, sorted keys, trailing
newline — the same discipline as the JSON report and the baseline
file, so artifact diffs are meaningful.

Only the stdlib is used; the emitted document is validated
structurally (and against the official schema when ``jsonschema`` is
installed) in ``tests/lint/test_sarif.py``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.lint.findings import Finding

#: The SARIF version this module emits.
SARIF_VERSION = "2.1.0"

#: Canonical schema URI (what GitHub's ingestion validates against).
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: repro severities -> SARIF levels.
_LEVELS = {"error": "error", "warning": "warning"}


def _sarif_level(severity: str) -> str:
    return _LEVELS.get(severity, "note")


def sarif_rule(entry: Dict[str, str]) -> Dict[str, Any]:
    """One ``tool.driver.rules`` descriptor from a catalog entry."""
    descriptor: Dict[str, Any] = {
        "id": entry["id"],
        "name": entry.get("title") or entry["id"],
        "shortDescription": {"text": entry.get("title") or entry["id"]},
        "defaultConfiguration": {
            "level": _sarif_level(entry.get("severity", "error"))
        },
    }
    rationale = entry.get("rationale", "")
    hint = entry.get("hint", "")
    if rationale:
        descriptor["fullDescription"] = {"text": rationale}
    if hint:
        descriptor["help"] = {"text": hint}
    return descriptor


def _result(
    finding: Finding, rule_index: Dict[str, int], suppressed: bool
) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.rule_id,
        "level": _sarif_level(finding.severity),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.column,
                    },
                }
            }
        ],
    }
    if finding.rule_id in rule_index:
        result["ruleIndex"] = rule_index[finding.rule_id]
    if suppressed:
        result["suppressions"] = [
            {
                "kind": "external",
                "justification": "accepted in lint-baseline.json",
            }
        ]
    return result


def render_sarif(
    new: Sequence[Finding],
    baselined: Sequence[Finding] = (),
    catalog: Optional[Sequence[Dict[str, str]]] = None,
    tool_version: str = "1",
) -> Dict[str, Any]:
    """The SARIF document as a JSON-ready mapping."""
    rules = [sarif_rule(entry) for entry in (catalog or [])]
    rule_index = {rule["id"]: index for index, rule in enumerate(rules)}
    results = [
        _result(finding, rule_index, suppressed=False)
        for finding in sorted(new)
    ] + [
        _result(finding, rule_index, suppressed=True)
        for finding in sorted(baselined)
    ]
    driver: Dict[str, Any] = {
        "name": "repro-lint",
        "informationUri": "https://example.invalid/repro-lint",
        "version": tool_version,
        "rules": rules,
    }
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "columnKind": "unicodeCodePoints",
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }


def render_sarif_text(
    new: Sequence[Finding],
    baselined: Sequence[Finding] = (),
    catalog: Optional[Sequence[Dict[str, str]]] = None,
    tool_version: str = "1",
) -> str:
    """Byte-deterministic SARIF text (sorted keys, trailing newline)."""
    document = render_sarif(
        new, baselined, catalog=catalog, tool_version=tool_version
    )
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
