"""Tracer core: span nesting, timing, counters, the null default.

The span tree is the contract everything else (export, rendering)
builds on: children must link to the span open at their creation,
wall times must be real measurements, and the process-default
:class:`NullTracer` must swallow everything without side effects.
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.observe import (
    NULL_TRACER,
    MemorySink,
    NullTracer,
    TraceHandle,
    Tracer,
    get_tracer,
    set_tracer,
)


class TestSpans:
    """Nesting, timing and attributes of spans."""

    def test_nested_spans_link_parent_to_child(self):
        """An inner span's parent id is the enclosing span's id."""
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner") as inner:
                    pass
        assert outer.parent_id is None
        assert middle.parent_id == outer.span_id
        assert inner.parent_id == middle.span_id
        assert [s.name for s in tracer.spans] == ["inner", "middle", "outer"]

    def test_siblings_share_a_parent(self):
        """Sequential spans at one level hang off the same parent."""
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == parent.span_id
        assert b.parent_id == parent.span_id

    def test_wall_time_is_measured(self):
        """A span's wall time covers the slept interval; nesting sums."""
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                time.sleep(0.02)
        assert inner.wall >= 0.02
        assert outer.wall >= inner.wall

    def test_attributes_at_open_and_post_hoc(self):
        """Attributes pass at open time and via :meth:`Span.set`."""
        tracer = Tracer()
        with tracer.span("stage", key="abc") as span:
            span.set(status="hit")
        assert span.attrs == {"key": "abc", "status": "hit"}

    def test_exception_closes_span_and_marks_error(self):
        """An exception still closes the span and tags its type."""
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        (span,) = tracer.spans
        assert span.attrs["error"] == "ValueError"

    def test_record_span_uses_given_wall_time(self):
        """Pre-measured regions record with the caller's wall time."""
        tracer = Tracer()
        with tracer.span("parent") as parent:
            recorded = tracer.record_span("warm.hit", 1.25, status="hit")
        assert recorded.wall == 1.25
        assert recorded.parent_id == parent.span_id

    def test_span_ids_unique_and_pid_tagged(self):
        """Ids are unique and namespaced by the creating process."""
        tracer = Tracer()
        for _ in range(5):
            with tracer.span("s"):
                pass
        ids = [s.span_id for s in tracer.spans]
        assert len(set(ids)) == 5
        assert all(s.pid == tracer.pid for s in tracer.spans)


class TestSpanEvents:
    """Point-in-time events attached to the innermost open span."""

    def test_event_lands_on_the_open_span(self):
        """An event records its name, a timestamp and its attributes,
        and travels with the span's record."""
        tracer = Tracer()
        with tracer.span("load") as span:
            tracer.event("self_heal", stage="synth", file="bad.json")
        assert len(span.events) == 1
        event = span.events[0]
        assert event["name"] == "self_heal"
        assert event["t"] > 0
        assert event["attrs"] == {"stage": "synth", "file": "bad.json"}
        record = span.to_record()
        assert record["events"] == span.events

    def test_events_nest_with_spans(self):
        """The event binds to the innermost span, not the outermost."""
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                tracer.event("ping")
        assert outer.events == []
        assert inner.events[0]["name"] == "ping"

    def test_eventless_span_record_stays_lean(self):
        """No ``events`` key unless something happened — the common
        case pays nothing in the trace file."""
        tracer = Tracer()
        with tracer.span("quiet") as span:
            pass
        assert "events" not in span.to_record()

    def test_event_without_open_span_is_dropped(self):
        """Events only make sense inside a span; outside one they are
        discarded rather than raising."""
        tracer = Tracer()
        tracer.event("floating")  # must not raise
        assert tracer.spans == []

    def test_null_tracer_event_is_noop(self):
        NULL_TRACER.event("ignored", detail=1)
        with NULL_TRACER.span("nothing") as span:
            span.event("also-ignored")


class TestCountersAndGauges:
    """Counter accumulation and gauge last-write-wins."""

    def test_counters_accumulate(self):
        """``add`` sums; missing counters start at zero."""
        tracer = Tracer()
        tracer.add("x", 2)
        tracer.add("x")
        tracer.add("y", 0.5)
        assert tracer.counters() == {"x": 3, "y": 0.5}

    def test_gauges_last_write_wins(self):
        """A re-set gauge keeps only the latest value."""
        tracer = Tracer()
        tracer.gauge("workers", 2)
        tracer.gauge("workers", 8)
        assert tracer.gauges() == {"workers": 8}

    def test_flush_counters_exports_deltas(self):
        """Each flush exports only the growth since the previous one."""
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.add("n", 3)
        tracer.flush_counters()
        tracer.add("n", 4)
        tracer.flush_counters()
        tracer.flush_counters()  # no growth -> no record
        counter_records = [r for r in sink.records if r["type"] == "counters"]
        assert [r["counters"]["n"] for r in counter_records] == [3, 4]
        assert tracer.counters() == {"n": 7}


class TestNullTracer:
    """The no-op default: everything swallowed, nothing allocated."""

    def test_default_tracer_is_null(self):
        """With nothing installed, the active tracer is the shared null."""
        assert get_tracer() is NULL_TRACER
        assert not get_tracer().enabled

    def test_null_operations_are_noops(self):
        """Spans, counters and gauges all discard on the null tracer."""
        tracer = NullTracer()
        with tracer.span("ignored") as span:
            span.set(status="ignored")
        tracer.add("n", 5)
        tracer.gauge("g", 1)
        assert tracer.spans == []
        assert tracer.counters() == {}
        assert tracer.handle() is None

    def test_set_tracer_installs_and_restores(self):
        """``set_tracer`` swaps the active tracer; ``None`` restores."""
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(previous)
        assert get_tracer() is NULL_TRACER


class TestHandles:
    """Trace handles and tracer pickling (the worker join path)."""

    def test_memory_tracer_has_no_handle(self):
        """Only file-backed tracers can merge across processes."""
        assert Tracer(MemorySink()).handle() is None
        assert Tracer().handle() is None

    def test_handle_captures_open_span(self, tmp_path):
        """The handle's parent is the span open at capture time."""
        from repro.observe import JsonlExporter

        tracer = Tracer(JsonlExporter(tmp_path / "t.jsonl"))
        with tracer.span("submit") as span:
            handle = tracer.handle()
        assert isinstance(handle, TraceHandle)
        assert handle.trace_id == tracer.trace_id
        assert handle.parent_id == span.span_id

    def test_handle_tracer_appends_to_same_file(self, tmp_path):
        """A handle rebuilds a tracer on the same file and trace id."""
        from repro.observe import JsonlExporter, load_trace

        path = tmp_path / "t.jsonl"
        tracer = Tracer(JsonlExporter(path))
        with tracer.span("parent") as parent:
            handle = tracer.handle()
        worker = handle.tracer()
        with worker.span("child"):
            pass
        trace = load_trace(path)
        child = next(s for s in trace.spans if s["name"] == "child")
        assert child["parent"] == parent.span_id
        assert child["trace"] == tracer.trace_id

    def test_pickled_tracer_rejoins_file(self, tmp_path):
        """Pickling reduces to (path, trace id, open parent)."""
        from repro.observe import JsonlExporter

        tracer = Tracer(JsonlExporter(tmp_path / "t.jsonl"))
        clone = pickle.loads(pickle.dumps(tracer))
        assert clone.trace_id == tracer.trace_id
        assert str(clone.sink.path) == str(tracer.sink.path)
