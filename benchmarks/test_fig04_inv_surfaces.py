"""Bench: Fig. 4 — INV sigma surfaces vs drive strength."""

from conftest import show

from repro.experiments import fig04_inv_surfaces


def test_fig04_inv_surfaces(benchmark, context):
    result = benchmark.pedantic(
        fig04_inv_surfaces.run, args=(context,), rounds=1, iterations=1
    )
    show(result)
    rows = result.rows
    # higher drive strength -> lower sigma surface (paper Fig. 4);
    # allow a few % of MC estimation noise between adjacent strengths
    maxima = [row["sigma_max"] for row in rows]
    assert all(b < a * 1.05 for a, b in zip(maxima, maxima[1:]))
    assert maxima[-1] < maxima[0] / 3
    # ... and lower gradient
    gradients = [row["grad_max"] for row in rows]
    assert gradients[0] > gradients[-1]
    # load range scales with strength; slew axis is shared
    assert rows[-1]["load_max_pF"] > rows[0]["load_max_pF"] * 10
    assert len({row["slew_max_ns"] for row in rows}) == 1
