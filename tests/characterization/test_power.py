"""Power model: switching energy and leakage."""

import numpy as np
import pytest

from repro.cells.catalog import build_catalog, spec_by_name
from repro.characterization.characterize import Characterizer
from repro.characterization.power import PowerModel, leakage_statistics
from repro.errors import CharacterizationError


@pytest.fixture(scope="module")
def specs():
    return build_catalog(families=["INV", "ND2", "ADDF"])


@pytest.fixture(scope="module")
def model():
    return PowerModel()


class TestSwitchingEnergy:
    def test_energy_grows_with_load(self, model, specs):
        inv = spec_by_name(specs, "INV_1")
        energies = [
            float(model.arc_energy(inv, "Z", True, np.asarray(0.05), np.asarray(c)))
            for c in (0.001, 0.004, 0.009)
        ]
        assert energies == sorted(energies)

    def test_energy_grows_with_slew(self, model, specs):
        """Short-circuit energy makes slow edges expensive."""
        inv = spec_by_name(specs, "INV_2")
        fast = float(model.arc_energy(inv, "Z", True, np.asarray(0.01), np.asarray(0.002)))
        slow = float(model.arc_energy(inv, "Z", True, np.asarray(1.0), np.asarray(0.002)))
        assert slow > fast

    def test_capacitive_floor_is_half_cv2(self, model, specs):
        inv = spec_by_name(specs, "INV_1")
        load = 0.01
        energy = float(
            model.arc_energy(inv, "Z", True, np.asarray(0.0), np.asarray(load))
        )
        assert energy > 0.5 * load * model.tech.vdd**2  # load + parasitics

    def test_vth_shift_changes_short_circuit(self, model, specs):
        inv = spec_by_name(specs, "INV_1")
        nominal = float(model.arc_energy(inv, "Z", True, np.asarray(0.5), np.asarray(0.002)))
        high_vth = float(
            model.arc_energy(inv, "Z", True, np.asarray(0.5), np.asarray(0.002), dvth=0.05)
        )
        assert high_vth < nominal  # less overlap current

    def test_negative_load_rejected(self, model, specs):
        inv = spec_by_name(specs, "INV_1")
        with pytest.raises(CharacterizationError):
            model.arc_energy(inv, "Z", True, np.asarray(0.1), np.asarray(-1.0))


class TestLeakage:
    def test_leakage_grows_with_width(self, model, specs):
        small = float(model.cell_leakage(spec_by_name(specs, "INV_1")))
        big = float(model.cell_leakage(spec_by_name(specs, "INV_8")))
        assert big == pytest.approx(8 * small, rel=1e-6)

    def test_leakage_exponential_in_vth(self, model, specs):
        inv = spec_by_name(specs, "INV_1")
        low = float(model.cell_leakage(inv, dvth=-0.05))
        nominal = float(model.cell_leakage(inv))
        ratio = low / nominal
        assert ratio == pytest.approx(np.exp(0.05 / model.tech.v_leak_slope), rel=1e-6)

    def test_mismatch_makes_leakage_lognormal(self, specs):
        """Positive skew and mean above nominal — the classic result."""
        inv = spec_by_name(specs, "INV_1")
        mean, sigma, skew = leakage_statistics(inv, sigma_vth=0.03, seed=3)
        nominal = float(PowerModel().cell_leakage(inv))
        assert mean > nominal
        assert skew > 0.5
        assert sigma > 0

    def test_zero_mismatch_degenerates(self, specs):
        inv = spec_by_name(specs, "INV_1")
        mean, sigma, _skew = leakage_statistics(inv, sigma_vth=0.0, n_samples=50)
        assert sigma == pytest.approx(0.0, abs=1e-12)
        assert mean == pytest.approx(float(PowerModel().cell_leakage(inv)))


class TestGoldenValues:
    """Frozen reference outputs of the closed-form power model.

    Tiny-scale pins against hard-coded values: any change to the energy
    or leakage arithmetic — intended or not — must show up here first,
    not as a silent drift in characterized libraries.
    """

    def test_switching_energy_golden(self, model, specs):
        inv = spec_by_name(specs, "INV_1")
        nd2 = spec_by_name(specs, "ND2_2")
        assert float(
            model.arc_energy(inv, "Z", True, np.asarray(0.05), np.asarray(0.004))
        ) == pytest.approx(0.0025464210927398268, rel=1e-12)
        assert float(
            model.arc_energy(
                inv, "Z", False, np.asarray(0.2), np.asarray(0.002),
                dvth=0.02, dbeta=0.1,
            )
        ) == pytest.approx(0.001356134426057872, rel=1e-12)
        assert float(
            model.arc_energy(nd2, "Z", True, np.asarray(0.1), np.asarray(0.006))
        ) == pytest.approx(0.0039580563709593055, rel=1e-12)

    def test_leakage_golden(self, model, specs):
        inv = spec_by_name(specs, "INV_1")
        nd2 = spec_by_name(specs, "ND2_2")
        assert float(model.cell_leakage(inv)) == pytest.approx(
            0.0001413925639342806, rel=1e-12
        )
        assert float(model.cell_leakage(nd2, dvth=0.03)) == pytest.approx(
            0.0002433953342482416, rel=1e-12
        )

    def test_leakage_statistics_golden(self, specs):
        """Seeded Monte-Carlo: the summary statistics are deterministic
        down to the last bit, so they can be pinned tightly too."""
        inv = spec_by_name(specs, "INV_1")
        mean, sigma, skew = leakage_statistics(
            inv, sigma_vth=0.03, n_samples=200, seed=7
        )
        assert mean == pytest.approx(0.00015533932764194875, rel=1e-12)
        assert sigma == pytest.approx(4.9110969534151004e-05, rel=1e-12)
        assert skew == pytest.approx(0.8914511183132714, rel=1e-12)


class TestPowerCharacterization:
    def test_power_tables_attached(self, specs):
        characterizer = Characterizer(include_power=True)
        library = characterizer.statistical_library(specs[:4], n_samples=12, seed=5)
        for cell in library:
            for _pin, arc in cell.arcs():
                assert arc.power_rise is not None
                assert arc.sigma_power_rise is not None
                assert np.all(arc.power_rise.values > 0)
                assert np.all(arc.sigma_power_rise.values >= 0)

    def test_power_sigma_grows_with_slew(self, specs):
        """The short-circuit term carries the vth mismatch, so the
        energy sigma rises towards slow input edges."""
        characterizer = Characterizer(include_power=True)
        library = characterizer.statistical_library(
            [spec_by_name(specs, "INV_1")], n_samples=40, seed=5
        )
        sigma = library.cell("INV_1").pin("Z").arc_from("A").sigma_power_rise
        assert sigma.values[-1, 0] > sigma.values[0, 0]

    def test_power_tables_roundtrip_liberty(self, specs):
        from repro.liberty.parser import parse_liberty
        from repro.liberty.writer import write_liberty

        characterizer = Characterizer(include_power=True)
        library = characterizer.statistical_library(specs[:2], n_samples=10, seed=1)
        parsed = parse_liberty(write_liberty(library))
        for cell in library:
            for pin in cell.output_pins():
                for index, arc in enumerate(pin.timing):
                    other = parsed.cell(cell.name).pin(pin.name).timing[index]
                    assert other.power_rise is not None
                    assert other.power_rise.allclose(arc.power_rise, rtol=1e-6)
                    assert other.sigma_power_fall.allclose(
                        arc.sigma_power_fall, rtol=1e-6
                    )

    def test_nominal_library_has_power_but_no_sigma(self, specs):
        characterizer = Characterizer(include_power=True)
        library = characterizer.nominal_library(specs[:2])
        arc = next(iter(library)).output_pins()[0].timing[0]
        assert arc.power_rise is not None
        assert arc.sigma_power_rise is None
