"""The append-only run ledger: one record per experiment run.

The traces answer "where did *this* run's wall time go?"; the ledger
answers the longitudinal questions — what were the scientific numbers
(per-method sigma reduction, area overhead, minimum period) the last
time this experiment ran, at what scale, on which host, with what
cache behaviour — by appending one structured JSONL record per run to
a file beside the artifact store (``<cache dir>/ledger.jsonl``).

Writes use the same process-safety contract as the trace exporter:
each record is a single ``os.write`` to an ``O_APPEND`` descriptor, so
concurrent runs interleave whole lines and the ledger never tears.
The file is append-only by design — a record is a historical fact, and
the analytics (``python -m repro report`` / ``check``, see
:mod:`repro.observe.analyze`) only ever read.

A record carries:

* identity — run id, epoch timestamp, experiment id, scale name;
* provenance — the flow's content fingerprints (statistical library,
  design) and host info (hostname, platform, python, CPU count);
* science — every numeric cell of the experiment's result table,
  keyed ``column[row-label]`` (see :func:`metrics_from_result`), plus
  the memoized minimum period when the flow searched for one;
* execution — wall time, per-stage aggregates from the
  :class:`~repro.flow.pipeline.RunManifest` (count, hit/miss/computed,
  seconds) and the tracer's counter deltas (cache hit/miss totals).
"""

from __future__ import annotations

import json
import os
import platform
import socket
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

#: Schema version folded into every ledger record.
LEDGER_VERSION = 1

#: File name of the ledger, beside the artifact store entries.
LEDGER_FILENAME = "ledger.jsonl"


def default_ledger_path() -> Path:
    """The ledger's home: ``$REPRO_CACHE_DIR`` (or ``~/.cache/repro``)
    next to the library cache and the artifact store."""
    from repro.parallel.cache import default_cache_dir

    return default_cache_dir() / LEDGER_FILENAME


def host_info() -> Dict[str, Any]:
    """The machine identity stamped into every record."""
    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "cpus": os.cpu_count() or 1,
    }


def metrics_from_result(result: Any) -> Dict[str, float]:
    """Every numeric cell of an experiment result, flattened.

    Keys are ``column[label]`` where the label joins the row's string
    cells (method name, operating point, ...) — stable across runs of
    the same experiment at the same scale, which is what the baseline
    gate compares.  ``None`` cells (e.g. no parameter survived the
    area cap) are skipped; booleans are not metrics.
    """
    metrics: Dict[str, float] = {}
    for index, row in enumerate(result.rows):
        parts = [value for value in row.values() if isinstance(value, str)]
        label = "/".join(parts) if parts else str(index)
        for column, value in row.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            metrics[f"{column}[{label}]"] = float(value)
    return metrics


@dataclass
class RunRecord:
    """One ledger line: identity, provenance, science, execution."""

    run_id: str
    timestamp: float
    experiment: str
    scale: str
    fingerprints: Dict[str, str] = field(default_factory=dict)
    host: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    stages: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    wall: float = 0.0

    def to_payload(self) -> Dict[str, Any]:
        """JSON-serializable rendering (one ledger line)."""
        return {
            "version": LEDGER_VERSION,
            "run_id": self.run_id,
            "timestamp": self.timestamp,
            "experiment": self.experiment,
            "scale": self.scale,
            "fingerprints": self.fingerprints,
            "host": self.host,
            "metrics": self.metrics,
            "stages": self.stages,
            "counters": self.counters,
            "wall": self.wall,
        }

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "RunRecord":
        """Rebuild a record stored with :meth:`to_payload`."""
        return RunRecord(
            run_id=str(payload["run_id"]),
            timestamp=float(payload["timestamp"]),
            experiment=str(payload["experiment"]),
            scale=str(payload.get("scale", "custom")),
            fingerprints=dict(payload.get("fingerprints", {})),
            host=dict(payload.get("host", {})),
            metrics={
                key: float(value)
                for key, value in payload.get("metrics", {}).items()
            },
            stages=dict(payload.get("stages", {})),
            counters=dict(payload.get("counters", {})),
            wall=float(payload.get("wall", 0.0)),
        )

    def hit_rate(self) -> Optional[float]:
        """Fraction of stage resolutions served from the store, or
        ``None`` when the run resolved no stages."""
        hits = total = 0
        for aggregate in self.stages.values():
            hits += int(aggregate.get("hit", 0))
            total += int(aggregate.get("count", 0))
        return hits / total if total else None

    def stage_seconds(self) -> float:
        """Total wall time spent resolving stages."""
        return sum(
            float(aggregate.get("seconds", 0.0))
            for aggregate in self.stages.values()
        )


def capture_run(
    experiment_id: str,
    result: Any,
    flow: Any,
    stage_records: Sequence[Any] = (),
    counters: Optional[Dict[str, float]] = None,
    wall: float = 0.0,
) -> RunRecord:
    """Build the ledger record of one finished experiment run.

    ``stage_records`` is the slice of the flow's manifest the run
    appended (so records of earlier experiments sharing the context
    are not re-attributed); ``counters`` the tracer counter deltas
    observed across the run.
    """
    from repro.flow.pipeline import stage_aggregates

    metrics = metrics_from_result(result)
    for resolution, minimum in getattr(flow, "_minimum_periods", {}).items():
        metrics[f"minimum_period[{resolution:g}]"] = float(minimum)
    fingerprints = {"design": flow.design_key}
    try:
        fingerprints["statlib"] = flow.statlib_key
    except Exception:  # pragma: no cover - statlib key needs the catalog
        pass
    return RunRecord(
        run_id=os.urandom(6).hex(),
        timestamp=time.time(),
        experiment=experiment_id,
        scale=flow.config.scale_name(),
        fingerprints=fingerprints,
        host=host_info(),
        metrics=metrics,
        stages=stage_aggregates(stage_records),
        counters=dict(counters or {}),
        wall=wall,
    )


def capture_request(
    kind: str,
    trace_id: str,
    outcome: str,
    status: int,
    wall: float,
    scale: str = "custom",
    metrics: Optional[Dict[str, float]] = None,
) -> RunRecord:
    """Build the ledger record of one served request.

    The record's ``run_id`` *is* the request's trace id, so the HTTP
    response header, the span tree and the ledger line all share one
    identity — grep the ledger for a client-reported trace id and the
    request's outcome, status and latency fall out.  The experiment
    column is ``serve.<kind>`` (``serve.tune`` / ``serve.sweep`` /
    ``serve.status``), keeping service traffic distinct from batch
    experiment runs in the same longitudinal file.
    """
    counters: Dict[str, float] = {
        "serve.status": float(status),
        f"serve.outcome.{outcome}": 1.0,
    }
    return RunRecord(
        run_id=trace_id,
        timestamp=time.time(),
        experiment=f"serve.{kind}",
        scale=scale,
        host=host_info(),
        metrics=dict(metrics or {}),
        counters=counters,
        wall=wall,
    )


class RunLedger:
    """Append-only JSONL ledger of :class:`RunRecord` lines.

    Appends are single ``O_APPEND`` writes (process-safe, no locks);
    reads tolerate torn or foreign lines by skipping them, so a ledger
    shared by many runs — including crashed ones — always loads.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None):
        self.path = Path(path) if path is not None else default_ledger_path()

    def append(self, record: RunRecord) -> Path:
        """Write one record as a single atomic line append."""
        line = (
            json.dumps(record.to_payload(), sort_keys=True, separators=(",", ":"))
            + "\n"
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
        return self.path

    def read(
        self,
        experiment: Optional[str] = None,
        scale: Optional[str] = None,
        last: Optional[int] = None,
    ) -> List[RunRecord]:
        """Records in append order, optionally filtered.

        Unparseable lines and records from future schema versions are
        skipped rather than failing the read.
        """
        if not self.path.is_file():
            return []
        records: List[RunRecord] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    if not isinstance(payload, dict):
                        continue
                    if payload.get("version") != LEDGER_VERSION:
                        continue
                    record = RunRecord.from_payload(payload)
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    continue
                if experiment is not None and record.experiment != experiment:
                    continue
                if scale is not None and record.scale != scale:
                    continue
                records.append(record)
        if last is not None:
            records = records[-last:]
        return records

    def latest(
        self, experiment: str, scale: Optional[str] = None
    ) -> Optional[RunRecord]:
        """The most recent record of an experiment (and scale)."""
        records = self.read(experiment=experiment, scale=scale)
        return records[-1] if records else None


def resolve_ledger() -> Optional[RunLedger]:
    """The ledger implied by the environment, or ``None`` when off.

    ``REPRO_LEDGER`` overrides: a path redirects the ledger, while
    ``0`` / ``off`` / ``none`` (any case) disables recording — the knob
    hermetic callers use.  Unset means the default ledger beside the
    artifact store.
    """
    value = os.environ.get("REPRO_LEDGER")
    if value is None:
        return RunLedger()
    trimmed = value.strip()
    if trimmed.lower() in ("0", "off", "none", "false", ""):
        return None
    return RunLedger(trimmed)
