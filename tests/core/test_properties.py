"""Property-based invariants of the tuning core (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binary_lut import binarize_at_most
from repro.core.rectangle import largest_rectangle
from repro.core.restriction import SlewLoadWindow, pin_equivalent_sigma, restrict_pin
from repro.core.threshold import extract_slope_threshold


def _window_area(window):
    if window is None:
        return 0.0
    return (window.max_slew - window.min_slew) * (window.max_load - window.min_load)


class TestRestrictionMonotonicity:
    @given(
        quantiles=st.tuples(st.floats(0.05, 0.95), st.floats(0.05, 0.95)),
        cell=st.sampled_from(["INV_1", "INV_4", "ND2_2", "ADDF_2"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_looser_threshold_never_shrinks_usable_area(
        self, statistical_library, quantiles, cell
    ):
        """A higher sigma threshold accepts a superset of LUT entries,
        so the largest all-ones rectangle cannot cover *fewer entries*.

        Entry count is the monotone quantity — Algorithm 1 maximizes
        covered grid entries, and the characterization grid is
        non-uniform, so the *physical* (ns x pF) window area of a
        larger-count rectangle can legitimately be smaller.
        """
        pin = statistical_library.cell(cell).output_pins()[0]
        values = pin_equivalent_sigma(pin).values
        low_q, high_q = sorted(quantiles)
        t_low = float(np.quantile(values, low_q))
        t_high = float(np.quantile(values, high_q))
        if t_low <= 0 or t_low == t_high:
            return
        rect_low = largest_rectangle(binarize_at_most(values, t_low))
        rect_high = largest_rectangle(binarize_at_most(values, t_high))
        count_low = 0 if rect_low is None else rect_low.area
        count_high = 0 if rect_high is None else rect_high.area
        assert count_high >= count_low
        # The physical window still exists whenever any entry passes.
        if rect_low is not None:
            assert _window_area(restrict_pin(pin, t_low)) >= 0.0

    @given(
        bounds=st.tuples(st.floats(0.001, 0.1), st.floats(0.001, 0.1)),
    )
    @settings(max_examples=30, deadline=None)
    def test_slope_threshold_monotone_in_load_bound(
        self, statistical_library, bounds
    ):
        """Loosening the load-slope bound can only keep or grow the flat
        region, so the extracted sigma threshold cannot decrease."""
        cells = [statistical_library.cell("INV_1")]
        tight, loose = sorted(bounds)
        t_tight, rect_tight = extract_slope_threshold(cells, tight, 0.06)
        t_loose, rect_loose = extract_slope_threshold(cells, loose, 0.06)
        assert rect_loose.area >= rect_tight.area

    @given(st.floats(0.0001, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_rectangle_contains_only_acceptable_entries(
        self, statistical_library, quantile_like
    ):
        pin = statistical_library.cell("ND2_1").pin("Z")
        equivalent = pin_equivalent_sigma(pin)
        threshold = float(equivalent.values.min()) + quantile_like * float(
            equivalent.values.max() - equivalent.values.min()
        )
        binary = binarize_at_most(equivalent.values, threshold)
        rect = largest_rectangle(binary)
        if rect is None:
            return
        block = equivalent.values[
            rect.row_lo : rect.row_hi + 1, rect.col_lo : rect.col_hi + 1
        ]
        assert np.all(block <= threshold + 1e-15)


class TestWindowSemantics:
    @given(
        slew=st.floats(0.0, 2.0),
        load=st.floats(0.0, 0.02),
        max_slew=st.floats(0.01, 1.5),
        max_load=st.floats(0.001, 0.015),
    )
    @settings(max_examples=150, deadline=None)
    def test_allows_agrees_with_slack_sign(self, slew, load, max_slew, max_load):
        window = SlewLoadWindow(0.0, max_slew, 0.0, max_load)
        slack = window.slack_to(slew, load)
        if slack > 1e-9:
            assert window.allows(slew, load)
        if slack < -1e-9:
            assert not window.allows(slew, load)

    @given(
        max_slew=st.floats(0.01, 1.5),
        max_load=st.floats(0.001, 0.015),
    )
    @settings(max_examples=60, deadline=None)
    def test_corners_are_inside(self, max_slew, max_load):
        window = SlewLoadWindow(0.0, max_slew, 0.0, max_load)
        assert window.allows(0.0, 0.0)
        assert window.allows(max_slew, max_load)
        assert not window.allows(max_slew * 1.01 + 1e-9, max_load)
