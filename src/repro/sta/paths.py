"""Worst-path extraction per unique endpoint.

The paper's design-level metrics (Sec. V, eq. 11, Figs. 12-14) are
built on "the worst case paths connected to a unique endpoint": for
every flip-flop data pin and every output port, the single
maximum-arrival path feeding it.  Paths are reconstructed by walking
the timing graph backwards along the arcs that realized each net's
arrival time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import TimingError
from repro.sta.engine import TimingResult
from repro.sta.graph import Endpoint

_TOLERANCE = 1e-9


@dataclass(frozen=True)
class PathStep:
    """One cell traversal on a path."""

    instance: str
    cell_name: str
    related_pin: str
    out_pin: str
    input_net: str
    output_net: str
    #: Arc delay as timed (ns).
    delay: float
    #: Input slew used for the LUT lookup (ns).
    slew: float
    #: Output load used for the LUT lookup (pF).
    load: float
    #: True for the launching flip-flop's clock->Q step.
    is_launch: bool = False

    def to_payload(self) -> dict:
        """JSON-serializable rendering (artifact pipeline)."""
        return {
            "instance": self.instance,
            "cell_name": self.cell_name,
            "related_pin": self.related_pin,
            "out_pin": self.out_pin,
            "input_net": self.input_net,
            "output_net": self.output_net,
            "delay": self.delay,
            "slew": self.slew,
            "load": self.load,
            "is_launch": self.is_launch,
        }

    @staticmethod
    def from_payload(payload: dict) -> "PathStep":
        """Rebuild a step stored with :meth:`to_payload`."""
        return PathStep(
            instance=payload["instance"],
            cell_name=payload["cell_name"],
            related_pin=payload["related_pin"],
            out_pin=payload["out_pin"],
            input_net=payload["input_net"],
            output_net=payload["output_net"],
            delay=float(payload["delay"]),
            slew=float(payload["slew"]),
            load=float(payload["load"]),
            is_launch=bool(payload["is_launch"]),
        )


@dataclass
class TimingPath:
    """A worst path ending at one endpoint."""

    endpoint: Endpoint
    steps: List[PathStep]
    arrival: float
    required: float

    @property
    def slack(self) -> float:
        return self.required - self.arrival

    @property
    def depth(self) -> int:
        """Number of cells on the path (launching FF included)."""
        return len(self.steps)

    def delays(self) -> np.ndarray:
        """Per-step delays (ns)."""
        return np.array([step.delay for step in self.steps])

    def to_payload(self) -> dict:
        """JSON-serializable rendering (artifact pipeline).

        Floats survive the JSON round trip bit-exactly, so a path
        rebuilt with :meth:`from_payload` compares equal (``==``) to
        the one extracted from the live timing graph.
        """
        return {
            "endpoint": self.endpoint.to_payload(),
            "steps": [step.to_payload() for step in self.steps],
            "arrival": self.arrival,
            "required": self.required,
        }

    @staticmethod
    def from_payload(payload: dict) -> "TimingPath":
        """Rebuild a path stored with :meth:`to_payload`."""
        return TimingPath(
            endpoint=Endpoint.from_payload(payload["endpoint"]),
            steps=[PathStep.from_payload(step) for step in payload["steps"]],
            arrival=float(payload["arrival"]),
            required=float(payload["required"]),
        )


def _backtrack(result: TimingResult, endpoint: Endpoint) -> TimingPath:
    graph = result.graph
    config = graph.config
    steps: List[PathStep] = []
    net_id = endpoint.net_id
    guard = 0
    while True:
        guard += 1
        if guard > len(graph.net_names) + 2:
            raise TimingError("path backtracking did not terminate")
        incoming = graph.incoming_arcs.get(net_id)
        if not incoming:
            break  # reached a source net (PI or sequential Q)
        best_arc = None
        best_value = -np.inf
        for arc_index in incoming:
            src = graph.arc_src[arc_index]
            value = result.arrival[src] + result.arc_delay[arc_index]
            if value > best_value:
                best_value = value
                best_arc = arc_index
        if best_arc is None:
            raise TimingError(
                "no finite incoming arc while backtracking at net "
                f"{graph.net_names[net_id]}"
            )
        if best_value < result.arrival[net_id] - _TOLERANCE:
            raise TimingError(
                f"inconsistent arrivals while backtracking at net "
                f"{graph.net_names[net_id]}"
            )
        src = int(graph.arc_src[best_arc])
        instance_name = graph.arc_instance[best_arc]
        instance = graph.netlist.instance(instance_name)
        steps.append(
            PathStep(
                instance=instance_name,
                cell_name=instance.cell,
                related_pin=graph.arc_related[best_arc],
                out_pin=graph.arc_out_pin[best_arc],
                input_net=graph.net_names[src],
                output_net=graph.net_names[net_id],
                delay=float(result.arc_delay[best_arc]),
                slew=float(result.slew[src]),
                load=float(graph.loads[net_id]),
            )
        )
        net_id = src

    launch = result.launches.get(net_id)
    if launch is not None:
        steps.append(
            PathStep(
                instance=launch.instance,
                cell_name=launch.cell_name,
                related_pin=graph.netlist.instance(launch.instance).function.clock_pin,
                out_pin=launch.out_pin,
                input_net=graph.netlist.clock,
                output_net=graph.net_names[launch.q_net],
                delay=launch.delay,
                slew=config.clock_slew,
                load=float(graph.loads[launch.q_net]),
                is_launch=True,
            )
        )
    steps.reverse()
    return TimingPath(
        endpoint=endpoint,
        steps=steps,
        arrival=float(result.arrival[endpoint.net_id]),
        required=result.endpoint_required(endpoint),
    )


def extract_worst_paths(
    result: TimingResult, endpoints: Optional[List[Endpoint]] = None
) -> List[TimingPath]:
    """Worst path per unique endpoint (all endpoints by default)."""
    chosen = endpoints if endpoints is not None else result.graph.endpoints
    return [_backtrack(result, endpoint) for endpoint in chosen]


def worst_path(result: TimingResult) -> TimingPath:
    """The single most critical path of the design."""
    return _backtrack(result, result.worst_endpoint())


def depth_histogram(paths: List[TimingPath]) -> dict:
    """Path count per depth (paper Fig. 12)."""
    histogram: dict = {}
    for path in paths:
        histogram[path.depth] = histogram.get(path.depth, 0) + 1
    return dict(sorted(histogram.items()))
