"""Minimum clock period search and period/area sweeps.

Paper Sec. VII: "The minimum clock period is found by reducing the
clock period until the synthesis fails to provide a design with
positive slack", and Fig. 8 plots clock period against total cell area
(the relaxed constraint sits where the curve flattens).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import ReproError

#: A synthesis probe: period -> (met, area).
SynthesisProbe = Callable[[float], Tuple[bool, float]]


def minimum_clock_period(
    probe: SynthesisProbe,
    lower: float,
    upper: float,
    resolution: float = 0.01,
) -> float:
    """Binary-search the smallest period the probe can still meet.

    ``upper`` must be feasible and ``lower`` infeasible (both are
    verified); the search stops when the bracket is ``resolution`` wide
    and returns the feasible end.
    """
    if lower >= upper:
        raise ReproError(f"need lower < upper, got [{lower}, {upper}]")
    met_low, _ = probe(lower)
    if met_low:
        raise ReproError(
            f"lower bound {lower} ns already meets timing; tighten it"
        )
    met_high, _ = probe(upper)
    if not met_high:
        raise ReproError(f"upper bound {upper} ns fails timing; relax it")
    feasible = upper
    infeasible = lower
    while feasible - infeasible > resolution:
        middle = 0.5 * (feasible + infeasible)
        met, _area = probe(middle)
        if met:
            feasible = middle
        else:
            infeasible = middle
    return feasible


def period_area_sweep(
    probe: SynthesisProbe, periods: Sequence[float]
) -> List[Dict[str, float]]:
    """Fig. 8 data: area (and feasibility) per clock period."""
    rows: List[Dict[str, float]] = []
    for period in periods:
        met, area = probe(period)
        rows.append({"clock_period": period, "area": area, "met": float(met)})
    return rows


def find_relaxed_period(rows: List[Dict[str, float]], flatness: float = 0.02) -> float:
    """The knee of the period/area curve (paper: 10 ns).

    Returns the smallest period from which area stays within
    ``flatness`` of the final (most relaxed) area.
    """
    feasible = [r for r in rows if r["met"]]
    if not feasible:
        raise ReproError("no feasible points in the sweep")
    feasible.sort(key=lambda r: r["clock_period"])
    final_area = feasible[-1]["area"]
    for row in feasible:
        if row["area"] <= final_area * (1.0 + flatness):
            return row["clock_period"]
    return feasible[-1]["clock_period"]
