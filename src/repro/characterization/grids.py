"""Characterization grids (paper Sec. II).

The slew grid is identical for every cell ("the slew range for the
different inverter cells is identical", Fig. 4), ranging from a steep
to a shallow input edge.  The load grid scales with drive strength:
"cells with low drive strengths are not designed to drive a high output
load ... the output load range for cells with different drive strengths
is different".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cells.catalog import CellSpec
from repro.errors import CharacterizationError


@dataclass(frozen=True)
class GridConfig:
    """Grid shape and ranges used during characterization."""

    #: Number of slew points (LUT rows).
    n_slew: int = 7
    #: Number of load points (LUT columns).
    n_load: int = 7
    #: Fastest characterized input transition (ns).
    slew_min: float = 0.008
    #: Slowest characterized input transition (ns).
    slew_max: float = 1.2
    #: Smallest characterized load (pF) — a near-unloaded output.
    load_min: float = 0.0002

    def __post_init__(self) -> None:
        if self.n_slew < 2 or self.n_load < 2:
            raise CharacterizationError("grids need at least 2 points per axis")
        if not (0 < self.slew_min < self.slew_max):
            raise CharacterizationError("slew range must satisfy 0 < min < max")
        if self.load_min <= 0:
            raise CharacterizationError("load_min must be positive")


def slew_grid(config: GridConfig) -> np.ndarray:
    """The shared input-transition axis (geometric spacing, ns)."""
    return np.geomspace(config.slew_min, config.slew_max, config.n_slew)


def load_grid(config: GridConfig, spec: CellSpec) -> np.ndarray:
    """The per-cell output-load axis (geometric spacing, pF).

    The top of the range is the cell's ``max_load`` (proportional to
    drive strength, see the catalog), so the LUT covers exactly the
    loads the cell is designed to drive.
    """
    if spec.max_load <= config.load_min:
        raise CharacterizationError(
            f"{spec.name}: max_load {spec.max_load} pF below grid minimum"
        )
    return np.geomspace(config.load_min, spec.max_load, config.n_load)
