"""Scalar-vs-vectorized bit-identity across the whole pipeline.

The contract of :mod:`repro.kernels`: the vectorized production kernel
and the scalar reference kernel are two schedules of the *same*
IEEE-754 operations — every statistical LUT, every per-sample library,
every STA array and every design statistic must match bit-for-bit,
across worker counts and seeds, and the kernel choice must never
invalidate a warm cache artifact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.characterization.characterize import (
    Characterizer,
    characterization_call_count,
    reset_characterization_call_count,
)
from repro.characterization.grids import GridConfig
from repro.flow.experiment import FlowConfig
from repro.parallel.cache import characterization_key
from repro.sta.engine import analyze
from repro.sta.graph import TimingGraph
from repro.sta.paths import extract_worst_paths
from repro.sta.statistics import design_statistics, path_statistics, step_sigma
from tests.parallel.test_equivalence import assert_libraries_bit_identical

#: Interpolation needs >= 2 points per axis; 3x3 keeps interior points.
SMALL_GRID = GridConfig(n_slew=3, n_load=3)


def _characterizer(kernel, grid=SMALL_GRID, **kwargs):
    return Characterizer(grid=grid, kernel=kernel, **kwargs)


class TestCharacterizationEquivalence:
    @pytest.mark.parametrize("seed", [3, 11])
    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_statistical_library_bit_identical(
        self, small_specs, seed, n_workers
    ):
        specs = small_specs[:8]
        scalar = _characterizer("scalar").statistical_library(
            specs, n_samples=6, seed=seed, n_workers=n_workers
        )
        vectorized = _characterizer("vectorized").statistical_library(
            specs, n_samples=6, seed=seed, n_workers=n_workers
        )
        assert_libraries_bit_identical(scalar, vectorized)

    @pytest.mark.parametrize("seed", [3, 11])
    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_sample_libraries_bit_identical(self, small_specs, seed, n_workers):
        """The per-sample path also ships die-level (global) draws —
        the vectorized kernel must add them before lifting to 3-D."""
        specs = small_specs[:6]
        scalar = _characterizer("scalar").sample_libraries(
            specs, n_samples=5, seed=seed, include_global=True,
            n_workers=n_workers,
        )
        vectorized = _characterizer("vectorized").sample_libraries(
            specs, n_samples=5, seed=seed, include_global=True,
            n_workers=n_workers,
        )
        assert len(scalar) == len(vectorized) == 5
        for lib_scalar, lib_vectorized in zip(scalar, vectorized):
            assert lib_scalar.name == lib_vectorized.name
            assert_libraries_bit_identical(lib_scalar, lib_vectorized)

    def test_power_tables_bit_identical(self, small_specs):
        specs = small_specs[:5]
        scalar = _characterizer("scalar", include_power=True)
        vectorized = _characterizer("vectorized", include_power=True)
        lib_scalar = scalar.statistical_library(specs, n_samples=5, seed=2)
        lib_vectorized = vectorized.statistical_library(specs, n_samples=5, seed=2)
        arc = lib_scalar.cell(specs[0].name).output_pins()[0].timing[0]
        assert arc.power_rise is not None and arc.sigma_power_rise is not None
        assert_libraries_bit_identical(lib_scalar, lib_vectorized)

        samples_scalar = scalar.sample_libraries(specs, n_samples=4, seed=2)
        samples_vectorized = vectorized.sample_libraries(specs, n_samples=4, seed=2)
        for lib_a, lib_b in zip(samples_scalar, samples_vectorized):
            assert_libraries_bit_identical(lib_a, lib_b)

    def test_every_paper_cell_spec_bit_identical(self, full_specs, coarse_grid):
        """The full Appendix A catalog at the coarsest legal grid and
        minimum sample count — every topology class the surrogate
        distinguishes goes through both kernels."""
        scalar = _characterizer("scalar", grid=coarse_grid).statistical_library(
            full_specs, n_samples=2, seed=1
        )
        vectorized = _characterizer(
            "vectorized", grid=coarse_grid
        ).statistical_library(full_specs, n_samples=2, seed=1)
        assert len(scalar) == len(full_specs)
        assert_libraries_bit_identical(scalar, vectorized)


class TestStaEquivalence:
    RESULT_ARRAYS = (
        "arrival",
        "slew",
        "required",
        "arc_delay",
        "arc_transition",
        "endpoint_slacks",
    )

    @pytest.mark.parametrize("netlist_name", ["chain_netlist", "adder_netlist"])
    def test_analysis_bit_identical(
        self, netlist_name, statistical_library, request
    ):
        graph = TimingGraph(
            request.getfixturevalue(netlist_name), statistical_library
        )
        scalar = analyze(graph, 2.0, kernel="scalar")
        vectorized = analyze(graph, 2.0, kernel="vectorized")
        for name in self.RESULT_ARRAYS:
            assert np.array_equal(
                getattr(scalar, name), getattr(vectorized, name)
            ), name
        assert scalar.launches.keys() == vectorized.launches.keys()
        for q_net, launch in scalar.launches.items():
            assert launch == vectorized.launches[q_net]

    def test_path_and_design_statistics_bit_identical(
        self, adder_netlist, statistical_library
    ):
        graph = TimingGraph(adder_netlist, statistical_library)
        result = analyze(graph, 2.0)
        paths = extract_worst_paths(result)
        assert paths
        scalar = design_statistics(paths, statistical_library, kernel="scalar")
        vectorized = design_statistics(
            paths, statistical_library, kernel="vectorized"
        )
        assert scalar == vectorized
        for path in paths[:3]:
            assert path_statistics(
                path, statistical_library, kernel="scalar"
            ) == path_statistics(path, statistical_library, kernel="vectorized")
            for step in path.steps:
                assert step_sigma(
                    statistical_library, step, kernel="scalar"
                ) == step_sigma(statistical_library, step, kernel="vectorized")


class TestFingerprintInvariance:
    def test_characterization_key_ignores_kernel(self, small_specs):
        """The cache key is built from an explicit payload the kernel
        is excluded from — warm artifacts stay valid across kernels."""
        keys = {
            characterization_key(
                _characterizer(kernel), small_specs[:6], 6, 4, False, "stat"
            )
            for kernel in ("scalar", "vectorized")
        }
        assert len(keys) == 1

    def test_scale_name_ignores_kernel(self):
        from dataclasses import replace

        config = FlowConfig.tiny()
        assert replace(config, kernel="scalar").scale_name() == \
            config.scale_name() == "tiny"

    def test_statlib_fingerprint_ignores_kernel(self):
        from repro.flow.experiment import TuningFlow

        keys = {
            TuningFlow(FlowConfig(kernel=kernel, cache=False)).statlib_key
            for kernel in ("scalar", "vectorized")
        }
        assert len(keys) == 1


class TestWarmArtifactsAcrossKernels:
    @pytest.fixture()
    def cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        return tmp_path / "cache"

    def test_vectorized_cold_serves_scalar_warm(self, cache_dir, small_specs):
        """A cache written by one kernel is a valid warm hit for the
        other: zero characterization calls, bit-identical library."""
        from repro.parallel import LibraryCache

        specs = small_specs[:6]
        cold = _characterizer("vectorized", cache=LibraryCache())
        reset_characterization_call_count()
        cold_library = cold.statistical_library(specs, n_samples=5, seed=8)
        assert characterization_call_count() > 0

        warm = _characterizer("scalar", cache=LibraryCache())
        reset_characterization_call_count()
        warm_library = warm.statistical_library(specs, n_samples=5, seed=8)
        assert characterization_call_count() == 0
        assert_libraries_bit_identical(cold_library, warm_library)

    def test_scalar_cold_serves_vectorized_warm(self, cache_dir, small_specs):
        from repro.parallel import LibraryCache

        specs = small_specs[:4]
        cold = _characterizer("scalar", cache=LibraryCache())
        cold_libraries = cold.sample_libraries(specs, n_samples=4, seed=6)

        warm = _characterizer("vectorized", cache=LibraryCache())
        reset_characterization_call_count()
        warm_libraries = warm.sample_libraries(specs, n_samples=4, seed=6)
        assert characterization_call_count() == 0
        for lib_cold, lib_warm in zip(cold_libraries, warm_libraries):
            assert_libraries_bit_identical(lib_cold, lib_warm)
