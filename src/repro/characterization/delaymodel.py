"""Analytical gate delay / output-transition model.

The model is the classic effective-resistance picture with an
alpha-power-law drive::

    R      = stack * k_res * L / (W_dev * (vdd - vth - dvth)^alpha) / (1 + dbeta)
    delay  = ln(2) * R * (C_load + C_par)
             + intrinsic_stages * t_internal
             + k_slew_delay * slew_in * (vth + dvth) / vdd
             + slew_in * dvth / (k_switch * vdd)
    slew   = k_transition * R * (C_load + C_par) + k_feedthrough * slew_in

The last delay term is the classic slow-edge mismatch amplification: a
threshold shift ``dvth`` moves the instant the input crosses the
switching point by ``dvth / slew_rate`` — it vanishes at nominal
(dvth = 0) but makes the delay *sigma* grow with input slew, which is
why the paper's slew-slope tuning bound has something to cut.

Everything is vectorized with numpy broadcasting: the variation inputs
(``dvth``/``dbeta``/``dlength_rel``) may be scalars or arrays of shape
``(N, 1, 1)`` while slews/loads span a characterization grid of shape
``(n_slew, 1)`` x ``(n_load,)`` — one call then characterizes all N
Monte-Carlo samples of an arc at once, which is what makes building the
50-sample statistical library fast.

Variation enters through exactly the physics the paper leans on:

* a threshold shift changes R through the overdrive term, so the delay
  sensitivity to vth mismatch *grows with load* (the R*C term) and with
  input slew — sigma surfaces rise towards high slew/load (Fig. 4);
* mismatch sigma falls with device area (Pelgrom), so higher drive
  strengths have flatter, lower sigma surfaces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.cells.catalog import CellSpec
from repro.characterization.devices import CellElectricalView
from repro.errors import CharacterizationError
from repro.variation.process import TechnologyParams

ArrayLike = Union[float, np.ndarray]

_LN2 = math.log(2.0)
#: Minimum gate overdrive (V) before the model refuses to evaluate.
_MIN_OVERDRIVE = 0.05


@dataclass(frozen=True)
class ArcTables:
    """Delay and output-transition values over a (slew x load) grid.

    Shapes follow numpy broadcasting of the inputs; for grid inputs of
    shape ``(n_s, 1)`` and ``(n_l,)`` with scalar variation the arrays
    are ``(n_s, n_l)``; with an ``(N, 1, 1)`` variation axis they are
    ``(N, n_s, n_l)``.
    """

    delay: np.ndarray
    transition: np.ndarray


class GateDelayModel:
    """Evaluates arc delay/transition for catalog cells.

    Parameters
    ----------
    tech:
        Technology (possibly already shifted into a corner via
        :meth:`repro.variation.process.Corner.apply`).
    """

    def __init__(self, tech: Optional[TechnologyParams] = None):
        self.tech = tech or TechnologyParams()

    # -- elementary quantities ---------------------------------------

    def _overdrive(self, dvth: ArrayLike) -> np.ndarray:
        headroom = self.tech.vdd - (self.tech.vth + np.asarray(dvth, dtype=float))
        if np.any(headroom <= _MIN_OVERDRIVE):
            raise CharacterizationError(
                "threshold variation leaves no gate overdrive; "
                f"min headroom {float(np.min(headroom)):.3f} V"
            )
        return np.power(headroom, self.tech.alpha)

    def network_resistance(
        self,
        spec: CellSpec,
        output_pin: str,
        rise: bool,
        dvth: ArrayLike = 0.0,
        dbeta: ArrayLike = 0.0,
        dlength_rel: ArrayLike = 0.0,
    ) -> np.ndarray:
        """Effective switching resistance of the arc's network (kOhm)."""
        tech = self.tech
        view = CellElectricalView(spec, tech)
        drive = spec.drive(output_pin)
        stack = drive.stack_rise if rise else drive.stack_fall
        width = view.device_width(drive, rise)
        mobility = tech.p_resistance_factor if rise else 1.0
        length = tech.channel_length * (1.0 + np.asarray(dlength_rel, dtype=float))
        resistance = (
            stack * tech.k_res * mobility * length
            / (width * self._overdrive(dvth))
            / (1.0 + np.asarray(dbeta, dtype=float))
        )
        return np.asarray(resistance)

    def internal_stage_delay(
        self,
        spec: CellSpec,
        dvth: ArrayLike = 0.0,
        dbeta: ArrayLike = 0.0,
        dlength_rel: ArrayLike = 0.0,
    ) -> np.ndarray:
        """Delay of one internal (pre-output) stage (ns).

        Internal stages drive their own gate load, so the R*C product —
        and hence this delay — is independent of the internal width to
        first order; variation still enters through the overdrive.
        """
        tech = self.tech
        view = CellElectricalView(spec, tech)
        s_int = view.internal_strength()
        w_avg = 0.5 * (tech.w_unit_n + tech.w_unit_p) * s_int
        length = tech.channel_length * (1.0 + np.asarray(dlength_rel, dtype=float))
        mobility = 0.5 * (1.0 + tech.p_resistance_factor)
        resistance = (
            tech.k_res * mobility * length / (w_avg * self._overdrive(dvth))
            / (1.0 + np.asarray(dbeta, dtype=float))
        )
        cap = (tech.c_gate + tech.c_diff) * (tech.w_unit_n + tech.w_unit_p) * s_int
        return np.asarray(_LN2 * resistance * cap)

    # -- the arc model -------------------------------------------------

    def arc_tables(
        self,
        spec: CellSpec,
        output_pin: str,
        rise: bool,
        slews: np.ndarray,
        loads: np.ndarray,
        dvth: ArrayLike = 0.0,
        dbeta: ArrayLike = 0.0,
        dlength_rel: ArrayLike = 0.0,
    ) -> ArcTables:
        """Delay and transition of one arc over slews x loads.

        ``slews``/``loads`` are broadcast against each other (pass
        ``slews[:, None]`` and ``loads[None, :]`` for a full grid) and
        against the variation arguments.
        """
        tech = self.tech
        view = CellElectricalView(spec, tech)
        drive = spec.drive(output_pin)
        slews = np.asarray(slews, dtype=float)
        loads = np.asarray(loads, dtype=float)
        if np.any(slews < 0) or np.any(loads < 0):
            raise CharacterizationError("slew and load must be non-negative")

        resistance = self.network_resistance(
            spec, output_pin, rise, dvth=dvth, dbeta=dbeta, dlength_rel=dlength_rel
        )
        c_total = loads + view.parasitic_cap(drive)
        rc_delay = _LN2 * resistance * c_total
        dvth_arr = np.asarray(dvth, dtype=float)
        vth_eff = tech.vth + dvth_arr
        slew_delay = tech.k_slew_delay * slews * (vth_eff / tech.vdd)
        slew_delay = slew_delay + slews * dvth_arr / (tech.k_switch * tech.vdd)
        intrinsic = drive.intrinsic_stages * self.internal_stage_delay(
            spec, dvth=dvth, dbeta=dbeta, dlength_rel=dlength_rel
        )
        delay = rc_delay + slew_delay + intrinsic
        transition = tech.k_transition * resistance * c_total + tech.k_slew_feedthrough * slews
        return ArcTables(delay=np.asarray(delay), transition=np.asarray(transition))

    def arc_delay(
        self,
        spec: CellSpec,
        output_pin: str,
        rise: bool,
        slew: float,
        load: float,
        dvth: float = 0.0,
        dbeta: float = 0.0,
        dlength_rel: float = 0.0,
    ) -> float:
        """Scalar convenience wrapper around :meth:`arc_tables`."""
        tables = self.arc_tables(
            spec, output_pin, rise,
            np.asarray(slew), np.asarray(load),
            dvth=dvth, dbeta=dbeta, dlength_rel=dlength_rel,
        )
        return float(tables.delay)

    def vth_sensitivity(
        self, spec: CellSpec, output_pin: str, rise: bool, slew: float, load: float
    ) -> float:
        """Numerical d(delay)/d(vth) in ns/V (positive: slower when vth
        rises); used by tests to validate the sigma structure."""
        eps = 1e-4
        hi = self.arc_delay(spec, output_pin, rise, slew, load, dvth=eps)
        lo = self.arc_delay(spec, output_pin, rise, slew, load, dvth=-eps)
        return (hi - lo) / (2.0 * eps)
