"""Parametric gate-level design generators.

Every generator is deterministic (seeded where randomness is used) and
verified bit-for-bit against Python semantics by the test-suite.  The
top-level product is :func:`~repro.netlist.generators.microcontroller.
build_microcontroller`, the ~20k-gate evaluation design standing in for
the paper's 32-bit CPU + AHB microcontroller.
"""

from repro.netlist.generators.arithmetic import (
    build_ripple_adder,
    build_carry_select_adder,
    carry_select_adder,
    less_than,
)
from repro.netlist.generators.shifter import barrel_shifter, build_barrel_shifter
from repro.netlist.generators.multiplier import array_multiplier, build_array_multiplier
from repro.netlist.generators.alu import Alu, AluPorts, build_alu
from repro.netlist.generators.regfile import register_file, RegisterFilePorts
from repro.netlist.generators.control import random_logic, decode_rom
from repro.netlist.generators.peripherals import timer, uart_tx, gpio_block
from repro.netlist.generators.microcontroller import (
    MicrocontrollerParams,
    build_microcontroller,
)
from repro.netlist.generators.family import (
    DESIGN_PRESETS,
    DesignSpec,
    design_family,
    design_spec,
)

__all__ = [
    "build_ripple_adder",
    "build_carry_select_adder",
    "carry_select_adder",
    "less_than",
    "barrel_shifter",
    "build_barrel_shifter",
    "array_multiplier",
    "build_array_multiplier",
    "Alu",
    "AluPorts",
    "build_alu",
    "register_file",
    "RegisterFilePorts",
    "random_logic",
    "decode_rom",
    "timer",
    "uart_tx",
    "gpio_block",
    "MicrocontrollerParams",
    "build_microcontroller",
    "DESIGN_PRESETS",
    "DesignSpec",
    "design_family",
    "design_spec",
]
