"""Fig. 3 — bilinear interpolation between LUT grid points (eqs. 2-4)."""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentContext, ExperimentResult
from repro.liberty.lut import bilinear_interpolate, bilinear_interpolate_paper


def run(context: ExperimentContext, seed: int = 3) -> ExperimentResult:
    """Interpolate a real sigma LUT at off-grid points and compare the
    fast implementation with the paper's literal equations."""
    library = context.flow.statistical_library
    lut = library.cell("INV_1").pin("Z").arc_from("A").sigma_fall
    rng = np.random.default_rng(seed)
    rows = []
    worst = 0.0
    for _ in range(8):
        slew = float(rng.uniform(lut.index_1[0], lut.index_1[-1]))
        load = float(rng.uniform(lut.index_2[0], lut.index_2[-1]))
        fast = bilinear_interpolate(lut, slew, load)
        literal = bilinear_interpolate_paper(lut, slew, load)
        worst = max(worst, abs(fast - literal))
        rows.append({
            "slew_ns": slew,
            "load_pF": load,
            "X_interp": fast,
            "X_eq2_4": literal,
        })
    lo = float(lut.values.min())
    hi = float(lut.values.max())
    in_range = all(lo <= r["X_interp"] <= hi for r in rows)
    return ExperimentResult(
        experiment_id="fig03",
        title="Bilinear interpolation of a sigma LUT (eqs. 2-4)",
        rows=rows,
        notes=(
            f"max |fast - literal| = {worst:.2e}; "
            f"all values within LUT range: {in_range}"
        ),
    )
