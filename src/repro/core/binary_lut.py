"""Binary LUTs (paper Sec. VI.B).

"Both slew and load slope tables are converted to binary slew and load
tables, thresholded by an upper slope limit.  This means that all table
entries which are smaller than the slope threshold become a logic one
and the remaining a logic zero.  The contents of both binary load and
slew tables are combined by taking the logic 'and'."
"""

from __future__ import annotations

import numpy as np

from repro.errors import TuningError


def binarize_below(values: np.ndarray, threshold: float) -> np.ndarray:
    """Logic one where ``values < threshold`` (strictly smaller)."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise TuningError(f"binary LUTs are 2-D, got shape {values.shape}")
    return values < threshold


def binarize_at_most(values: np.ndarray, threshold: float) -> np.ndarray:
    """Logic one where ``values <= threshold``.

    Used by the LUT-restriction stage, where the paper maps values
    "greater than the threshold" to logic zero — so an entry exactly at
    the threshold (e.g. the entry the threshold was read from) stays
    acceptable.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise TuningError(f"binary LUTs are 2-D, got shape {values.shape}")
    return values <= threshold


def combine_and(*tables: np.ndarray) -> np.ndarray:
    """Logic AND of several binary tables of identical shape."""
    if not tables:
        raise TuningError("combine_and needs at least one table")
    result = np.asarray(tables[0], dtype=bool)
    for table in tables[1:]:
        table = np.asarray(table, dtype=bool)
        if table.shape != result.shape:
            raise TuningError(
                f"binary tables disagree on shape: {table.shape} vs {result.shape}"
            )
        result = result & table
    return result


def binary_fraction_true(table: np.ndarray) -> float:
    """Fraction of logic ones — how much of the LUT stays usable."""
    table = np.asarray(table, dtype=bool)
    if table.size == 0:
        raise TuningError("empty binary table")
    return float(table.mean())
