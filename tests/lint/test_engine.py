"""Engine mechanics: suppressions, dispatch, module mapping, parsing.

The rules themselves are covered in ``test_rules``; here the contract
is the machinery — one traversal feeding every rule, ``# repro:
noqa[...]`` honored on the flagged line only, unparseable files
degrading to a finding instead of an exception.
"""

import ast
import textwrap
from pathlib import Path

from repro.lint import (
    DEFAULT_RULES,
    FileContext,
    LintEngine,
    Rule,
    SYNTAX_RULE_ID,
    iter_python_files,
    module_name_for,
)
from repro.lint.engine import NOQA_FILE_LINES, collect_noqa_file

ENGINE = LintEngine(DEFAULT_RULES)


def lint(code, path="src/repro/flow/fake.py"):
    return ENGINE.lint_source(textwrap.dedent(code), path=path)


class TestNoqa:
    CODE = """
        import time

        def stage():
            return time.time()  # repro: noqa[DET001] stage is untimed in tests
    """

    def test_matching_id_suppresses(self):
        assert lint(self.CODE) == []

    def test_other_id_does_not_suppress(self):
        code = """
            import time

            def stage():
                return time.time()  # repro: noqa[PROC001]
        """
        assert [f.rule_id for f in lint(code)] == ["DET001"]

    def test_multiple_ids_in_one_comment(self):
        code = """
            import time

            def stage():
                assert time.time()  # repro: noqa[DET001, API001]
        """
        assert lint(code) == []

    def test_noqa_on_other_line_does_not_suppress(self):
        code = """
            import time

            # repro: noqa[DET001]
            def stage():
                return time.time()
        """
        assert [f.rule_id for f in lint(code)] == ["DET001"]


class TestNoqaFile:
    CODE = """
        # repro: noqa-file[DET001] clock shim for the test fixtures
        import time

        def stage():
            return time.time()

        def other_stage():
            return time.time()
    """

    def test_header_suppresses_whole_file(self):
        assert lint(self.CODE) == []

    def test_other_rule_still_fires(self):
        code = """
            # repro: noqa-file[PROC001] unrelated rule
            import time

            def stage():
                return time.time()
        """
        assert [f.rule_id for f in lint(code)] == ["DET001"]

    def test_multiple_rules_one_marker(self):
        code = """
            # repro: noqa-file[DET001, API001]
            import time

            def stage():
                assert time.time()
        """
        assert lint(code) == []

    def test_marker_beyond_line_ten_is_inert(self):
        filler = "# filler\n" * NOQA_FILE_LINES
        code = (
            filler
            + "# repro: noqa-file[DET001]\n"
            + "import time\n\n"
            + "def stage():\n"
            + "    return time.time()\n"
        )
        findings = ENGINE.lint_source(code, path="src/repro/flow/fake.py")
        assert [f.rule_id for f in findings] == ["DET001"]

    def test_collect_noqa_file_parses_header(self):
        lines = [
            '"""Doc."""',
            "# repro: noqa-file[DET001, lock001]",
            "import time",
        ]
        assert collect_noqa_file(lines) == {"DET001", "LOCK001"}
        assert collect_noqa_file(["x = 1"]) == set()


class TestSyntaxErrors:
    def test_unparseable_file_yields_lint000(self):
        findings = lint("def broken(:\n    pass\n")
        assert [f.rule_id for f in findings] == [SYNTAX_RULE_ID]
        assert findings[0].line >= 1


class TestDispatch:
    def test_single_walk_feeds_every_rule(self):
        """Two rules on the same node type both see every matching node,
        and the tree is traversed exactly once."""
        visits = {"a": 0, "b": 0, "nodes": 0}

        class CountCalls(Rule):
            """Counts Call nodes (test double)."""

            rule_id = "TST001"
            node_types = (ast.Call,)

            def __init__(self, key):
                self.key = key

            def visit(self, node, context):
                """Count one visited call."""
                visits[self.key] += 1

        class CountEverything(Rule):
            """Counts every module node once (test double)."""

            rule_id = "TST002"
            node_types = (ast.Module,)

            def visit(self, node, context):
                """Count all nodes below the module root."""
                visits["nodes"] += sum(1 for _ in ast.walk(node))

        engine = LintEngine(
            [CountCalls("a"), CountCalls("b"), CountEverything()]
        )
        engine.lint_source("f(1)\ng(2)\nh(3)\n", path="x.py")
        assert visits["a"] == 3
        assert visits["b"] == 3
        assert visits["nodes"] > 0  # module visited exactly once

    def test_import_alias_resolution(self):
        code = textwrap.dedent(
            """
            import numpy as np
            from datetime import datetime as dt
            import concurrent.futures
            """
        )
        tree = ast.parse(code)
        context = FileContext("x.py", "x", code, tree)
        for node in ast.walk(tree):
            context._note_import(node)
        assert context.resolve("np.random.normal") == (
            "numpy.random.normal",
            True,
        )
        assert context.resolve("dt.now") == ("datetime.datetime.now", True)
        assert context.resolve("concurrent.futures.ProcessPoolExecutor") == (
            "concurrent.futures.ProcessPoolExecutor",
            True,
        )
        assert context.resolve("unknown.thing") == ("unknown.thing", False)


class TestModuleMapping:
    def test_src_layout(self):
        assert (
            module_name_for(Path("src/repro/flow/pipeline.py"))
            == "repro.flow.pipeline"
        )

    def test_package_init_collapses(self):
        assert module_name_for(Path("src/repro/lint/__init__.py")) == "repro.lint"

    def test_bare_repro_tree(self):
        assert (
            module_name_for(Path("/x/repro/core/tuner.py")) == "repro.core.tuner"
        )

    def test_unrelated_path_uses_stem(self):
        assert module_name_for(Path("tools/helper.py")) == "helper"


class TestFileDiscovery:
    def test_sorted_and_filtered(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "b.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.cpython-311.py").write_text("")
        (tmp_path / "pkg" / ".hidden").mkdir()
        (tmp_path / "pkg" / ".hidden" / "c.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "data.txt").write_text("not python")
        found = list(iter_python_files([tmp_path / "pkg"]))
        assert [p.name for p in found] == ["a.py", "b.py"]

    def test_direct_file_and_no_duplicates(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("x = 1\n")
        found = list(iter_python_files([target, tmp_path]))
        assert found == [target]


class TestFindingOrder:
    def test_findings_sort_deterministically(self, tmp_path):
        (tmp_path / "src" / "repro" / "flow").mkdir(parents=True)
        bad = tmp_path / "src" / "repro" / "flow" / "bad.py"
        bad.write_text(
            "import time\n\n"
            "def stage():\n"
            "    assert time.time()\n"
        )
        engine = LintEngine(DEFAULT_RULES)
        first, n_files = engine.lint_paths([tmp_path / "src"], root=tmp_path)
        second, _ = engine.lint_paths([tmp_path / "src"], root=tmp_path)
        assert n_files == 1
        assert first == second
        assert [f.rule_id for f in first] == ["API001", "DET001"]
        assert all(f.path == "src/repro/flow/bad.py" for f in first)
