"""Shared experiment infrastructure.

:class:`ExperimentContext` owns a :class:`~repro.flow.experiment.
TuningFlow` and derives the four clock-period operating points of the
paper's Table 1 from a minimum-period search, keeping the *ratios* of
the paper (2.41 / 2.5 / 4 / 10 ns = 1 / ~1.04 / ~1.66 / ~4.15) rather
than the absolute numbers, which belong to NXP's silicon, not our
surrogate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.flow.experiment import FlowConfig, TuningFlow


@dataclass
class ExperimentResult:
    """Structured outcome of one table/figure reproduction."""

    experiment_id: str
    title: str
    rows: List[Dict[str, Any]]
    notes: str = ""

    def to_text(self) -> str:
        """Fixed-width table rendering of the rows."""
        if not self.rows:
            return f"== {self.experiment_id}: {self.title} ==\n(no rows)"
        columns = list(self.rows[0])
        widths = {
            c: max(len(c), *(len(_fmt(row.get(c))) for row in self.rows))
            for c in columns
        }
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(c.ljust(widths[c]) for c in columns))
        for row in self.rows:
            lines.append(
                "  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns)
            )
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)

    def column(self, name: str) -> List[Any]:
        """One column across all rows."""
        return [row[name] for row in self.rows]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


class ExperimentContext:
    """A flow plus the paper-analogous clock-period operating points."""

    #: Paper Table 1 period ratios relative to the minimum (2.41 ns).
    PERIOD_RATIOS = {
        "high": 1.0,           # 2.41 ns — minimum achievable
        "check": 1.037,        # 2.5 ns — close-to-maximum check
        "medium": 1.66,        # 4 ns — relaxed
        "low": 4.15,           # 10 ns — low performance
    }

    def __init__(self, flow: Optional[TuningFlow] = None):
        self.flow = flow or TuningFlow(FlowConfig.from_environment())
        #: Fig. 9 only lists cells used more than 100 times on the 20k
        #: design; scale the cut to the configured design size.
        design_gates = 20_000 if self.is_paper_scale else 3_500
        self.usage_cut = max(10, round(100 * design_gates / 20_000))

    @property
    def is_paper_scale(self) -> bool:
        return self.flow.config.design.width >= 32

    # ------------------------------------------------------------------

    def minimum_period(self, resolution: float = 0.05) -> float:
        """Paper Sec. VII: reduce the clock until synthesis fails.

        Delegates to the flow's content-addressed ``minperiod`` stage,
        so a warm artifact store answers without a probe synthesis.
        """
        return self.flow.minimum_period(resolution)

    def standard_periods(self) -> Dict[str, float]:
        """The four Table 1 operating points for this flow's scale.

        Rounded *up* to 10 ps so the high-performance point can never
        fall below the feasible minimum through rounding.
        """
        minimum = self.minimum_period()
        return {
            name: math.ceil(minimum * ratio * 100 - 1e-9) / 100
            for name, ratio in self.PERIOD_RATIOS.items()
        }

    @property
    def high_performance_period(self) -> float:
        return self.standard_periods()["high"]

    @property
    def low_performance_period(self) -> float:
        return self.standard_periods()["low"]
