"""32-bit-class ALU generator.

Operations (3-bit opcode, LSB-first select)::

    0  ADD   a + b
    1  SUB   a - b
    2  AND   a & b
    3  OR    a | b
    4  XOR   a ^ b
    5  SHL   a << b[0:k]
    6  SHR   a >> b[0:k]
    7  PASS  b

Flags: zero (result == 0), carry (of ADD/SUB), negative (MSB).
The adder doubles as subtractor through XOR pre-conditioning of the B
operand — the standard trick, and it keeps the carry chain shared.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetlistError
from repro.netlist.builder import Bus, NetlistBuilder
from repro.netlist.generators.shifter import barrel_shifter
from repro.netlist.model import Netlist

#: Python reference semantics, used by the equivalence tests.
OPERATIONS = ("ADD", "SUB", "AND", "OR", "XOR", "SHL", "SHR", "PASS")


def reference_alu(op: int, a: int, b: int, width: int) -> int:
    """Bit-true Python model of the ALU result."""
    mask = (1 << width) - 1
    shift = b & (width - 1)
    results = {
        0: a + b,
        1: a - b,
        2: a & b,
        3: a | b,
        4: a ^ b,
        5: a << shift,
        6: a >> shift,
        7: b,
    }
    return results[op] & mask


@dataclass
class AluPorts:
    """Nets of an emitted ALU."""

    result: Bus
    zero: str
    carry: str
    negative: str


class Alu:
    """In-builder ALU emitter (see module docstring for the opcodes)."""

    def __init__(self, builder: NetlistBuilder, width: int):
        if width < 2:
            raise NetlistError("ALU width must be >= 2")
        self.builder = builder
        self.width = width

    def emit(self, a: Bus, b: Bus, op: Bus) -> AluPorts:
        """Emit the ALU for operands ``a``/``b`` and 3-bit opcode."""
        builder = self.builder
        if len(a) != self.width or len(b) != self.width:
            raise NetlistError("ALU operand width mismatch")
        if len(op) != 3:
            raise NetlistError("ALU opcode must be 3 bits")
        with builder.scope(builder.fresh("alu")):
            is_sub = builder.and_(op[0], builder.inv(op[1]))  # op == 1
            b_adder = [builder.xor(bit, is_sub) for bit in b]
            add_res, carry = builder.ripple_adder(a, b_adder, carry_in=is_sub)

            and_res = builder.and_word(a, b)
            or_res = builder.or_word(a, b)
            xor_res = builder.xor_word(a, b)

            shift_bits = max(1, (self.width - 1).bit_length())
            amount = b[:shift_bits]
            shl_res = barrel_shifter(builder, a, amount, left=True)
            shr_res = barrel_shifter(builder, a, amount, left=False)

            # 8:1 word mux on (op0, op1, op2); ADD/SUB share the adder.
            lo = builder.mux4_word([add_res, add_res, and_res, or_res], op[0], op[1])
            hi = builder.mux4_word([xor_res, shl_res, shr_res, b], op[0], op[1])
            result = builder.mux_word(lo, hi, op[2])

            zero = builder.inv(builder.reduce_or(result))
            return AluPorts(
                result=result, zero=zero, carry=carry, negative=result[-1]
            )


def build_alu(width: int, name: str = "") -> Netlist:
    """Standalone ALU design with ports a, b, op, r, zero, carry, neg."""
    builder = NetlistBuilder(name or f"alu{width}")
    a = builder.input_bus("a", width)
    b = builder.input_bus("b", width)
    op = builder.input_bus("op", 3)
    ports = Alu(builder, width).emit(a, b, op)
    builder.output_bus("r", ports.result)
    builder.output("zero", ports.zero)
    builder.output("carry", ports.carry)
    builder.output("neg", ports.negative)
    builder.netlist.validate()
    return builder.netlist
