"""Shared benchmark fixtures.

One :class:`~repro.experiments.base.ExperimentContext` per session: the
statistical library, the minimum-period search and every synthesis run
are memoized inside it, so each bench pays only for what it adds.

Scale: benches default to the quick flow (scaled-down design, 30 MC
samples) which preserves every trend; set ``REPRO_SCALE=paper`` for the
full ~18k-gate, 50-sample setup.
"""

from __future__ import annotations

import pytest

from repro.experiments.base import ExperimentContext


@pytest.fixture(scope="session")
def context():
    return ExperimentContext()


def show(result) -> None:
    """Print an experiment's table (captured by pytest, shown with -s)."""
    print()
    print(result.to_text())
