"""Library-tuning orchestration: method + parameter -> per-pin windows.

Combines the stages of paper Sec. VI: cluster the statistical library,
extract a sigma threshold per cluster, and restrict every cell's
output-pin LUTs against its cluster's threshold.  The resulting
:class:`TuningResult` is what the synthesizer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.clusters import cluster_by_strength, cluster_individually
from repro.core.methods import TuningMethod, method_by_name
from repro.core.restriction import SlewLoadWindow, restrict_cell
from repro.core.threshold import threshold_for_cluster
from repro.errors import TuningError
from repro.liberty.model import Cell, Library

#: (cell name, output pin name) -> allowed window (None = pin unusable).
WindowMap = Dict[Tuple[str, str], Optional[SlewLoadWindow]]


@dataclass
class TuningResult:
    """Outcome of tuning a statistical library with one method/parameter."""

    method: TuningMethod
    parameter: float
    #: Extracted sigma threshold per cluster key.
    thresholds: Dict[str, float]
    #: Per-(cell, pin) slew/load windows.
    windows: WindowMap
    #: Cells whose every output pin became unusable.
    excluded_cells: List[str] = field(default_factory=list)

    def window(self, cell_name: str, pin_name: str) -> Optional[SlewLoadWindow]:
        """Window of a cell pin; raises for unknown pins."""
        try:
            return self.windows[(cell_name, pin_name)]
        except KeyError:
            raise TuningError(f"no tuning window for {cell_name}.{pin_name}") from None

    def is_cell_usable(self, cell_name: str) -> bool:
        """False when tuning removed every output pin of the cell."""
        return cell_name not in set(self.excluded_cells)

    def usable_fraction(self) -> float:
        """Fraction of output pins that kept a non-empty window."""
        if not self.windows:
            raise TuningError("tuning produced no windows")
        usable = sum(1 for window in self.windows.values() if window is not None)
        return usable / len(self.windows)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.method.name}(param={self.parameter:g}): "
            f"{len(self.thresholds)} thresholds, "
            f"{self.usable_fraction():.1%} pins usable, "
            f"{len(self.excluded_cells)} cells excluded"
        )

    def to_payload(self) -> dict:
        """JSON-serializable rendering (artifact pipeline).

        Windows are flattened to ``[cell, pin, bounds-or-null]`` rows;
        the method is stored by name and resolved from the registry on
        load, so the payload stays pure data.
        """
        return {
            "method": self.method.name,
            "parameter": self.parameter,
            "thresholds": dict(sorted(self.thresholds.items())),
            "windows": [
                [
                    cell,
                    pin,
                    None
                    if window is None
                    else [
                        window.min_slew,
                        window.max_slew,
                        window.min_load,
                        window.max_load,
                    ],
                ]
                for (cell, pin), window in sorted(self.windows.items())
            ],
            "excluded_cells": list(self.excluded_cells),
        }

    @staticmethod
    def from_payload(payload: dict) -> "TuningResult":
        """Rebuild a result stored with :meth:`to_payload`."""
        windows: WindowMap = {}
        for cell, pin, bounds in payload["windows"]:
            if bounds is None:
                windows[(cell, pin)] = None
            else:
                min_slew, max_slew, min_load, max_load = bounds
                windows[(cell, pin)] = SlewLoadWindow(
                    min_slew=float(min_slew),
                    max_slew=float(max_slew),
                    min_load=float(min_load),
                    max_load=float(max_load),
                )
        return TuningResult(
            method=method_by_name(payload["method"]),
            parameter=float(payload["parameter"]),
            thresholds={k: float(v) for k, v in payload["thresholds"].items()},
            windows=windows,
            excluded_cells=list(payload["excluded_cells"]),
        )


class LibraryTuner:
    """Tunes a statistical library (paper Sec. VI end-to-end)."""

    def __init__(self, library: Library):
        if not library.is_statistical:
            raise TuningError(
                f"library {library.name} is not statistical; build one with "
                "repro.statlib or Characterizer.statistical_library"
            )
        self.library = library

    def _clusters(self, method: TuningMethod) -> Dict[str, List[Cell]]:
        if method.clustering == "strength":
            return cluster_by_strength(self.library)
        if method.clustering == "cell":
            return cluster_individually(self.library)
        if method.clustering == "global":
            return {"global": list(self.library)}
        raise TuningError(f"unknown clustering {method.clustering!r}")

    def tune(
        self, method: Union[TuningMethod, str], parameter: float
    ) -> TuningResult:
        """Run the two-stage tuning and return the window map."""
        if isinstance(method, str):
            method = method_by_name(method)
        bounds = method.bounds(parameter)
        clusters = self._clusters(method)

        thresholds: Dict[str, float] = {}
        for key, cells in clusters.items():
            thresholds[key] = threshold_for_cluster(
                cells,
                kind=method.kind,
                load_bound=bounds["load_slope"],
                slew_bound=bounds["slew_slope"],
                sigma_ceiling=bounds["sigma_ceiling"],
            )

        windows: WindowMap = {}
        excluded: List[str] = []
        for key, cells in clusters.items():
            threshold = thresholds[key]
            for cell in cells:
                cell_windows = restrict_cell(cell, threshold)
                for pin_name, window in cell_windows.items():
                    windows[(cell.name, pin_name)] = window
                if all(window is None for window in cell_windows.values()):
                    excluded.append(cell.name)
        return TuningResult(
            method=method,
            parameter=parameter,
            thresholds=thresholds,
            windows=windows,
            excluded_cells=sorted(excluded),
        )

    def sweep(self, method: Union[TuningMethod, str]) -> Dict[float, TuningResult]:
        """Tune with every Table 2 sweep value of the method's bound."""
        if isinstance(method, str):
            method = method_by_name(method)
        return {value: self.tune(method, value) for value in method.sweep_values()}
