"""Largest-rectangle extraction (paper Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.rectangle import (
    Rectangle,
    largest_rectangle,
    largest_rectangle_paper,
)
from repro.errors import TuningError


class TestKnownCases:
    def test_all_ones(self):
        rect = largest_rectangle(np.ones((3, 4), dtype=bool))
        assert rect == Rectangle(0, 0, 2, 3)
        assert rect.area == 12

    def test_all_zeros_returns_none(self):
        assert largest_rectangle(np.zeros((3, 3), dtype=bool)) is None
        assert largest_rectangle_paper(np.zeros((3, 3), dtype=bool)) is None

    def test_single_one(self):
        matrix = np.zeros((3, 3), dtype=bool)
        matrix[1, 2] = True
        rect = largest_rectangle(matrix)
        assert rect == Rectangle(1, 2, 1, 2)
        assert rect.area == 1

    def test_l_shape_picks_larger_arm(self):
        matrix = np.array([
            [1, 1, 1, 1],
            [1, 1, 0, 0],
            [1, 1, 0, 0],
        ], dtype=bool)
        rect = largest_rectangle(matrix)
        assert rect.area == 6  # the 3x2 left block beats the 1x4 top row
        assert rect == Rectangle(0, 0, 2, 1)

    def test_origin_anchored_lut_shape(self):
        """Typical tuning shape: flat region near origin."""
        matrix = np.array([
            [1, 1, 1, 0],
            [1, 1, 1, 0],
            [1, 1, 0, 0],
            [0, 0, 0, 0],
        ], dtype=bool)
        rect = largest_rectangle(matrix)
        # ties between the 2x3 and 3x2 blocks resolve by scan order
        assert rect.area == 6
        assert rect == largest_rectangle_paper(matrix)
        assert rect.far_corner == (rect.row_hi, rect.col_hi)

    def test_tie_break_follows_paper_scan_order(self):
        # two disjoint 2x1 blocks; paper scan (ll_x outer) finds the
        # leftmost column first
        matrix = np.array([
            [1, 0, 1],
            [1, 0, 1],
        ], dtype=bool)
        rect = largest_rectangle(matrix)
        assert rect == Rectangle(0, 0, 1, 0)

    def test_contains(self):
        rect = Rectangle(1, 1, 2, 3)
        assert rect.contains(2, 2)
        assert not rect.contains(0, 1)
        assert not rect.contains(2, 4)

    def test_invalid_input_rejected(self):
        with pytest.raises(TuningError):
            largest_rectangle(np.zeros((0, 3), dtype=bool))
        with pytest.raises(TuningError):
            largest_rectangle(np.zeros(5, dtype=bool))


class TestEquivalenceProperty:
    """The optimized version must match the literal Algorithm 1 on
    every matrix — including the scan-order tie-breaking."""

    @given(
        hnp.arrays(
            dtype=bool,
            shape=st.tuples(st.integers(1, 7), st.integers(1, 7)),
        )
    )
    @settings(max_examples=300, deadline=None)
    def test_matches_paper_algorithm(self, matrix):
        assert largest_rectangle(matrix) == largest_rectangle_paper(matrix)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_matches_on_lut_like_binaries(self, seed):
        """Monotone threshold patterns, the shape tuning produces."""
        rng = np.random.default_rng(seed)
        sigma = np.add.outer(rng.random(7).cumsum(), rng.random(7).cumsum())
        matrix = sigma <= rng.uniform(sigma.min(), sigma.max())
        assert largest_rectangle(matrix) == largest_rectangle_paper(matrix)

    @given(
        hnp.arrays(dtype=bool, shape=st.tuples(st.integers(1, 6), st.integers(1, 6)))
    )
    @settings(max_examples=200, deadline=None)
    def test_result_is_all_ones_and_maximal(self, matrix):
        rect = largest_rectangle(matrix)
        if rect is None:
            assert not matrix.any()
            return
        block = matrix[rect.row_lo : rect.row_hi + 1, rect.col_lo : rect.col_hi + 1]
        assert block.all()
        # no all-ones rectangle can be strictly larger (brute force)
        best = largest_rectangle_paper(matrix)
        assert best is not None and best.area == rect.area
