"""Live operational metrics: counters, gauges and histograms.

The tracer (:mod:`repro.observe.tracer`) answers *"what happened in
that run?"* — this module answers *"what is the process doing right
now?"*.  A process-wide :class:`MetricsRegistry` holds three
instrument kinds:

* :class:`Counter` — monotonically increasing totals
  (``repro_serve_requests_total``),
* :class:`Gauge` — point-in-time levels (``repro_dispatch_pending``),
* :class:`Histogram` — distributions over fixed, deterministic
  log-spaced buckets (``repro_serve_request_seconds``), so snapshots
  from different runs and hosts are bucket-for-bucket comparable.

Every instrument supports labeled children
(``requests_total{kind="tune", outcome="warm"}``); the child for a
label combination is created on first touch and lives for the life of
the registry.  All mutation goes through one registry lock, so any
number of threads may hammer one instrument and totals stay exact.

**Process safety** reuses the tracer's discipline: worker processes
never share the parent's registry — they accumulate into their own
(fork-inherited values are re-based away by
:func:`install_worker_metrics`) and :func:`flush_worker_metrics`
appends the *growth* as one JSONL record (a single ``O_APPEND``
``os.write`` via :class:`~repro.observe.export.JsonlExporter`) to the
spool file named by :data:`METRICS_SPOOL_ENV`.  The parent's
:meth:`MetricsRegistry.snapshot` folds spool deltas in incrementally,
so counter totals across any process topology are exact, not sampled.

**Exposition** is Prometheus text format
(:func:`render_prometheus` / :func:`parse_prometheus` round-trip),
served by ``GET /metrics`` on the tuning server and consumed by the
``python -m repro metrics`` CLI and its ``--watch`` dashboard
(:mod:`repro.observe.dashboard`).

The metric *namespace* is closed: every real instrument is declared in
:mod:`repro.observe.catalog`, and the OBS001 lint rule flags
``repro_``-prefixed names created anywhere else.
"""

from __future__ import annotations

import bisect
import json
import math
import os
import re
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError, ObservabilityError
from repro.observe.export import JsonlExporter

#: Environment variable naming the worker-delta spool file.  Set by
#: the parent (``python -m repro serve`` sets a temp default) and
#: inherited by every worker process; workers append delta records,
#: the parent merges them on :meth:`MetricsRegistry.snapshot`.
METRICS_SPOOL_ENV = "REPRO_METRICS_SPOOL"

#: One sample's label values, in the family's declared label order.
LabelKey = Tuple[str, ...]

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def log_buckets(
    low_exponent: int, high_exponent: int, per_decade: int = 3
) -> Tuple[float, ...]:
    """Deterministic log-spaced bucket edges.

    Edges run from ``10**low_exponent`` to ``10**high_exponent`` with
    ``per_decade`` edges per decade.  Each edge is rounded to six
    significant digits, which removes the last-ulp ``libm`` differences
    between platforms — the whole point of *fixed* buckets is that two
    snapshots from different hosts are bucket-for-bucket comparable.
    """
    if high_exponent <= low_exponent:
        raise ConfigError(
            f"log_buckets needs high > low, got "
            f"[{low_exponent}, {high_exponent}]"
        )
    if per_decade < 1:
        raise ConfigError(f"log_buckets needs per_decade >= 1, got {per_decade}")
    edges: List[float] = []
    for step in range(
        low_exponent * per_decade, high_exponent * per_decade + 1
    ):
        edges.append(float(f"{10.0 ** (step / per_decade):.6g}"))
    return tuple(edges)


#: Default histogram buckets: 100 µs .. 100 s, 3 edges per decade —
#: wide enough for both a warm serve hit and a cold tiny-scale sweep.
DEFAULT_TIME_BUCKETS = log_buckets(-4, 2)


@dataclass(frozen=True)
class HistogramValue:
    """One histogram child's state: per-bucket counts + sum + count.

    ``counts`` has one entry per bucket edge plus a final overflow
    entry for observations above the last edge (the ``+Inf`` bucket).
    """

    counts: Tuple[int, ...]
    total: float
    count: int

    def merged(self, other: "HistogramValue") -> "HistogramValue":
        """Element-wise sum with another value over the same buckets."""
        if len(self.counts) != len(other.counts):
            raise ConfigError(
                "cannot merge histograms with different bucket counts "
                f"({len(self.counts)} vs {len(other.counts)})"
            )
        return HistogramValue(
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            total=self.total + other.total,
            count=self.count + other.count,
        )


#: What one sample holds: a scalar (counter/gauge) or a histogram.
Value = Union[float, HistogramValue]


def histogram_quantile(
    value: HistogramValue, buckets: Sequence[float], quantile: float
) -> float:
    """Conservative (upper-edge) quantile estimate from bucket counts.

    Returns the upper edge of the first bucket whose cumulative count
    reaches the nearest-rank position — the same nearest-rank
    convention :mod:`repro.serve.loadgen` uses, quantized to the bucket
    grid.  Observations in the overflow bucket report the last finite
    edge (the histogram cannot say more).
    """
    if not 0.0 < quantile <= 1.0:
        raise ConfigError(f"quantile must be in (0, 1], got {quantile}")
    if value.count <= 0:
        return 0.0
    rank = max(1, math.ceil(quantile * value.count))
    cumulative = 0
    for edge, bucket_count in zip(buckets, value.counts):
        cumulative += bucket_count
        if cumulative >= rank:
            return edge
    return buckets[-1] if buckets else 0.0


# -- snapshots ---------------------------------------------------------


@dataclass
class FamilySnapshot:
    """Immutable-enough view of one metric family at snapshot time."""

    name: str
    kind: str
    help: str
    labelnames: Tuple[str, ...] = ()
    buckets: Tuple[float, ...] = ()
    samples: Dict[LabelKey, Value] = field(default_factory=dict)

    def copy(self) -> "FamilySnapshot":
        """Shallow copy safe to merge into (values are immutable)."""
        return FamilySnapshot(
            name=self.name,
            kind=self.kind,
            help=self.help,
            labelnames=self.labelnames,
            buckets=self.buckets,
            samples=dict(self.samples),
        )


@dataclass
class MetricsSnapshot:
    """A point-in-time copy of a registry (or a merged set of them)."""

    families: Dict[str, FamilySnapshot] = field(default_factory=dict)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Fold ``other`` into this snapshot, in place.

        Counters and histograms sum (the values are deltas or totals —
        either way addition is the right fold); gauges take the last
        write, matching :func:`repro.observe.export.merge_records`.
        """
        for name, theirs in other.families.items():
            mine = self.families.get(name)
            if mine is None:
                self.families[name] = theirs.copy()
                continue
            if mine.kind != theirs.kind:
                raise ConfigError(
                    f"metric {name!r} kind mismatch merging snapshots: "
                    f"{mine.kind} vs {theirs.kind}"
                )
            for key, value in theirs.samples.items():
                existing = mine.samples.get(key)
                if existing is None or mine.kind == "gauge":
                    mine.samples[key] = value
                elif isinstance(existing, HistogramValue):
                    if not isinstance(value, HistogramValue):
                        raise ConfigError(
                            f"sample kind mismatch merging {name!r}"
                        )
                    mine.samples[key] = existing.merged(value)
                else:
                    if isinstance(value, HistogramValue):
                        raise ConfigError(
                            f"sample kind mismatch merging {name!r}"
                        )
                    mine.samples[key] = existing + value
        return self

    def value(self, name: str, **labels: str) -> Optional[Value]:
        """Look up one sample (None when absent) — tests/dashboard."""
        family = self.families.get(name)
        if family is None:
            return None
        key = tuple(str(labels[ln]) for ln in family.labelnames if ln in labels)
        if len(key) != len(family.labelnames):
            return None
        return family.samples.get(key)

    def counter_totals(self) -> Dict[str, float]:
        """Flatten counter samples to ``name{label="v"}`` -> total.

        The shape the run ledger stores: one flat string key per
        sample, directly comparable across records.
        """
        totals: Dict[str, float] = {}
        for name in sorted(self.families):
            family = self.families[name]
            if family.kind != "counter":
                continue
            for key in sorted(family.samples):
                value = family.samples[key]
                if isinstance(value, HistogramValue):  # pragma: no cover
                    continue
                totals[_sample_name(name, family.labelnames, key)] = value
        return totals

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe form (spool records, ``metrics --format json``)."""
        families: Dict[str, Any] = {}
        for name in sorted(self.families):
            family = self.families[name]
            samples: List[Dict[str, Any]] = []
            for key in sorted(family.samples):
                value = family.samples[key]
                entry: Dict[str, Any] = {"labels": list(key)}
                if isinstance(value, HistogramValue):
                    entry["counts"] = list(value.counts)
                    entry["sum"] = value.total
                    entry["count"] = value.count
                else:
                    entry["value"] = value
                samples.append(entry)
            families[name] = {
                "kind": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "buckets": list(family.buckets),
                "samples": samples,
            }
        return {"families": families}

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "MetricsSnapshot":
        """Inverse of :meth:`to_payload`; tolerant of missing fields."""
        snapshot = cls()
        families = payload.get("families")
        if not isinstance(families, dict):
            return snapshot
        for name, raw in families.items():
            if not isinstance(raw, dict):
                continue
            family = FamilySnapshot(
                name=str(name),
                kind=str(raw.get("kind", "untyped")),
                help=str(raw.get("help", "")),
                labelnames=tuple(
                    str(ln) for ln in raw.get("labelnames", ())
                ),
                buckets=tuple(float(b) for b in raw.get("buckets", ())),
            )
            for entry in raw.get("samples", ()):
                if not isinstance(entry, dict):
                    continue
                key = tuple(str(v) for v in entry.get("labels", ()))
                if "counts" in entry:
                    family.samples[key] = HistogramValue(
                        counts=tuple(int(c) for c in entry["counts"]),
                        total=float(entry.get("sum", 0.0)),
                        count=int(entry.get("count", 0)),
                    )
                else:
                    family.samples[key] = float(entry.get("value", 0.0))
            snapshot.families[name] = family
        return snapshot


# -- instruments -------------------------------------------------------


class CounterChild:
    """One labeled counter sample; mutation under the registry lock."""

    __slots__ = ("_family", "value", "_flushed")

    def __init__(self, family: "Counter"):
        self._family = family
        self.value = 0.0
        self._flushed = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (>= 0; counters are monotonic)."""
        if amount < 0:
            raise ConfigError(
                f"counter {self._family.name!r} can only increase "
                f"(got {amount})"
            )
        registry = self._family.registry
        if not registry.enabled:
            return
        with registry.lock:
            self.value += amount


class GaugeChild:
    """One labeled gauge sample."""

    __slots__ = ("_family", "value")

    def __init__(self, family: "Gauge"):
        self._family = family
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the current level."""
        registry = self._family.registry
        if not registry.enabled:
            return
        with registry.lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the level upward."""
        registry = self._family.registry
        if not registry.enabled:
            return
        with registry.lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Adjust the level downward."""
        self.inc(-amount)


class HistogramChild:
    """One labeled histogram sample over the family's fixed buckets."""

    __slots__ = ("_family", "counts", "total", "count", "_flushed")

    def __init__(self, family: "Histogram"):
        self._family = family
        self.counts = [0] * (len(family.buckets) + 1)
        self.total = 0.0
        self.count = 0
        self._flushed: Tuple[Tuple[int, ...], float, int] = (
            tuple(self.counts), 0.0, 0,
        )

    def observe(self, value: float) -> None:
        """Record one observation (``value <= edge`` lands in edge)."""
        registry = self._family.registry
        if not registry.enabled:
            return
        index = bisect.bisect_left(self._family.buckets, value)
        with registry.lock:
            self.counts[index] += 1
            self.total += value
            self.count += 1


class _Family:
    """Shared family machinery: label resolution + child bookkeeping."""

    kind = "untyped"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help_text: str,
        labelnames: Sequence[str],
    ):
        if not _METRIC_NAME_RE.match(name):
            raise ConfigError(f"invalid metric name {name!r}")
        for labelname in labelnames:
            if not _LABEL_NAME_RE.match(labelname) or labelname == "le":
                raise ConfigError(
                    f"invalid label name {labelname!r} on metric {name!r}"
                )
        self.registry = registry
        self.name = name
        self.help = help_text
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._children: Dict[LabelKey, Any] = {}
        if not self.labelnames:
            self._resolve(())

    def _make_child(self) -> Any:
        raise NotImplementedError

    def _resolve(self, key: LabelKey) -> Any:
        with self.registry.lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def _label_key(
        self, values: Tuple[Any, ...], labels: Dict[str, Any]
    ) -> LabelKey:
        if values and labels:
            raise ConfigError(
                f"metric {self.name!r}: pass label values positionally "
                "or by keyword, not both"
            )
        if not self.labelnames:
            raise ConfigError(f"metric {self.name!r} has no labels")
        if labels:
            if set(labels) != set(self.labelnames):
                raise ConfigError(
                    f"metric {self.name!r} expects labels "
                    f"{list(self.labelnames)}, got {sorted(labels)}"
                )
            return tuple(str(labels[ln]) for ln in self.labelnames)
        if len(values) != len(self.labelnames):
            raise ConfigError(
                f"metric {self.name!r} expects {len(self.labelnames)} "
                f"label value(s), got {len(values)}"
            )
        return tuple(str(v) for v in values)

    def _unlabeled(self) -> Any:
        if self.labelnames:
            raise ConfigError(
                f"metric {self.name!r} is labeled; call .labels(...) first"
            )
        return self._resolve(())


class Counter(_Family):
    """A monotonically increasing total, optionally labeled."""

    kind = "counter"

    def _make_child(self) -> CounterChild:
        return CounterChild(self)

    def labels(self, *values: Any, **labels: Any) -> CounterChild:
        """The child for one label combination (created on first use)."""
        child = self._resolve(self._label_key(values, labels))
        return child  # type: ignore[no-any-return]

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabeled sample."""
        self._unlabeled().inc(amount)


class Gauge(_Family):
    """A level that can move both ways, optionally labeled."""

    kind = "gauge"

    def _make_child(self) -> GaugeChild:
        return GaugeChild(self)

    def labels(self, *values: Any, **labels: Any) -> GaugeChild:
        """The child for one label combination (created on first use)."""
        child = self._resolve(self._label_key(values, labels))
        return child  # type: ignore[no-any-return]

    def set(self, value: float) -> None:
        """Set the unlabeled sample."""
        self._unlabeled().set(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the unlabeled sample upward."""
        self._unlabeled().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Adjust the unlabeled sample downward."""
        self._unlabeled().dec(amount)


class Histogram(_Family):
    """A distribution over fixed bucket edges, optionally labeled."""

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ):
        edges = tuple(float(edge) for edge in buckets)
        if not edges or any(
            b <= a for a, b in zip(edges, edges[1:])
        ):
            raise ConfigError(
                f"histogram {name!r} needs strictly increasing buckets"
            )
        self.buckets = edges
        super().__init__(registry, name, help_text, labelnames)

    def _make_child(self) -> HistogramChild:
        return HistogramChild(self)

    def labels(self, *values: Any, **labels: Any) -> HistogramChild:
        """The child for one label combination (created on first use)."""
        child = self._resolve(self._label_key(values, labels))
        return child  # type: ignore[no-any-return]

    def observe(self, value: float) -> None:
        """Record one observation on the unlabeled sample."""
        self._unlabeled().observe(value)


# -- the registry ------------------------------------------------------


class MetricsRegistry:
    """A process-wide family of instruments with exact totals.

    Registration is idempotent: asking for an existing name with the
    same kind/labels/buckets returns the existing family (the catalog
    module and a worker re-import resolve to the same instruments);
    any mismatch raises :class:`~repro.errors.ConfigError` — a typo'd
    redefinition must fail loudly, not fork the time series.
    """

    def __init__(self) -> None:
        self.lock = threading.RLock()
        self.enabled = True
        self._families: Dict[str, _Family] = {}
        self._pid = os.getpid()
        #: Incremental spool-merge state: bytes consumed per path, and
        #: the accumulated worker deltas folded so far.
        self._spool_offsets: Dict[str, int] = {}
        self._spool_acc: Dict[str, MetricsSnapshot] = {}

    # -- registration --------------------------------------------------

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        """Register (or fetch) a counter family."""
        family = self._register(Counter, name, help_text, labelnames)
        return family  # type: ignore[return-value]

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        """Register (or fetch) a gauge family."""
        family = self._register(Gauge, name, help_text, labelnames)
        return family  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        """Register (or fetch) a histogram family over fixed buckets."""
        family = self._register(
            Histogram, name, help_text, labelnames, buckets=buckets
        )
        return family  # type: ignore[return-value]

    def _register(
        self,
        cls: type,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> _Family:
        with self.lock:
            existing = self._families.get(name)
            if existing is not None:
                mismatch = (
                    type(existing) is not cls
                    or existing.labelnames != tuple(labelnames)
                    or (
                        isinstance(existing, Histogram)
                        and buckets is not None
                        and existing.buckets
                        != tuple(float(b) for b in buckets)
                    )
                )
                if mismatch:
                    raise ConfigError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels "
                        f"{list(existing.labelnames)}"
                    )
                return existing
            if cls is Histogram:
                family: _Family = Histogram(
                    self, name, help_text, labelnames,
                    DEFAULT_TIME_BUCKETS if buckets is None else buckets,
                )
            else:
                family = cls(self, name, help_text, labelnames)
            self._families[name] = family
            return family

    # -- snapshots -----------------------------------------------------

    def snapshot(self, include_spool: bool = True) -> MetricsSnapshot:
        """Copy out every family; optionally fold in worker deltas.

        With ``include_spool`` (the default) the spool file named by
        :data:`METRICS_SPOOL_ENV` is read incrementally — only bytes
        appended since the last snapshot are parsed, and only complete
        (newline-terminated) lines are consumed, so a worker writing
        concurrently can never tear a record.
        """
        with self.lock:
            snapshot = MetricsSnapshot()
            for name, family in self._families.items():
                family_snapshot = FamilySnapshot(
                    name=name,
                    kind=family.kind,
                    help=family.help,
                    labelnames=family.labelnames,
                    buckets=getattr(family, "buckets", ()),
                )
                for key, child in family._children.items():
                    if isinstance(child, HistogramChild):
                        family_snapshot.samples[key] = HistogramValue(
                            counts=tuple(child.counts),
                            total=child.total,
                            count=child.count,
                        )
                    else:
                        family_snapshot.samples[key] = child.value
                snapshot.families[name] = family_snapshot
            if include_spool:
                spooled = self._collect_spool()
                if spooled is not None:
                    snapshot.merge(spooled)
        return snapshot

    def _collect_spool(self) -> Optional[MetricsSnapshot]:
        """Fold newly appended spool records into the accumulator."""
        path = os.environ.get(METRICS_SPOOL_ENV)
        if not path:
            return None
        try:
            size = os.path.getsize(path)
        except OSError:
            return None
        offset = self._spool_offsets.get(path, 0)
        accumulated = self._spool_acc.get(path)
        if accumulated is None or size < offset:
            # A fresh or recycled (truncated) spool: start over.
            accumulated = MetricsSnapshot()
            self._spool_acc = {path: accumulated}
            self._spool_offsets = {path: 0}
            offset = 0
        if size > offset:
            with open(path, "rb") as handle:
                handle.seek(offset)
                chunk = handle.read(size - offset)
            complete = chunk.rfind(b"\n")
            if complete >= 0:
                for line in chunk[: complete + 1].splitlines():
                    record = _parse_spool_line(line)
                    if record is not None:
                        accumulated.merge(record)
                self._spool_offsets[path] = offset + complete + 1
        return accumulated

    # -- worker-delta export -------------------------------------------

    def flush_deltas(self, sink: Any) -> bool:
        """Write growth since the last flush as one spool record.

        Gauges are skipped — a worker's level has no meaning in the
        parent.  Returns whether anything was written.
        """
        with self.lock:
            families: Dict[str, Any] = {}
            for name, family in self._families.items():
                if family.kind == "gauge":
                    continue
                samples: List[Dict[str, Any]] = []
                for key, child in family._children.items():
                    entry = _take_delta(child)
                    if entry is not None:
                        entry["labels"] = list(key)
                        samples.append(entry)
                if samples:
                    families[name] = {
                        "kind": family.kind,
                        "help": family.help,
                        "labelnames": list(family.labelnames),
                        "buckets": list(getattr(family, "buckets", ())),
                        "samples": samples,
                    }
        if not families:
            return False
        sink.write(
            {"type": "metrics", "pid": os.getpid(), "families": families}
        )
        return True

    def rebase(self) -> None:
        """Mark current values as already-flushed (and adopt this pid).

        The fork-safety hinge: a forked worker inherits the parent's
        totals, and without re-basing it would flush the parent's whole
        history as its own delta — double counting everything.
        """
        with self.lock:
            self._pid = os.getpid()
            self._spool_offsets = {}
            self._spool_acc = {}
            for family in self._families.values():
                for child in family._children.values():
                    if isinstance(child, CounterChild):
                        child._flushed = child.value
                    elif isinstance(child, HistogramChild):
                        child._flushed = (
                            tuple(child.counts), child.total, child.count,
                        )

    def reset(self) -> None:
        """Zero every sample and forget spool progress (test isolation).

        Families survive (catalog instruments stay bound); only their
        children are dropped, so the next touch starts from zero.
        """
        with self.lock:
            self._spool_offsets = {}
            self._spool_acc = {}
            for family in self._families.values():
                family._children.clear()
                if not family.labelnames:
                    family._resolve(())


def _take_delta(child: Any) -> Optional[Dict[str, Any]]:
    """Growth since the last flush, updating the baseline (or None)."""
    if isinstance(child, CounterChild):
        delta = child.value - child._flushed
        if delta <= 0:
            return None
        child._flushed = child.value
        return {"value": delta}
    if isinstance(child, HistogramChild):
        counts_base, total_base, count_base = child._flushed
        if child.count <= count_base:
            return None
        entry = {
            "counts": [
                now - base for now, base in zip(child.counts, counts_base)
            ],
            "sum": child.total - total_base,
            "count": child.count - count_base,
        }
        child._flushed = (tuple(child.counts), child.total, child.count)
        return entry
    return None


def _parse_spool_line(line: bytes) -> Optional[MetricsSnapshot]:
    """One spool record -> snapshot delta (None for noise lines)."""
    line = line.strip()
    if not line:
        return None
    try:
        record = json.loads(line)
    except ValueError:
        return None
    if not isinstance(record, dict) or record.get("type") != "metrics":
        return None
    return MetricsSnapshot.from_payload(record)


# -- process-global plumbing -------------------------------------------

_REGISTRY = MetricsRegistry()
_SPOOL_SINKS: Dict[str, JsonlExporter] = {}


def get_metrics() -> MetricsRegistry:
    """The process-wide registry every catalog instrument binds to."""
    return _REGISTRY


def set_metrics_enabled(enabled: bool) -> bool:
    """Toggle collection globally; returns the previous setting.

    Disabled instruments no-op on the hot path (one attribute read),
    which is what the ``REPRO_METRICS=off`` knob and the overhead
    benchmark toggle.
    """
    registry = get_metrics()
    previous = registry.enabled
    registry.enabled = bool(enabled)
    return previous


def install_worker_metrics() -> MetricsRegistry:
    """Prepare the registry inside a worker process.

    Under ``fork`` the worker inherits the parent's totals; re-base so
    only *this process's* growth is ever flushed.  Under ``spawn`` the
    fresh import already starts from zero and this is a no-op.  Safe to
    call once per task — after the first call the pid matches.
    """
    registry = get_metrics()
    if registry._pid != os.getpid():
        registry.rebase()
    return registry


def flush_worker_metrics() -> bool:
    """Append this worker's growth to the spool (one O_APPEND write).

    No-op without :data:`METRICS_SPOOL_ENV` in the environment or with
    collection disabled.  The exporter is memoized per path so a worker
    reused across tasks keeps one file descriptor.
    """
    path = os.environ.get(METRICS_SPOOL_ENV)
    if not path:
        return False
    registry = get_metrics()
    if not registry.enabled:
        return False
    sink = _SPOOL_SINKS.get(path)
    if sink is None:
        sink = JsonlExporter(path)
        _SPOOL_SINKS[path] = sink
    return registry.flush_deltas(sink)


# -- Prometheus text exposition ----------------------------------------


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape(text: str) -> str:
    out: List[str] = []
    index = 0
    while index < len(text):
        char = text[index]
        if char == "\\" and index + 1 < len(text):
            follower = text[index + 1]
            if follower == "n":
                out.append("\n")
            elif follower in ('"', "\\"):
                out.append(follower)
            else:
                out.append(char)
                out.append(follower)
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _sample_name(
    name: str, labelnames: Sequence[str], key: Sequence[str]
) -> str:
    if not labelnames:
        return name
    rendered = ",".join(
        f'{ln}="{_escape_label(value)}"'
        for ln, value in zip(labelnames, key)
    )
    return f"{name}{{{rendered}}}"


def _sample_line(
    name: str, labelnames: Sequence[str], key: Sequence[str], value: float
) -> str:
    return f"{_sample_name(name, labelnames, key)} {_format_value(value)}"


def render_prometheus(snapshot: MetricsSnapshot) -> str:
    """Prometheus text exposition format (0.0.4) of a snapshot.

    Families sort by name and samples by label values, so the output
    is byte-deterministic — what the golden-file test and the CI
    ``grep`` assertions rely on.  Histogram ``_bucket`` lines carry
    *cumulative* counts with a closing ``le="+Inf"``, per the format.
    """
    lines: List[str] = []
    for name in sorted(snapshot.families):
        family = snapshot.families[name]
        lines.append(f"# HELP {name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {name} {family.kind}")
        for key in sorted(family.samples):
            value = family.samples[key]
            if isinstance(value, HistogramValue):
                cumulative = 0
                for edge, bucket_count in zip(family.buckets, value.counts):
                    cumulative += bucket_count
                    lines.append(
                        _sample_line(
                            name + "_bucket",
                            tuple(family.labelnames) + ("le",),
                            tuple(key) + (_format_value(edge),),
                            cumulative,
                        )
                    )
                lines.append(
                    _sample_line(
                        name + "_bucket",
                        tuple(family.labelnames) + ("le",),
                        tuple(key) + ("+Inf",),
                        value.count,
                    )
                )
                lines.append(
                    _sample_line(
                        name + "_sum", family.labelnames, key, value.total
                    )
                )
                lines.append(
                    _sample_line(
                        name + "_count", family.labelnames, key, value.count
                    )
                )
            else:
                lines.append(_sample_line(name, family.labelnames, key, value))
    return "\n".join(lines) + "\n" if lines else ""


_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$"
)
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)


def parse_prometheus(text: str) -> MetricsSnapshot:
    """Parse exposition text back into a snapshot.

    The inverse of :func:`render_prometheus` for everything this
    module emits (the round-trip is tested); unknown or malformed
    lines are skipped rather than failing the read, matching
    :func:`~repro.observe.export.load_trace`'s tolerance.
    """
    kinds: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    scalars: List[Tuple[str, Tuple[Tuple[str, str], ...], float]] = []
    histogram_parts: Dict[
        str,
        Dict[Tuple[Tuple[str, str], ...], Dict[str, Any]],
    ] = {}
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            name, _, help_text = line[len("# HELP "):].partition(" ")
            helps[name] = _unescape(help_text)
            continue
        if line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            kinds[name] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            continue
        sample_name, label_text, value_text = match.groups()
        try:
            value = float(value_text)
        except ValueError:
            continue
        pairs = tuple(
            (ln, _unescape(lv))
            for ln, lv in _LABEL_PAIR_RE.findall(label_text or "")
        )
        base = _histogram_base(sample_name, kinds)
        if base is not None:
            key = tuple(p for p in pairs if p[0] != "le")
            part = histogram_parts.setdefault(base, {}).setdefault(
                key, {"cumulative": [], "sum": 0.0, "count": 0}
            )
            if sample_name.endswith("_bucket"):
                le_values = [p[1] for p in pairs if p[0] == "le"]
                if le_values:
                    edge = (
                        math.inf
                        if le_values[0] == "+Inf"
                        else float(le_values[0])
                    )
                    part["cumulative"].append((edge, int(value)))
            elif sample_name.endswith("_sum"):
                part["sum"] = value
            else:
                part["count"] = int(value)
        else:
            scalars.append((sample_name, pairs, value))

    snapshot = MetricsSnapshot()
    for name, kind in kinds.items():
        if kind != "histogram":
            snapshot.families[name] = FamilySnapshot(
                name=name, kind=kind, help=helps.get(name, "")
            )
    for sample_name, pairs, value in scalars:
        family = snapshot.families.get(sample_name)
        if family is None:
            family = FamilySnapshot(
                name=sample_name,
                kind=kinds.get(sample_name, "untyped"),
                help=helps.get(sample_name, ""),
            )
            snapshot.families[sample_name] = family
        if pairs and not family.labelnames:
            family.labelnames = tuple(ln for ln, _ in pairs)
        family.samples[tuple(lv for _, lv in pairs)] = value
    for base, children in histogram_parts.items():
        family = FamilySnapshot(
            name=base, kind="histogram", help=helps.get(base, "")
        )
        for key, part in children.items():
            ordered = sorted(part["cumulative"], key=lambda item: item[0])
            finite = [(e, c) for e, c in ordered if e != math.inf]
            if not family.buckets:
                family.buckets = tuple(edge for edge, _ in finite)
            counts: List[int] = []
            previous = 0
            for _, cumulative_count in finite:
                counts.append(cumulative_count - previous)
                previous = cumulative_count
            total_count = int(part["count"])
            counts.append(max(0, total_count - previous))
            if key and not family.labelnames:
                family.labelnames = tuple(ln for ln, _ in key)
            family.samples[tuple(lv for _, lv in key)] = HistogramValue(
                counts=tuple(counts),
                total=float(part["sum"]),
                count=total_count,
            )
        snapshot.families[base] = family
    return snapshot


def _histogram_base(
    sample_name: str, kinds: Dict[str, str]
) -> Optional[str]:
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if kinds.get(base) == "histogram":
                return base
    return None


# -- snapshot files ----------------------------------------------------


def load_metrics(paths: Iterable[Union[str, Path]]) -> MetricsSnapshot:
    """Fold on-disk metric records into one snapshot.

    Accepts both spool files (one ``{"type": "metrics", ...}`` delta
    record per line) and saved ``metrics --format json`` snapshots (a
    single, possibly pretty-printed ``{"families": ...}`` document).
    Noise lines in a spool skip, but a file that yields no metric
    record at all raises :class:`~repro.errors.ObservabilityError` —
    a wrong path or a truncated snapshot must not render as an empty
    dashboard.
    """
    snapshot = MetricsSnapshot()
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        try:
            document = json.loads(text)
        except ValueError:
            document = None
        if isinstance(document, dict) and "families" in document:
            snapshot.merge(MetricsSnapshot.from_payload(document))
            continue
        merged_any = False
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if not isinstance(record, dict):
                continue
            if record.get("type") == "metrics" or "families" in record:
                snapshot.merge(MetricsSnapshot.from_payload(record))
                merged_any = True
        if not merged_any:
            raise ObservabilityError(
                f"no metric records in {path} (expected a spool JSONL "
                "or a 'metrics --format json' snapshot)"
            )
    return snapshot
