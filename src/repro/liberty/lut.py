"""Bilinear interpolation over NLDM look-up tables (paper Sec. V.A).

The paper interpolates along the load axis first (eqs. 2-3) and then
along the slew axis (eq. 4).  Bilinear interpolation is symmetric in
the order of axes, so the implementation below follows numpy's
broadcasting-friendly formulation; :func:`bilinear_interpolate_paper`
implements the equations literally and the test-suite checks the two
agree to machine precision.

Out-of-range queries are *clamped* to the table edges, the conservative
convention used by synthesis/STA tools when a cell is (illegally)
operated outside its characterized range.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.liberty.model import Lut


def _bracket(axis: np.ndarray, value: float) -> Tuple[int, int, float]:
    """Return (lo, hi, t) so that ``axis[lo] .. axis[hi]`` brackets value.

    ``t`` is the interpolation fraction in [0, 1]; values outside the
    axis are clamped to the first/last segment endpoint (t=0 or t=1).
    """
    n = axis.size
    if value <= axis[0]:
        return 0, 1, 0.0
    if value >= axis[-1]:
        return n - 2, n - 1, 1.0
    hi = int(np.searchsorted(axis, value, side="left"))
    lo = hi - 1
    t = (value - axis[lo]) / (axis[hi] - axis[lo])
    return lo, hi, float(t)


def bilinear_interpolate(lut: Lut, slew: float, load: float) -> float:
    """Interpolate ``lut`` at (slew, load) with edge clamping.

    Parameters
    ----------
    lut:
        Table with ``index_1`` = input slew (ns) and ``index_2`` =
        output load (pF).
    slew, load:
        Query point.  Points outside the characterized grid are clamped
        to the grid boundary.
    """
    i0, i1, ts = _bracket(lut.index_1, float(slew))
    j0, j1, tl = _bracket(lut.index_2, float(load))
    v = lut.values
    top = v[i0, j0] * (1.0 - tl) + v[i0, j1] * tl
    bot = v[i1, j0] * (1.0 - tl) + v[i1, j1] * tl
    return float(top * (1.0 - ts) + bot * ts)


def bilinear_interpolate_paper(lut: Lut, slew: float, load: float) -> float:
    """Literal transcription of paper eqs. (2)-(4).

    With Q11 = Q(L_i, S_j), Q21 = Q(L_{i+1}, S_j), Q12 = Q(L_i, S_{j+1})
    and Q22 = Q(L_{i+1}, S_{j+1})::

        P1 = (L_{i+1} - L)/(L_{i+1} - L_i) * Q11 + (L - L_i)/(L_{i+1} - L_i) * Q21
        P2 = (L_{i+1} - L)/(L_{i+1} - L_i) * Q12 + (L - L_i)/(L_{i+1} - L_i) * Q22
        X  = (S_{j+1} - S)/(S_{j+1} - S_j) * P1  + (S - S_j)/(S_{j+1} - S_j) * P2

    Present for documentation and cross-validation; callers should use
    :func:`bilinear_interpolate`, which is equivalent and clamps.
    """
    slew_axis, load_axis = lut.index_1, lut.index_2
    slew = float(min(max(slew, slew_axis[0]), slew_axis[-1]))
    load = float(min(max(load, load_axis[0]), load_axis[-1]))
    i0, i1, _ = _bracket(load_axis, load)
    j0, j1, _ = _bracket(slew_axis, slew)
    l_lo, l_hi = load_axis[i0], load_axis[i1]
    s_lo, s_hi = slew_axis[j0], slew_axis[j1]
    q11 = lut.values[j0, i0]
    q21 = lut.values[j0, i1]
    q12 = lut.values[j1, i0]
    q22 = lut.values[j1, i1]
    wl = (l_hi - load) / (l_hi - l_lo)
    p1 = wl * q11 + (1.0 - wl) * q21
    p2 = wl * q12 + (1.0 - wl) * q22
    ws = (s_hi - slew) / (s_hi - s_lo)
    return float(ws * p1 + (1.0 - ws) * p2)


def bilinear_interpolate_many(lut: Lut, slews: np.ndarray, loads: np.ndarray) -> np.ndarray:
    """Vectorized bilinear interpolation for arrays of query points.

    ``slews`` and ``loads`` must be broadcast-compatible; the result has
    their broadcast shape.  Used by the STA engine, which evaluates one
    table for many instances at once.
    """
    slews = np.asarray(slews, dtype=float)
    loads = np.asarray(loads, dtype=float)
    s_axis, l_axis = lut.index_1, lut.index_2
    s = np.clip(slews, s_axis[0], s_axis[-1])
    load = np.clip(loads, l_axis[0], l_axis[-1])

    si = np.clip(np.searchsorted(s_axis, s, side="left"), 1, s_axis.size - 1)
    li = np.clip(np.searchsorted(l_axis, load, side="left"), 1, l_axis.size - 1)
    s0, s1 = s_axis[si - 1], s_axis[si]
    l0, l1 = l_axis[li - 1], l_axis[li]
    ts = (s - s0) / (s1 - s0)
    tl = (load - l0) / (l1 - l0)

    v = lut.values
    q00 = v[si - 1, li - 1]
    q01 = v[si - 1, li]
    q10 = v[si, li - 1]
    q11 = v[si, li]
    top = q00 * (1.0 - tl) + q01 * tl
    bot = q10 * (1.0 - tl) + q11 * tl
    return top * (1.0 - ts) + bot * ts
