"""Synthesis substrate: timing-driven mapping under slew/load windows.

The synthesizer stands in for the commercial tool of the paper's flow.
Its contract matches what the experiments need:

* bind every netlist instance to a drive-strength variant of its cell
  family;
* meet a clock constraint (minus the 300 ps guard band) by upsizing
  cells on violating paths and splitting heavy fanouts with inverter
  pairs;
* honor per-output-pin slew/load windows from library tuning
  (:class:`~repro.core.restriction.SlewLoadWindow`) as hard legality
  constraints — the mechanism by which tuning changes cell selection;
* recover area where slack allows.
"""

from repro.synth.constraints import SynthesisConstraints
from repro.synth.mapping import CellChoices, initial_mapping
from repro.synth.synthesizer import SynthesisResult, Synthesizer, synthesize

__all__ = [
    "SynthesisConstraints",
    "CellChoices",
    "initial_mapping",
    "SynthesisResult",
    "Synthesizer",
    "synthesize",
]
