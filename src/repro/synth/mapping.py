"""Cell-variant choices and initial technology mapping.

The netlist generators emit *family* instances; mapping binds each to a
concrete drive-strength variant present in the library.  Under library
tuning, variants whose output-pin windows were emptied are unusable —
the fine-grained analog of removing cells from the library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cells.naming import parse_cell_name
from repro.errors import SynthesisError
from repro.liberty.model import Library
from repro.netlist.model import Netlist
from repro.synth.constraints import SynthesisConstraints


@dataclass(frozen=True)
class Variant:
    """One usable drive-strength variant of a family."""

    cell_name: str
    strength: float
    #: Effective maximum load: min over output pins of window max_load
    #: (when tuned) and the cell's own max_capacitance.
    max_load: float
    #: Effective maximum input slew (min over windows; inf untuned).
    max_slew: float
    area: float


class CellChoices:
    """Usable variants per family, sorted by drive strength."""

    def __init__(self, library: Library, constraints: SynthesisConstraints):
        self.library = library
        self.constraints = constraints
        self._variants: Dict[str, List[Variant]] = {}
        for cell in library:
            name = parse_cell_name(cell.name)
            family = name.family
            output_pins = tuple(p.name for p in cell.output_pins())
            if not constraints.is_cell_usable(cell.name, output_pins):
                continue
            max_load = min(p.max_capacitance for p in cell.output_pins())
            max_slew = float("inf")
            for pin in cell.output_pins():
                window = constraints.window_for(cell.name, pin.name)
                if window is not None:
                    max_load = min(max_load, window.max_load)
                    max_slew = min(max_slew, window.max_slew)
            self._variants.setdefault(family, []).append(
                Variant(
                    cell_name=cell.name,
                    strength=name.strength,
                    max_load=max_load,
                    max_slew=max_slew,
                    area=cell.area,
                )
            )
        for variants in self._variants.values():
            variants.sort(key=lambda v: v.strength)
        self._by_name: Dict[str, Tuple[str, int, Variant]] = {}
        for family, variants in self._variants.items():
            for position, variant in enumerate(variants):
                self._by_name[variant.cell_name] = (family, position, variant)

    def variants(self, family: str) -> List[Variant]:
        """Usable variants of a family (ascending strength)."""
        try:
            variants = self._variants[family]
        except KeyError:
            raise SynthesisError(
                f"tuning left no usable variant of family {family!r}; "
                "the restriction is too tight to synthesize this design"
            ) from None
        return variants

    def families(self) -> List[str]:
        """Families with at least one usable variant."""
        return sorted(self._variants)

    def variant_of(self, cell_name: str) -> Variant:
        """The variant record of a bound cell name."""
        try:
            return self._by_name[cell_name][2]
        except KeyError:
            raise SynthesisError(
                f"cell {cell_name} is not usable under the constraints"
            ) from None

    def next_up(self, cell_name: str) -> Optional[Variant]:
        """The next stronger usable variant, or None at the top."""
        family, position, _variant = self._lookup(cell_name)
        variants = self._variants[family]
        return variants[position + 1] if position + 1 < len(variants) else None

    def next_down(self, cell_name: str) -> Optional[Variant]:
        """The next weaker usable variant, or None at the bottom."""
        family, position, _variant = self._lookup(cell_name)
        return self._variants[family][position - 1] if position > 0 else None

    def _lookup(self, cell_name: str) -> Tuple[str, int, Variant]:
        try:
            return self._by_name[cell_name]
        except KeyError:
            raise SynthesisError(
                f"cell {cell_name} is not usable under the constraints"
            ) from None

    def smallest(self, family: str) -> Variant:
        """Weakest usable variant of a family."""
        return self.variants(family)[0]

    def largest(self, family: str) -> Variant:
        """Strongest usable variant of a family."""
        return self.variants(family)[-1]

    def smallest_for_load(
        self, family: str, load: float, actual_load: Optional[float] = None
    ) -> Variant:
        """Weakest variant legally driving ``load``.

        ``load`` may include utilization headroom; when nothing covers
        it, the fallback first tries the *actual* load (legal but with
        no headroom) and only then the strongest variant (buffering
        will follow) — keeping a headroom request from cascading the
        whole fanin cone to maximum strength.
        """
        for variant in self.variants(family):
            if variant.max_load >= load:
                return variant
        if actual_load is not None and actual_load < load:
            for variant in self.variants(family):
                if variant.max_load >= actual_load:
                    return variant
        return self.largest(family)


def initial_mapping(netlist: Netlist, choices: CellChoices) -> None:
    """Bind every instance to its family's weakest usable variant.

    The sizing loop only ever upsizes from here, mirroring the
    area-first starting point of a synthesis tool.
    """
    for instance in netlist:
        instance.cell = choices.smallest(instance.family).cell_name
