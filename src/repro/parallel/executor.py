"""Backend fan-out for Monte-Carlo characterization.

Sharding strategy: cells are split into contiguous chunks (a few per
worker for load balance — drive strengths, and with them LUT sizes and
arc counts, vary across the catalog), and for per-sample libraries the
sample axis is additionally split into blocks, so one task is a
(cell chunk, sample block) tile.  The tiles are dispatched through a
pluggable :class:`~repro.parallel.backends.ExecutorBackend` — the
in-process serial backend, a local process pool, or the spooled
work-queue stub — selected via ``FlowConfig(backend=...)`` /
``REPRO_BACKEND`` / ``--backend``.

Determinism: a worker receives only (characterizer, spec chunk,
n_samples, seed) and regenerates its cells' draws locally via
:meth:`~repro.characterization.characterize.Characterizer.
sample_arc_draws`.  Because draws are keyed per cell by
``(seed, sha256(cell name))``, the regenerated arrays are bit-identical
to the ones the serial loop draws, so the resulting LUTs are
bit-identical too (same IEEE-754 operations on the same inputs) — on
every backend, for any worker count and any chunking.  The die-level
global draws are a single tiny stream; they are drawn once in the
parent and shipped to every worker.

The hot payload crossing the dispatch boundary is therefore small
going in (specs and configuration) and exactly the characterized cells
coming back.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.characterization.characterize import Characterizer, GlobalDraws
from repro.cells.catalog import CellSpec
from repro.liberty.model import Cell
from repro.observe import TraceHandle, install_worker_tracer
from repro.parallel.backends import (
    ExecutorBackend,
    chunk_indices,
    resolve_backend,
)

__all__ = [
    "characterize_sample_cells",
    "characterize_statistical_cells",
    "chunk_indices",
]


def _statistical_chunk(
    characterizer: Characterizer,
    specs: Sequence[CellSpec],
    n_samples: int,
    seed: int,
    global_draws: Optional[GlobalDraws],
    trace: Optional[TraceHandle] = None,
) -> List[Cell]:
    """Worker: characterize one chunk of cells in statistical mode."""
    tracer = install_worker_tracer(trace)
    with tracer.span("characterize.chunk", n_cells=len(specs)):
        draws = characterizer.sample_arc_draws(specs, n_samples, seed)
        cells = [
            characterizer.characterize_cell(
                spec,
                draws=draws[spec.name],
                global_draws=global_draws,
                statistical=True,
            )
            for spec in specs
        ]
    tracer.flush_counters()
    return cells


def _sample_chunk(
    characterizer: Characterizer,
    specs: Sequence[CellSpec],
    n_samples: int,
    seed: int,
    global_draws: Optional[GlobalDraws],
    sample_indices: Sequence[int],
    trace: Optional[TraceHandle] = None,
) -> List[List[Cell]]:
    """Worker: characterize a (cell chunk, sample block) tile.

    Returns one list of cells per sample index, in block order.
    """
    tracer = install_worker_tracer(trace)
    with tracer.span(
        "characterize.chunk", n_cells=len(specs), n_samples=len(sample_indices)
    ):
        draws = characterizer.sample_arc_draws(specs, n_samples, seed)
        columns = [
            characterizer.characterize_cell_samples(
                spec, draws[spec.name], list(sample_indices), global_draws
            )
            for spec in specs
        ]
        tile: List[List[Cell]] = [
            [column[row] for column in columns]
            for row in range(len(sample_indices))
        ]
    tracer.flush_counters()
    return tile


def characterize_statistical_cells(
    characterizer: Characterizer,
    specs: Sequence[CellSpec],
    n_samples: int,
    seed: int,
    global_draws: Optional[GlobalDraws],
    n_workers: int = 1,
    backend: Union[str, ExecutorBackend, None] = None,
) -> List[Cell]:
    """Fan the statistical characterization of ``specs`` out over the
    selected backend; returns cells in catalog order."""
    specs = list(specs)
    resolved = resolve_backend(backend, n_workers)
    chunks = chunk_indices(len(specs), 4 * resolved.n_workers)
    tasks = [
        (characterizer, [specs[i] for i in chunk], n_samples, seed, global_draws)
        for chunk in chunks
    ]
    cells: List[Cell] = []
    for tile in resolved.map_tasks(_statistical_chunk, tasks):
        cells.extend(tile)
    return cells


def characterize_sample_cells(
    characterizer: Characterizer,
    specs: Sequence[CellSpec],
    n_samples: int,
    seed: int,
    global_draws: Optional[GlobalDraws],
    n_workers: int = 1,
    backend: Union[str, ExecutorBackend, None] = None,
) -> List[List[Cell]]:
    """Fan per-sample characterization out over (cell, sample) tiles.

    Returns ``cells[k][i]``: the cell of ``specs[i]`` under Monte-Carlo
    sample ``k``, bit-identical to the serial double loop.

    The vectorized kernel evaluates each cell's full sample tensor in
    one shot, so splitting the sample axis would only repeat that work
    per block — it shards over cells alone.  The scalar kernel keeps
    the (cell chunk, sample block) tiling for load balance.
    """
    specs = list(specs)
    resolved = resolve_backend(backend, n_workers)
    if characterizer.kernel == "vectorized":
        cell_chunks = chunk_indices(len(specs), 4 * resolved.n_workers)
        sample_blocks = [range(n_samples)]
    else:
        cell_chunks = chunk_indices(len(specs), 2 * resolved.n_workers)
        sample_blocks = chunk_indices(n_samples, resolved.n_workers)
    tiles = [
        (block, chunk)
        for block in sample_blocks
        for chunk in cell_chunks
    ]
    tasks = [
        (
            characterizer,
            [specs[i] for i in chunk],
            n_samples,
            seed,
            global_draws,
            list(block),
        )
        for block, chunk in tiles
    ]
    results = resolved.map_tasks(_sample_chunk, tasks)
    cells: List[List[Optional[Cell]]] = [
        [None] * len(specs) for _ in range(n_samples)
    ]
    for (block, chunk), tile in zip(tiles, results):
        for row, k in enumerate(block):
            for column, i in enumerate(chunk):
                cells[k][i] = tile[row][column]
    return cells
