"""Cell naming convention of the paper (Appendix A).

    "Logic function[Nr input pins]_[Special ability_]Drive strength"

where bracketed parts are optional and a ``P`` between digits denotes a
decimal separator.  Examples::

    INV_1        inverter, drive strength 1
    INV_0P5      inverter, drive strength 0.5
    ND2_4        2-input NAND, drive strength 4
    NR2B_2       2-input NOR with one bubbled input, drive strength 2
    DFF_R_3      flip-flop with reset ability, drive strength 3
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.errors import CatalogError

_NAME_RE = re.compile(
    r"""
    ^(?P<function>[A-Z]+?)           # function mnemonic (INV, ND, NR, ...)
    (?:
        (?P<inputs>\d+)              # optional input count (ND2, NR4, ...)
        (?P<ability>[A-Z]+)?         # optional ability after the count (NR2B)
    )?
    _(?P<strength>\d+(?:P\d+)?)$     # drive strength, P = decimal point
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class CellName:
    """Decomposed cell name."""

    function: str
    n_inputs: Optional[int]
    ability: str
    strength: float

    @property
    def family(self) -> str:
        """Family key: function + input count + ability (no strength)."""
        parts = [self.function]
        if self.n_inputs is not None:
            parts.append(str(self.n_inputs))
        if self.ability:
            parts.append(self.ability)
        return "".join(parts)


def format_strength(strength: float) -> str:
    """Format a drive strength using the paper's ``P`` decimal separator."""
    if strength <= 0:
        raise CatalogError(f"drive strength must be positive, got {strength}")
    if float(strength).is_integer():
        return str(int(strength))
    text = f"{strength:g}"
    return text.replace(".", "P")


def parse_strength(text: str) -> float:
    """Parse a ``P``-separated strength string back to a float."""
    try:
        return float(text.replace("P", "."))
    except ValueError:
        raise CatalogError(f"malformed drive strength {text!r}") from None


def format_cell_name(
    function: str,
    strength: float,
    n_inputs: Optional[int] = None,
    ability: str = "",
) -> str:
    """Compose a cell name following the Appendix A convention."""
    head = function
    if n_inputs is not None:
        head += str(n_inputs)
    if ability:
        head += ability
    return f"{head}_{format_strength(strength)}"


def parse_cell_name(name: str) -> CellName:
    """Decompose a cell name; raises :class:`CatalogError` when malformed."""
    match = _NAME_RE.match(name)
    if match is None:
        raise CatalogError(f"malformed cell name {name!r}")
    inputs_text = match.group("inputs")
    ability = match.group("ability") or ""
    return CellName(
        function=match.group("function"),
        n_inputs=int(inputs_text) if inputs_text else None,
        ability=ability,
        strength=parse_strength(match.group("strength")),
    )
