"""Fig. 15 — Monte Carlo of extracted paths across process corners.

"Moving towards a different corner scales the mean and sigma by the
same factor when compared to the typical case" — which is what lets
the paper apply the tuning per corner.  We replay the short/medium/long
paths (N=200) at fast/typical/slow and report the relative mean and
sigma per corner.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.base import ExperimentContext, ExperimentResult
from repro.flow.pathmc import PathMonteCarlo, pick_paths_by_depth
from repro.variation.process import CORNERS

#: Depth targets per the paper (3 / 18 / 57 cells), scaled down for the
#: quick flow whose deepest paths are ~30.
PAPER_DEPTHS = (3, 18, 57)
QUICK_DEPTHS = (3, 12, 28)


def run(
    context: ExperimentContext,
    n_samples: int = 200,
    seed: int = 15,
    period: Optional[float] = None,
) -> ExperimentResult:
    """Build this experiment's rows (see the module docstring)."""
    flow = context.flow
    clock = period if period is not None else context.high_performance_period
    baseline = flow.baseline(clock)
    targets = PAPER_DEPTHS if context.is_paper_scale else QUICK_DEPTHS
    chosen = pick_paths_by_depth(baseline.paths, targets)
    mc = PathMonteCarlo(flow.specs)

    rows = []
    max_mismatch = 0.0
    for label, path in zip(("short", "medium", "long"), chosen):
        typical = mc.sample_path(
            path, n_samples=n_samples, seed=seed, corner=CORNERS["typical"]
        )
        for corner_name, corner in CORNERS.items():
            result = mc.sample_path(
                path, n_samples=n_samples, seed=seed, corner=corner
            )
            mean_ratio = result.mean / typical.mean
            sigma_ratio = result.sigma / typical.sigma
            if corner_name != "typical":
                max_mismatch = max(max_mismatch, abs(mean_ratio - sigma_ratio))
            rows.append({
                "path": label,
                "depth": path.depth,
                "corner": corner_name,
                "mean_ns": round(result.mean, 4),
                "sigma_ns": round(result.sigma, 5),
                "mean_rel": round(mean_ratio, 3),
                "sigma_rel": round(sigma_ratio, 3),
            })
    return ExperimentResult(
        experiment_id="fig15",
        title=f"Corner Monte Carlo (N={n_samples}) of extracted paths "
              f"at {clock:g} ns",
        rows=rows,
        notes=(
            f"max |mean_rel - sigma_rel| across corners: {max_mismatch:.3f} — "
            "mean and sigma scale by (approximately) the same factor, so the "
            "tuning transfers across corners (paper Sec. VII.C)"
        ),
    )
