"""Command-line entry point: reproduce the paper's tables and figures.

Usage::

    python -m repro list                  # available experiments
    python -m repro run fig04 table2      # run a selection
    python -m repro fig10                 # shorthand for `run fig10`
    python -m repro run --all             # everything (synthesis-heavy)
    python -m repro run --all --jobs 0    # characterize on every CPU
    python -m repro run fig07 --no-cache  # bypass the on-disk caches
    python -m repro run fig10 --manifest  # print the stage manifest
    python -m repro fig10 --trace out.jsonl   # record a JSONL trace
    python -m repro fig10 --profile       # print the per-stage time tree
    python -m repro run --all --trace-dir traces/  # one trace per experiment
    python -m repro store stats           # cache location and size
    python -m repro store clear           # drop libraries and artifacts
    python -m repro trace summarize a.jsonl        # flat per-path table
    python -m repro trace diff a.jsonl b.jsonl     # flag wall-time growth
    python -m repro report                # metric/stage trends (ledger)
    python -m repro sweep --designs microcontroller dsp --clocks 3.0
    python -m repro sweep --expect-warm   # assert the grid is fully warm
    python -m repro check --baseline benchmarks/baselines/fig10.json
    python -m repro lint                  # AST contract checker (DESIGN.md §13)
    python -m repro lint --format json    # machine-readable findings
    python -m repro lint --update-baseline    # ratchet committed debt down
    python -m repro serve --port 8731     # tuning-as-a-service HTTP API
    python -m repro metrics               # scrape a live server's /metrics
    python -m repro metrics --watch       # live console dashboard
    python -m repro metrics snap.json --format prom   # render a snapshot
    REPRO_SCALE=paper python -m repro run table1   # full-scale flow

Every pipeline stage (characterized library, tuning, synthesis, worst
paths, design statistics, minimum-period search) is content-addressed
and memoized under ``$REPRO_CACHE_DIR`` (or ``~/.cache/repro``); a warm
store makes repeated runs skip synthesis entirely, ``--jobs`` fans both
characterization and the evaluation sweep out over worker processes
with bit-identical results, and ``--manifest`` prints what each run
served from the store versus computed.

``--trace PATH`` records every span and counter of the run — including
those of worker processes — to a JSONL file (see
:mod:`repro.observe`); ``--profile`` prints the per-stage time tree and
counter totals on completion.  Both change *observation only*: traced
results are bit-identical to untraced ones.

``--trace PATH`` *truncates* PATH at run start, so reusing one path
across runs keeps only the latest trace — two runs never interleave in
one file.  (Programmatic ``JsonlExporter`` use defaults to appending,
the mode worker processes joining a live trace need; ``trace
summarize`` flags a file that accumulated several runs.)

Every run additionally appends one record — scientific metrics, stage
wall times, cache hit rates — to the run ledger beside the artifact
store (``REPRO_LEDGER`` redirects it, ``REPRO_LEDGER=off`` disables).
``report`` renders metric and stage-time trends across those records;
``check`` compares the latest matching run against a committed
baseline and exits nonzero on drift — the CI regression gate.

The execution flags (``--jobs``, ``--no-cache``, ``--manifest``,
``--trace``, ``--profile``) are defined once on a shared parent parser,
so every run-like invocation accepts the same set.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.experiments.runner import (
    ALL_EXPERIMENTS,
    LIBRARY_ONLY,
    build_context,
    run_experiments,
)


def _shared_options() -> argparse.ArgumentParser:
    """The parent parser holding the execution flags shared by every
    run-like subcommand (defined once, inherited via ``parents=``)."""
    shared = argparse.ArgumentParser(add_help=False)
    group = shared.add_argument_group("execution options")
    group.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for characterization and the evaluation "
        "sweep (1 = serial, 0 = one per CPU; default from REPRO_JOBS)",
    )
    group.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the on-disk library cache and "
        "artifact store",
    )
    group.add_argument(
        "--kernel",
        choices=("scalar", "vectorized"),
        default=None,
        help="evaluation kernel: 'vectorized' (default) or the 'scalar' "
        "reference — bit-identical results (default from REPRO_KERNEL)",
    )
    group.add_argument(
        "--backend",
        choices=("serial", "process", "queue"),
        default=None,
        help="execution backend for every fan-out: in-process 'serial', "
        "local 'process' pool (default) or the spooled 'queue' stub — "
        "bit-identical results (default from REPRO_BACKEND)",
    )
    group.add_argument(
        "--manifest",
        action="store_true",
        help="after each experiment, print the run manifest (stage "
        "fingerprints, cache hit/miss, wall time)",
    )
    group.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record a JSONL trace of the run (spans, counters — worker "
        "processes included) to PATH",
    )
    group.add_argument(
        "--profile",
        action="store_true",
        help="print the per-stage time tree and counter totals when the "
        "run finishes",
    )
    group.add_argument(
        "--trace-dir",
        metavar="DIR",
        default=None,
        help="write one standalone trace artifact per experiment "
        "(DIR/<id>.trace.jsonl)",
    )
    return shared


def _build_parser() -> argparse.ArgumentParser:
    """The full CLI parser: list / run / store / trace / lint / sweep /
    report / check / serve / metrics."""
    shared = _shared_options()
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce 'Standard Cell Library Tuning for "
        "Variability Tolerant Designs' (DATE 2014).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_parser = sub.add_parser(
        "run", help="run experiments", parents=[shared]
    )
    run_parser.add_argument("ids", nargs="*", help="experiment ids (see list)")
    run_parser.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    run_parser.add_argument(
        "--library-only",
        action="store_true",
        help="run only the fast, synthesis-free experiments",
    )
    store_parser = sub.add_parser(
        "store", help="inspect or clear the library cache and artifact store"
    )
    store_parser.add_argument(
        "action",
        choices=("stats", "clear"),
        help="what to do with the on-disk state",
    )

    trace_parser = sub.add_parser(
        "trace", help="analyze recorded JSONL traces"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)
    summarize_parser = trace_sub.add_parser(
        "summarize", help="flat per-span-path wall/CPU table of one trace"
    )
    summarize_parser.add_argument("path", help="JSONL trace file")
    summarize_parser.add_argument(
        "--top", type=int, default=40, metavar="N",
        help="paths to show (default 40)",
    )
    diff_parser = trace_sub.add_parser(
        "diff",
        help="align two traces by span path and flag wall-time regressions "
        "(exit 1 when any are found)",
    )
    diff_parser.add_argument("a", help="reference trace (before)")
    diff_parser.add_argument("b", help="candidate trace (after)")
    diff_parser.add_argument(
        "--rtol", type=float, default=None, metavar="R",
        help="relative wall-time growth to tolerate (default 0.25)",
    )
    diff_parser.add_argument(
        "--min-seconds", type=float, default=None, metavar="S",
        help="absolute growth floor below which nothing is flagged "
        "(default 0.05)",
    )

    lint_parser = sub.add_parser(
        "lint",
        help="run the repo's AST contract checker (determinism, "
        "process-safety, picklability; see DESIGN.md §13)",
    )
    from repro.lint.cli import configure_lint_parser

    configure_lint_parser(lint_parser)

    sweep_parser = sub.add_parser(
        "sweep",
        parents=[shared],
        help="incremental design-family sweep: run a (design x method x "
        "parameter x clock) grid, recomputing only stale points",
    )
    sweep_parser.add_argument(
        "--designs", nargs="+", default=["microcontroller"], metavar="NAME",
        help="design family members (default: the paper's "
        "microcontroller; see repro.netlist.generators.family)",
    )
    sweep_parser.add_argument(
        "--methods", nargs="+", default=None, metavar="NAME",
        help="tuning methods (default: every registered method)",
    )
    sweep_parser.add_argument(
        "--parameters", nargs="+", type=float, default=None, metavar="P",
        help="tuning parameters (default: each method's Table 2 sweep)",
    )
    sweep_parser.add_argument(
        "--clocks", nargs="+", type=float, default=[3.0], metavar="NS",
        help="clock periods in ns (default: 3.0)",
    )
    sweep_parser.add_argument(
        "--report", metavar="PATH", default=None,
        help="write the markdown grid report to PATH",
    )
    sweep_parser.add_argument(
        "--expect-warm", action="store_true",
        help="exit 1 if any point had to be scheduled — the CI "
        "incremental-recharacterization gate",
    )

    report_parser = sub.add_parser(
        "report", help="metric and stage-time trends across ledger records"
    )
    report_parser.add_argument(
        "--ledger", metavar="PATH", default=None,
        help="ledger file (default: beside the artifact store)",
    )
    report_parser.add_argument(
        "--experiment", metavar="ID", default=None,
        help="only this experiment's records",
    )
    report_parser.add_argument(
        "--scale", default=None, help="only records at this scale"
    )
    report_parser.add_argument(
        "--last", type=int, default=None, metavar="N",
        help="show only the last N runs per section",
    )

    check_parser = sub.add_parser(
        "check",
        help="gate the latest ledger run against a committed baseline "
        "(exit 1 on metric drift or stage-budget violation)",
    )
    check_parser.add_argument(
        "--baseline", required=True, metavar="PATH",
        help="baseline JSON (experiment, scale, metrics, tolerances)",
    )
    check_parser.add_argument(
        "--ledger", metavar="PATH", default=None,
        help="ledger file (default: beside the artifact store)",
    )
    check_parser.add_argument(
        "--rtol", type=float, default=None, metavar="R",
        help="override the baseline's relative tolerance",
    )
    check_parser.add_argument(
        "--atol", type=float, default=None, metavar="A",
        help="override the baseline's absolute tolerance",
    )
    check_parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from the latest matching run instead "
        "of checking (the refresh path after an intended change)",
    )

    serve_parser = sub.add_parser(
        "serve",
        parents=[shared],
        help="serve tuning requests over HTTP (asyncio, request "
        "coalescing, bounded backpressure; see repro.serve)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="address to bind (default 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=8731, metavar="N",
        help="port to bind (default 8731; 0 = ephemeral)",
    )
    serve_parser.add_argument(
        "--scale", choices=("tiny", "quick", "paper"), default=None,
        help="default flow scale for requests that name none "
        "(default from REPRO_SCALE)",
    )
    serve_parser.add_argument(
        "--max-pending", type=int, default=8, metavar="N",
        help="concurrent backend submissions before requests are "
        "rejected with 429 (default 8)",
    )

    metrics_parser = sub.add_parser(
        "metrics",
        help="inspect live operational metrics: scrape a running "
        "server's /metrics, or render on-disk snapshot files",
    )
    metrics_parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="metric snapshot files (JSON or spool JSONL) to merge and "
        "render; with none, scrape the live server instead",
    )
    metrics_parser.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="server address to scrape (default 127.0.0.1)",
    )
    metrics_parser.add_argument(
        "--port", type=int, default=8731, metavar="N",
        help="server port to scrape (default 8731)",
    )
    metrics_parser.add_argument(
        "--format", choices=("console", "json", "prom"), default="console",
        help="output format: human-readable 'console' (default), "
        "canonical 'json' snapshot, or Prometheus 'prom' text",
    )
    metrics_parser.add_argument(
        "--watch", action="store_true",
        help="live console dashboard, refreshing in place until "
        "interrupted (scrape mode only)",
    )
    metrics_parser.add_argument(
        "--interval", type=float, default=2.0, metavar="S",
        help="refresh period of --watch in seconds (default 2.0)",
    )
    return parser


def _run_store_command(action: str) -> int:
    """Handle ``python -m repro store stats|clear`` for both halves of
    the on-disk state: the ``.npz`` library cache and the staged
    artifact store."""
    from repro.parallel import ArtifactStore, LibraryCache

    cache = LibraryCache()
    store = ArtifactStore()
    if action == "stats":
        print(cache.stats().to_text())
        print(store.stats().to_text())
        return 0
    removed = cache.clear()
    print(f"removed {removed} cache entries from {cache.directory}")
    removed = store.clear()
    print(f"removed {removed} stage artifacts from {store.directory}")
    return 0


def _run_trace_command(args: argparse.Namespace) -> int:
    """Handle ``python -m repro trace summarize|diff``."""
    from repro.observe import load_trace
    from repro.observe.analyze import (
        DIFF_MIN_SECONDS,
        DIFF_RTOL,
        diff_traces,
        summarize_trace,
    )

    try:
        if args.trace_command == "summarize":
            print(summarize_trace(load_trace(args.path), top=args.top))
            return 0
        diff = diff_traces(
            load_trace(args.a),
            load_trace(args.b),
            rtol=args.rtol if args.rtol is not None else DIFF_RTOL,
            min_seconds=(
                args.min_seconds
                if args.min_seconds is not None
                else DIFF_MIN_SECONDS
            ),
        )
    except OSError as error:
        print(f"cannot read trace: {error}", file=sys.stderr)
        return 2
    print(diff.to_text())
    return 1 if diff.regressions else 0


def _run_sweep_command(args: argparse.Namespace) -> int:
    """Handle ``python -m repro sweep`` — the design-family harness.

    Exit 0 on a completed sweep, 1 when ``--expect-warm`` found stale
    work, 2 when the sweep cannot run (bad grid axis, cache disabled).
    """
    from repro.errors import ConfigError
    from repro.sweep import SweepGrid, render_sweep_report, run_sweep

    tracer = _build_run_tracer(args)
    context = build_context(
        jobs=args.jobs,
        cache=False if args.no_cache else None,
        tracer=tracer,
        kernel=args.kernel,
        backend=args.backend,
    )
    try:
        grid = SweepGrid(
            designs=tuple(args.designs),
            methods=None if args.methods is None else tuple(args.methods),
            parameters=(
                None if args.parameters is None else tuple(args.parameters)
            ),
            clock_periods=tuple(args.clocks),
        )
        result = run_sweep(context.flow.config, grid)
    except ConfigError as error:
        print(f"sweep cannot run: {error}", file=sys.stderr)
        return 2
    report = render_sweep_report(result)
    print(report)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"[report written to {args.report}]")
    if tracer is not None:
        _report_trace(tracer, args)
    if args.expect_warm and result.scheduled:
        print(
            f"expected a warm grid, but {result.scheduled} tasks were "
            f"scheduled ({result.counts['run']} stale points)",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_serve_command(args: argparse.Namespace) -> int:
    """Handle ``python -m repro serve`` — the tuning service.

    Blocks until interrupted.  Exit 2 when the server cannot start
    (invalid config — e.g. ``--no-cache``, which the service rejects
    because warm hits stream from the artifact store).
    """
    import os
    import tempfile

    from repro.errors import ConfigError
    from repro.flow.experiment import FlowConfig
    from repro.serve.server import TuningServer
    from repro.observe.metrics import METRICS_SPOOL_ENV

    tracer = _build_run_tracer(args)
    try:
        config = FlowConfig.from_env(
            scale=args.scale,
            jobs=args.jobs,
            kernel=args.kernel,
            backend=args.backend,
            cache=False if args.no_cache else None,
            tracer=tracer,
        )
        if config.metrics and not os.environ.get(METRICS_SPOOL_ENV):
            # Give worker processes a delta spool so their counters show
            # up in /metrics; inherited through the pool's environment.
            fd, spool = tempfile.mkstemp(
                prefix="repro-metrics-", suffix=".jsonl"
            )
            os.close(fd)
            os.environ[METRICS_SPOOL_ENV] = spool
        server = TuningServer(
            config=config,
            host=args.host,
            port=args.port,
            max_pending=args.max_pending,
        )
    except ConfigError as error:
        print(f"serve cannot start: {error}", file=sys.stderr)
        return 2
    try:
        server.run()
    except OSError as error:
        print(
            f"serve cannot bind {args.host}:{args.port}: {error}",
            file=sys.stderr,
        )
        return 2
    finally:
        if tracer is not None:
            _report_trace(tracer, args)
    return 0


def _run_metrics_command(args: argparse.Namespace) -> int:
    """Handle ``python -m repro metrics`` — live-metric inspection.

    With snapshot ``paths``, merge and render them offline.  Without,
    scrape the live server's ``/metrics`` endpoint — once, or
    repeatedly in place with ``--watch``.  Exit 2 when the server is
    unreachable or a snapshot cannot be read.
    """
    import json

    from repro.errors import ObservabilityError
    from repro.observe.dashboard import (
        fetch_metrics,
        render_console,
        watch,
    )
    from repro.observe.metrics import load_metrics, render_prometheus

    try:
        if args.paths:
            snapshot = load_metrics(args.paths)
        elif args.watch:
            try:
                watch(
                    lambda: fetch_metrics(args.host, args.port),
                    sys.stdout,
                    interval=args.interval,
                )
            except KeyboardInterrupt:
                print()
            return 0
        else:
            snapshot = fetch_metrics(args.host, args.port)
    except (OSError, ObservabilityError, ValueError) as error:
        print(f"cannot read metrics: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(snapshot.to_payload(), indent=2, sort_keys=True))
    elif args.format == "prom":
        sys.stdout.write(render_prometheus(snapshot))
    else:
        sys.stdout.write(render_console(snapshot))
    return 0


def _run_report_command(args: argparse.Namespace) -> int:
    """Handle ``python -m repro report``."""
    from repro.observe.analyze import render_report
    from repro.observe.ledger import RunLedger

    ledger = RunLedger(args.ledger)
    records = ledger.read(experiment=args.experiment, scale=args.scale)
    print(render_report(records, last=args.last))
    return 0


def _run_check_command(args: argparse.Namespace) -> int:
    """Handle ``python -m repro check`` — the regression gate.

    Exit 0 when the latest matching ledger run satisfies the baseline,
    1 on metric drift or a stage-budget violation, 2 when the gate
    cannot run (unreadable baseline, no matching ledger record).
    """
    import json

    from repro.observe.analyze import (
        baseline_from_record,
        check_record,
        load_baseline,
    )
    from repro.observe.ledger import RunLedger

    try:
        baseline = load_baseline(args.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"cannot read baseline: {error}", file=sys.stderr)
        return 2
    experiment = baseline.get("experiment")
    if not experiment:
        print(f"baseline names no experiment: {args.baseline}", file=sys.stderr)
        return 2
    ledger = RunLedger(args.ledger)
    record = ledger.latest(experiment, baseline.get("scale"))
    if record is None:
        scale = baseline.get("scale", "any")
        print(
            f"no ledger record of {experiment} @ {scale} in {ledger.path}; "
            f"run 'python -m repro {experiment}' first",
            file=sys.stderr,
        )
        return 2
    if args.update:
        refreshed = baseline_from_record(
            record,
            rtol=(
                args.rtol
                if args.rtol is not None
                else float(baseline.get("rtol", 0.05))
            ),
            atol=baseline.get("atol"),
        )
        if "stage_budget_seconds" in baseline:
            refreshed["stage_budget_seconds"] = baseline["stage_budget_seconds"]
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(refreshed, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            f"baseline refreshed from run {record.run_id} "
            f"({len(refreshed['metrics'])} metrics) -> {args.baseline}"
        )
        return 0
    violations = check_record(
        record, baseline, rtol=args.rtol, atol=args.atol
    )
    if violations:
        for violation in violations:
            print(f"FAIL: {violation}")
        print(
            f"check failed: {len(violations)} violations against "
            f"{args.baseline} (run {record.run_id})"
        )
        return 1
    print(
        f"check ok: run {record.run_id} of {record.experiment} @ "
        f"{record.scale} matches {args.baseline} "
        f"({len(baseline.get('metrics', {}))} metrics)"
    )
    return 0


def _normalize_argv(argv: List[str]) -> List[str]:
    """Allow an experiment id as a direct subcommand.

    ``python -m repro fig10 --trace out.jsonl`` is rewritten to
    ``run fig10 --trace out.jsonl`` — the common case deserves the
    short spelling.
    """
    if argv and argv[0] in ALL_EXPERIMENTS:
        return ["run"] + argv
    return argv


def _build_run_tracer(args: argparse.Namespace):
    """The tracer implied by ``--trace``/``--profile`` (or ``None``).

    ``--trace`` gets a (truncated) file-backed tracer so worker
    processes merge into the same JSONL file; ``--profile`` alone uses
    an in-memory sink — enough for the parent-side time tree.
    """
    if not args.trace and not args.profile:
        return None
    from repro.observe import JsonlExporter, MemorySink, Tracer

    sink = (
        JsonlExporter(args.trace, truncate=True)
        if args.trace
        else MemorySink()
    )
    return Tracer(sink)


def _report_trace(tracer, args: argparse.Namespace) -> None:
    """Close out the run's tracer: flush, then print what was asked.

    With ``--trace`` the tree is rebuilt from the file, so spans and
    counter deltas appended by worker processes are included.
    """
    from repro.observe import Trace, load_trace, render_trace, set_tracer

    tracer.finish()
    set_tracer(None)
    if args.trace:
        trace = load_trace(args.trace)
        print(f"[trace: {len(trace.spans)} spans written to {args.trace}]")
    else:
        trace = Trace(
            spans=[span.to_record() for span in tracer.spans],
            counters=tracer.counters(),
            gauges=tracer.gauges(),
        )
    if args.profile:
        print(render_trace(trace))


def main(argv: List[str]) -> int:
    """Parse arguments and dispatch to the selected subcommand."""
    argv = _normalize_argv(argv)
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id, fn in ALL_EXPERIMENTS.items():
            doc = (fn.__module__.split(".")[-1]).replace("_", " ")
            tag = " (library-only)" if experiment_id in LIBRARY_ONLY else ""
            print(f"{experiment_id:8s} {doc}{tag}")
        return 0
    if args.command == "store":
        return _run_store_command(args.action)
    if args.command == "lint":
        from repro.lint.cli import run_lint_command

        return run_lint_command(args)
    if args.command == "trace":
        return _run_trace_command(args)
    if args.command == "sweep":
        return _run_sweep_command(args)
    if args.command == "report":
        return _run_report_command(args)
    if args.command == "check":
        return _run_check_command(args)
    if args.command == "serve":
        return _run_serve_command(args)
    if args.command == "metrics":
        return _run_metrics_command(args)

    if args.all:
        ids = list(ALL_EXPERIMENTS)
    elif args.library_only:
        ids = list(LIBRARY_ONLY)
    else:
        ids = args.ids
    unknown = [i for i in ids if i not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; try 'python -m repro list'")
        return 2
    if not ids:
        print("nothing to run; pass experiment ids, --all or --library-only")
        return 2

    tracer = _build_run_tracer(args)
    context = build_context(
        jobs=args.jobs,
        cache=False if args.no_cache else None,
        tracer=tracer,
        kernel=args.kernel,
        backend=args.backend,
    )
    for experiment_id in ids:
        start = time.time()
        result = run_experiments(
            context, ids=[experiment_id], trace_dir=args.trace_dir
        )[experiment_id]
        print(result.to_text())
        print(f"[{experiment_id} finished in {time.time() - start:.1f}s]\n")
    if args.manifest:
        print(context.flow.manifest.to_text())
    if tracer is not None:
        _report_trace(tracer, args)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
