"""The analytics CLI: ``trace``, ``report``, ``check``, ``store clear``.

Exit-code contracts end to end through :func:`repro.__main__.main`:
``trace diff`` and ``check`` are CI gates, so 0/1/2 must mean
pass/regression/cannot-run exactly — including the drill where a
perturbed baseline turns a passing ``check`` into exit 1.
"""

from __future__ import annotations

import json

import pytest

import repro.__main__ as cli
from repro.observe import JsonlExporter, Tracer, load_trace
from repro.observe.analyze import baseline_from_record
from repro.observe.ledger import RunLedger, RunRecord


def _write_trace(path, walls=(0.0,)):
    """Record one root span per wall time to ``path`` (truncating)."""
    tracer = Tracer(JsonlExporter(path, truncate=True))
    for _ in walls:
        with tracer.span("work"):
            pass
    tracer.finish()
    return path


def _fake_trace_line(path, name, wall):
    """Append one hand-built span line (controlled wall time)."""
    with open(path, "a", encoding="utf-8") as handle:
        record = {
            "type": "span",
            "trace": "hand",
            "id": f"hand-{name}",
            "parent": None,
            "name": name,
            "wall": wall,
            "cpu": wall,
        }
        handle.write(json.dumps(record) + "\n")


def _record(run_id="r1", metrics=None):
    return RunRecord(
        run_id=run_id,
        timestamp=1000.0,
        experiment="fake",
        scale="tiny",
        metrics=metrics if metrics is not None else {"sigma[vt]": 2.0},
        stages={"synth": {"count": 1, "seconds": 1.0, "hit": 1}},
        wall=1.5,
    )


@pytest.fixture
def ledger_path(tmp_path):
    """A ledger holding two runs of the ``fake`` experiment."""
    path = tmp_path / "ledger.jsonl"
    ledger = RunLedger(path)
    ledger.append(_record("r1", metrics={"sigma[vt]": 2.0}))
    ledger.append(_record("r2", metrics={"sigma[vt]": 2.01}))
    return path


@pytest.fixture
def baseline_path(tmp_path, ledger_path):
    """A baseline the ledger's latest ``fake`` run satisfies."""
    baseline = baseline_from_record(
        _record("r2", metrics={"sigma[vt]": 2.01}), rtol=0.05
    )
    path = tmp_path / "fake.json"
    path.write_text(json.dumps(baseline, indent=2))
    return path


class TestStoreClear:
    """``store clear`` empties both on-disk halves and exits 0."""

    def test_clear_reports_both_halves(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert cli.main(["store", "clear"]) == 0
        out = capsys.readouterr().out
        assert "cache entries" in out
        assert "stage artifacts" in out


class TestTraceCli:
    """``trace summarize`` and ``trace diff`` exit codes."""

    def test_summarize_renders_paths(self, tmp_path, capsys):
        path = _write_trace(tmp_path / "a.jsonl")
        assert cli.main(["trace", "summarize", str(path)]) == 0
        assert "work" in capsys.readouterr().out

    def test_summarize_missing_file_exits_2(self, tmp_path, capsys):
        code = cli.main(["trace", "summarize", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_diff_same_run_exits_0(self, tmp_path, capsys):
        """Two traces of the same (warm) run report no regressions."""
        a = _write_trace(tmp_path / "a.jsonl")
        b = _write_trace(tmp_path / "b.jsonl")
        assert cli.main(["trace", "diff", str(a), str(b)]) == 0
        assert "0 regressions" in capsys.readouterr().out

    def test_diff_regression_exits_1(self, tmp_path, capsys):
        """Wall-time growth beyond rtol and the floor fails the gate."""
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        a.touch()
        b.touch()
        _fake_trace_line(a, "stage.synth", 1.0)
        _fake_trace_line(b, "stage.synth", 2.0)
        assert cli.main(["trace", "diff", str(a), str(b)]) == 1
        assert "<< regression" in capsys.readouterr().out

    def test_diff_thresholds_are_flags(self, tmp_path):
        """A generous --rtol turns the same comparison back to 0."""
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        a.touch()
        b.touch()
        _fake_trace_line(a, "stage.synth", 1.0)
        _fake_trace_line(b, "stage.synth", 2.0)
        assert cli.main(["trace", "diff", str(a), str(b), "--rtol", "2"]) == 0


class TestTraceTruncateSemantics:
    """Reusing one ``--trace`` path keeps only the latest run."""

    def _run_traced_stub(self, monkeypatch, path):
        import repro.experiments.runner as runner
        from repro.experiments.base import ExperimentResult
        from repro.observe import get_tracer

        def fake_run(context):
            """Stub experiment recording one span."""
            with get_tracer().span("fake.work"):
                pass
            return ExperimentResult("fake", "stub", rows=[])

        fake_table = {"fake": fake_run}
        monkeypatch.setattr(runner, "ALL_EXPERIMENTS", fake_table)
        monkeypatch.setattr(cli, "ALL_EXPERIMENTS", fake_table)
        monkeypatch.setenv("REPRO_LEDGER", "off")  # trace semantics only
        assert cli.main(["fake", "--trace", str(path)]) == 0

    def test_cli_reuse_truncates(self, tmp_path, monkeypatch):
        """Two runs through the same path leave exactly one trace —
        spans don't double and a single trace id remains."""
        path = tmp_path / "out.jsonl"
        self._run_traced_stub(monkeypatch, path)
        first = load_trace(path)
        self._run_traced_stub(monkeypatch, path)
        second = load_trace(path)
        assert len(second.trace_ids) == 1
        assert len(second.spans) == len(first.spans)

    def test_appending_exporter_on_recycled_path_is_flagged(
        self, tmp_path, monkeypatch, capsys
    ):
        """The programmatic default (append) on a used path interleaves
        two trace ids; ``summarize`` warns instead of silently summing."""
        path = tmp_path / "out.jsonl"
        self._run_traced_stub(monkeypatch, path)
        joiner = Tracer(JsonlExporter(path))  # append: a second trace id
        with joiner.span("late.work"):
            pass
        joiner.finish()
        assert len(load_trace(path).trace_ids) == 2
        capsys.readouterr()
        assert cli.main(["trace", "summarize", str(path)]) == 0
        assert "interleaved traces" in capsys.readouterr().out


class TestReportCli:
    """``report`` renders the ledger and always exits 0."""

    def test_report_renders_two_runs(self, ledger_path, capsys):
        assert cli.main(["report", "--ledger", str(ledger_path)]) == 0
        out = capsys.readouterr().out
        assert "## fake @ tiny — 2 runs" in out
        assert "| r1 |" in out and "| r2 |" in out
        assert "metric movement" in out

    def test_report_empty_ledger(self, tmp_path, capsys):
        path = tmp_path / "none.jsonl"
        assert cli.main(["report", "--ledger", str(path)]) == 0
        assert "empty" in capsys.readouterr().out

    def test_report_filters_by_experiment(self, ledger_path, capsys):
        code = cli.main(
            ["report", "--ledger", str(ledger_path), "--experiment", "other"]
        )
        assert code == 0
        assert "empty" in capsys.readouterr().out


class TestCheckCli:
    """``check`` is the regression gate: 0 pass, 1 drift, 2 can't run."""

    def test_matching_baseline_exits_0(self, ledger_path, baseline_path, capsys):
        code = cli.main(
            ["check", "--baseline", str(baseline_path),
             "--ledger", str(ledger_path)]
        )
        assert code == 0
        assert "check ok" in capsys.readouterr().out

    def test_perturbed_baseline_exits_1(
        self, tmp_path, ledger_path, baseline_path, capsys
    ):
        """The acceptance drill: inflate one baseline metric beyond the
        tolerance and the same invocation flips from 0 to 1."""
        baseline = json.loads(baseline_path.read_text())
        baseline["metrics"]["sigma[vt]"] *= 1.5
        perturbed = tmp_path / "perturbed.json"
        perturbed.write_text(json.dumps(baseline))
        code = cli.main(
            ["check", "--baseline", str(perturbed),
             "--ledger", str(ledger_path)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL: metric drift: sigma[vt]" in out
        assert "check failed" in out

    def test_rtol_override_loosens_the_gate(
        self, tmp_path, ledger_path, baseline_path
    ):
        baseline = json.loads(baseline_path.read_text())
        baseline["metrics"]["sigma[vt]"] *= 1.5
        perturbed = tmp_path / "perturbed.json"
        perturbed.write_text(json.dumps(baseline))
        code = cli.main(
            ["check", "--baseline", str(perturbed),
             "--ledger", str(ledger_path), "--rtol", "0.9"]
        )
        assert code == 0

    def test_unreadable_baseline_exits_2(self, ledger_path, tmp_path, capsys):
        code = cli.main(
            ["check", "--baseline", str(tmp_path / "missing.json"),
             "--ledger", str(ledger_path)]
        )
        assert code == 2
        assert "cannot read baseline" in capsys.readouterr().err

    def test_no_matching_ledger_record_exits_2(
        self, tmp_path, baseline_path, capsys
    ):
        code = cli.main(
            ["check", "--baseline", str(baseline_path),
             "--ledger", str(tmp_path / "empty.jsonl")]
        )
        assert code == 2
        assert "no ledger record" in capsys.readouterr().err

    def test_update_refreshes_the_baseline(
        self, tmp_path, ledger_path, baseline_path, capsys
    ):
        """--update rewrites a drifting baseline from the latest run,
        after which the plain check passes again."""
        baseline = json.loads(baseline_path.read_text())
        baseline["metrics"]["sigma[vt]"] *= 1.5
        drifting = tmp_path / "drifting.json"
        drifting.write_text(json.dumps(baseline))
        argv = ["check", "--baseline", str(drifting),
                "--ledger", str(ledger_path)]
        assert cli.main(argv) == 1
        assert cli.main(argv + ["--update"]) == 0
        assert "baseline refreshed" in capsys.readouterr().out
        refreshed = json.loads(drifting.read_text())
        assert refreshed["metrics"]["sigma[vt]"] == 2.01
        assert cli.main(argv) == 0
