"""Array multiplier.

Classic carry-save array: AND partial products, rows of full/half
adders, final ripple for the upper half.  An n x m array produces the
design's deepest combinational paths (~n + m full-adder stages), which
is what gives the microcontroller its paper-like 50+-cell worst paths.
"""

from __future__ import annotations

from typing import List

from repro.errors import NetlistError
from repro.netlist.builder import Bus, NetlistBuilder
from repro.netlist.model import Netlist


def array_multiplier(builder: NetlistBuilder, a: Bus, b: Bus) -> Bus:
    """Unsigned product of ``a`` (n bits) and ``b`` (m bits): n+m bits."""
    if not a or not b:
        raise NetlistError("multiplier operands must be non-empty")
    with builder.scope(builder.fresh("mul")):
        # partial products: pp[j][i] = a[i] & b[j]
        partials: List[Bus] = [
            [builder.and_(a_bit, b_bit) for a_bit in a] for b_bit in b
        ]
        # accumulate row by row with ripple adders (carry-propagate
        # per row; simple, deep, and easy to verify).
        accum: Bus = list(partials[0])
        result: Bus = []
        for row_index in range(1, len(b)):
            result.append(accum[0])
            row = partials[row_index]
            upper = accum[1:]
            carry = builder.tie(0)
            summed: Bus = []
            for i in range(len(a)):
                left = upper[i] if i < len(upper) else builder.tie(0)
                s, carry = builder.addf(left, row[i], carry)
                summed.append(s)
            accum = summed + [carry]
        result.extend(accum)
        return result


def build_array_multiplier(width_a: int, width_b: int, name: str = "") -> Netlist:
    """Standalone multiplier design with ports a, b, p."""
    builder = NetlistBuilder(name or f"mult{width_a}x{width_b}")
    a = builder.input_bus("a", width_a)
    b = builder.input_bus("b", width_b)
    builder.output_bus("p", array_multiplier(builder, a, b))
    builder.netlist.validate()
    return builder.netlist
