"""Gate-level netlist substrate.

A :class:`~repro.netlist.model.Netlist` is a technology-independent
gate-level design: instances reference cell *families* from
:mod:`repro.cells.functions` (``ND2``, ``ADDF``, ``DFF``...), and the
synthesizer later binds each instance to a concrete drive strength
(``ND2_4``).  The subpackage also provides a functional simulator
(used to verify the generators bit-for-bit against Python semantics)
and parametric generators up to the ~20k-gate microcontroller design
the paper evaluates on.
"""

from repro.netlist.model import Instance, Net, Netlist, PinRef, PortDirection
from repro.netlist.builder import NetlistBuilder
from repro.netlist.simulate import simulate, simulate_sequence
from repro.netlist.verilog import parse_verilog, write_verilog

__all__ = [
    "Instance",
    "Net",
    "Netlist",
    "PinRef",
    "PortDirection",
    "NetlistBuilder",
    "simulate",
    "simulate_sequence",
    "parse_verilog",
    "write_verilog",
]
