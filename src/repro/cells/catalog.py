"""The 304-cell catalog (paper Appendix A).

The paper's statistical library contains exactly::

    19 inverters, 36 OR, 46 NAND, 43 NOR, 29 XNOR,
    34 adders, 27 multiplexers, 51 flip-flops, 12 latches, 7 other

This module reproduces that census with the same naming convention and
attaches to every cell the *electrical descriptor* the characterization
surrogate needs: output-stage stack depths, internal-stage count,
per-pin input-capacitance factors and an area model.

Electrical model summary (see :mod:`repro.characterization.devices`):

* a drive-strength-``s`` output stage uses devices of width
  ``w_unit * s * (1 + 0.6 * (stack - 1))`` — stacked devices are drawn
  wider, only partially compensating the series resistance, so
  high-fan-in gates are slower and more variable than inverters of the
  same strength (visible in paper Fig. 5 for NR4_6);
* complex cells (OR, XNOR, MUX, adders, flip-flops) have internal
  stages modelled as ``intrinsic_stages`` unit-stage delays that do not
  scale with the output drive — so upsizing a buffered cell does not
  proportionally grow its input load, as in real libraries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cells.functions import CellFunction, function_by_name
from repro.cells.naming import format_strength
from repro.errors import CatalogError


@dataclass(frozen=True)
class OutputDrive:
    """Electrical descriptor of one output pin's drive stage."""

    #: Series PMOS devices on the worst pull-up path (rise drive).
    stack_rise: int = 1
    #: Series NMOS devices on the worst pull-down path (fall drive).
    stack_fall: int = 1
    #: Internal stages (unit-stage delays) before the output stage.
    intrinsic_stages: float = 0.0
    #: Extra width multiplier of the output stage.
    width_factor: float = 1.0


@dataclass(frozen=True)
class CellSpec:
    """Catalog entry: one concrete cell (family + drive strength)."""

    name: str
    family: str
    function: CellFunction
    strength: float
    area: float
    drives: Dict[str, OutputDrive]
    input_cap_factor: Dict[str, float] = field(default_factory=dict)
    #: Maximum output load in pF (sets the LUT load range).
    max_load: float = 0.0

    @property
    def is_sequential(self) -> bool:
        return self.function.is_sequential

    def drive(self, output_pin: str) -> OutputDrive:
        """The drive descriptor of ``output_pin``."""
        try:
            return self.drives[output_pin]
        except KeyError:
            raise CatalogError(f"{self.name}: no output pin {output_pin}") from None

    def cap_factor(self, pin: str) -> float:
        """Input-capacitance factor of ``pin`` (default 1.0)."""
        return self.input_cap_factor.get(pin, 1.0)


# ---------------------------------------------------------------------------
# Family definitions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _FamilyDef:
    """Static family description used to stamp out catalog entries."""

    family: str
    function_name: str
    strengths: Tuple[float, ...]
    drives: Dict[str, OutputDrive]
    input_cap_factor: Dict[str, float]
    #: Transistor-count-like complexity driving the area model.
    complexity: float
    #: Census bucket of Appendix A this family belongs to.
    census_group: str


def _strengths(*values: float) -> Tuple[float, ...]:
    return tuple(float(v) for v in values)


_STR_19 = _strengths(0.5, 1, 1.5, 2, 3, 4, 5, 6, 8, 10, 12, 14, 16, 20, 24, 28, 32, 40, 48)
_STR_17 = _strengths(0.5, 1, 1.5, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16, 20, 24, 32)
_STR_16 = _strengths(0.5, 1, 1.5, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16, 20, 24, 32)
_STR_15 = _strengths(0.5, 1, 1.5, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 32)
_STR_14 = _strengths(0.5, 1, 1.5, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24)
_STR_14B = _strengths(0.5, 1, 1.5, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16, 20)
_STR_13 = _strengths(0.5, 1, 1.5, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20)
_STR_13B = _strengths(0.5, 1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24)
_STR_12 = _strengths(0.5, 1, 1.5, 2, 3, 4, 5, 6, 8, 10, 12, 16)
_STR_12B = _strengths(0.5, 1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20)
_STR_11 = _strengths(0.5, 1, 2, 3, 4, 5, 6, 8, 10, 12, 16)
_STR_10 = _strengths(0.5, 1, 2, 3, 4, 5, 6, 8, 10, 12)
_STR_8 = _strengths(1, 2, 3, 4, 5, 6, 8, 12)
_STR_7 = _strengths(1, 2, 4, 6, 8, 12, 16)
_STR_15X = _strengths(0.5, 1, 1.5, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16, 20, 24)
_STR_14X = _strengths(0.5, 1, 1.5, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24)


def _simple_drive(
    stack_rise: int, stack_fall: int, intrinsic: float = 0.0
) -> Dict[str, OutputDrive]:
    return {"Z": OutputDrive(stack_rise, stack_fall, intrinsic)}


def _family_defs() -> List[_FamilyDef]:
    defs: List[_FamilyDef] = []

    defs.append(_FamilyDef(
        family="INV", function_name="INV", strengths=_STR_19,
        drives=_simple_drive(1, 1), input_cap_factor={},
        complexity=0.5, census_group="inverter",
    ))

    for n, strengths in ((2, _STR_14), (3, _STR_11), (4, _STR_11)):
        defs.append(_FamilyDef(
            family=f"OR{n}", function_name=f"OR{n}", strengths=strengths,
            drives=_simple_drive(1, 1, intrinsic=0.5 + 0.3 * n),
            input_cap_factor={}, complexity=1.0 + 0.5 * n, census_group="or",
        ))

    for n, strengths in ((2, _STR_16), (3, _STR_15), (4, _STR_15)):
        defs.append(_FamilyDef(
            family=f"ND{n}", function_name=f"ND{n}", strengths=strengths,
            drives=_simple_drive(1, n), input_cap_factor={},
            complexity=0.5 + 0.5 * n, census_group="nand",
        ))

    for family, function_name, strengths, stack_rise, intrinsic in (
        ("NR2", "NR2", _STR_14B, 2, 0.0),
        ("NR2B", "NR2B", _STR_8, 2, 0.5),
        ("NR3", "NR3", _STR_11, 3, 0.0),
        ("NR4", "NR4", _STR_10, 4, 0.0),
    ):
        n = int(family[2]) if family[2].isdigit() else 2
        defs.append(_FamilyDef(
            family=family, function_name=function_name, strengths=strengths,
            drives=_simple_drive(stack_rise, 1, intrinsic),
            input_cap_factor={}, complexity=0.5 + 0.5 * n + (0.5 if "B" in family else 0.0),
            census_group="nor",
        ))

    for n, strengths, intrinsic in ((2, _STR_15X, 1.0), (3, _STR_14X, 2.0)):
        defs.append(_FamilyDef(
            family=f"XNR{n}", function_name=f"XNR{n}", strengths=strengths,
            drives=_simple_drive(2, 2, intrinsic),
            input_cap_factor={p: 1.8 for p in ("A", "B", "C")[:n]},
            complexity=2.0 + 1.0 * n, census_group="xnor",
        ))

    defs.append(_FamilyDef(
        family="ADDF", function_name="ADDF", strengths=_STR_17,
        drives={
            "S": OutputDrive(2, 2, intrinsic_stages=1.2),
            "CO": OutputDrive(2, 2, intrinsic_stages=0.7),
        },
        input_cap_factor={"A": 1.6, "B": 1.6, "CI": 1.2},
        complexity=6.0, census_group="adder",
    ))
    defs.append(_FamilyDef(
        family="ADDH", function_name="ADDH", strengths=_STR_17,
        drives={
            "S": OutputDrive(2, 2, intrinsic_stages=1.0),
            "CO": OutputDrive(2, 2, intrinsic_stages=0.6),
        },
        input_cap_factor={"A": 1.5, "B": 1.5},
        complexity=3.0, census_group="adder",
    ))

    defs.append(_FamilyDef(
        family="MUX2", function_name="MUX2", strengths=_STR_14,
        drives=_simple_drive(2, 2, intrinsic=0.8),
        input_cap_factor={"S": 1.8},
        complexity=2.5, census_group="mux",
    ))
    defs.append(_FamilyDef(
        family="MUX4", function_name="MUX4", strengths=_STR_13B,
        drives=_simple_drive(2, 2, intrinsic=1.6),
        input_cap_factor={"S0": 2.2, "S1": 2.2},
        complexity=5.0, census_group="mux",
    ))

    for family, strengths, complexity in (
        ("DFF", _STR_13, 6.0),
        ("DFFR", _STR_13, 6.5),
        ("DFFS", _STR_13, 6.5),
        ("DFFSR", _STR_12B, 7.0),
    ):
        defs.append(_FamilyDef(
            family=family, function_name=family, strengths=strengths,
            drives={"Q": OutputDrive(1, 1, intrinsic_stages=2.2)},
            input_cap_factor={"D": 0.8, "CP": 1.2, "RN": 1.0, "SN": 1.0},
            complexity=complexity, census_group="flipflop",
        ))

    defs.append(_FamilyDef(
        family="LATQ", function_name="LATQ", strengths=_STR_12,
        drives={"Q": OutputDrive(1, 1, intrinsic_stages=1.2)},
        input_cap_factor={"D": 0.8, "EN": 1.2},
        complexity=3.5, census_group="latch",
    ))

    defs.append(_FamilyDef(
        family="BUF", function_name="BUF", strengths=_STR_7,
        drives=_simple_drive(1, 1, intrinsic=1.0),
        input_cap_factor={},
        complexity=1.0, census_group="other",
    ))
    return defs


#: Expected census per Appendix A; validated by build_catalog and tests.
APPENDIX_A_CENSUS: Dict[str, int] = {
    "inverter": 19,
    "or": 36,
    "nand": 46,
    "nor": 43,
    "xnor": 29,
    "adder": 34,
    "mux": 27,
    "flipflop": 51,
    "latch": 12,
    "other": 7,
}

#: Area constant (um^2 per complexity unit) of the 40 nm surrogate.
_AREA_PER_COMPLEXITY = 0.9
#: Area contribution of the output stage per drive-strength unit.
_AREA_PER_STRENGTH = 0.32
#: Maximum load per drive-strength unit (pF): ~40x a unit-inverter
#: input capacitance.
_MAX_LOAD_PER_STRENGTH = 0.0105

#: Setup time of sequential cells (ns), constant in this surrogate.
SEQUENTIAL_SETUP_TIME = 0.045


def _cell_area(definition: _FamilyDef, strength: float) -> float:
    return _AREA_PER_COMPLEXITY * definition.complexity + _AREA_PER_STRENGTH * strength * len(
        definition.drives
    )


def _spec_from_def(definition: _FamilyDef, strength: float) -> CellSpec:
    function = function_by_name(definition.function_name)
    name = f"{definition.family}_{format_strength(strength)}"
    return CellSpec(
        name=name,
        family=definition.family,
        function=function,
        strength=strength,
        area=round(_cell_area(definition, strength), 4),
        drives=dict(definition.drives),
        input_cap_factor=dict(definition.input_cap_factor),
        max_load=_MAX_LOAD_PER_STRENGTH * strength,
    )


def build_catalog(families: Optional[Sequence[str]] = None) -> List[CellSpec]:
    """Build the cell catalog.

    Parameters
    ----------
    families:
        Optional subset of family names (e.g. ``["INV", "ND2"]``) for
        fast tests; by default the full 304-cell Appendix A catalog is
        produced and its census validated.
    """
    specs: List[CellSpec] = []
    census: Dict[str, int] = {}
    selected = set(families) if families is not None else None
    for definition in _family_defs():
        if selected is not None and definition.family not in selected:
            continue
        for strength in definition.strengths:
            specs.append(_spec_from_def(definition, strength))
            census[definition.census_group] = census.get(definition.census_group, 0) + 1
    if selected is None and census != APPENDIX_A_CENSUS:
        raise CatalogError(
            f"catalog census {census} does not match Appendix A {APPENDIX_A_CENSUS}"
        )
    if selected is not None:
        known = {d.family for d in _family_defs()}
        unknown = selected - known
        if unknown:
            raise CatalogError(f"unknown families requested: {sorted(unknown)}")
    return specs


def catalog_census(specs: Sequence[CellSpec]) -> Dict[str, int]:
    """Census of a catalog, keyed like :data:`APPENDIX_A_CENSUS`."""
    groups = {d.family: d.census_group for d in _family_defs()}
    census: Dict[str, int] = {}
    for spec in specs:
        group = groups[spec.family]
        census[group] = census.get(group, 0) + 1
    return census


def spec_by_name(specs: Sequence[CellSpec], name: str) -> CellSpec:
    """Find a spec by cell name; raises :class:`CatalogError` if absent."""
    for spec in specs:
        if spec.name == name:
            return spec
    raise CatalogError(f"no cell {name!r} in catalog")


def family_strengths(specs: Sequence[CellSpec], family: str) -> List[float]:
    """Sorted drive strengths available for ``family``."""
    strengths = sorted(spec.strength for spec in specs if spec.family == family)
    if not strengths:
        raise CatalogError(f"no cells of family {family!r} in catalog")
    return strengths
