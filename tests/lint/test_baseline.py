"""Baseline semantics: absorb, ratchet, rewrite deterministically."""

import json

import pytest

from repro.errors import LintError
from repro.lint import Baseline, Finding, write_baseline


def finding(rule="DET001", path="src/repro/flow/x.py", line=10, message="m"):
    return Finding(
        path=path, line=line, column=1, rule_id=rule, message=message
    )


class TestPartition:
    def test_baselined_finding_passes(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_baseline(target, [finding()])
        new, baselined = Baseline.load(target).partition([finding()])
        assert new == []
        assert len(baselined) == 1

    def test_new_finding_fails(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_baseline(target, [finding()])
        intruder = finding(rule="PROC002", message="lambda submitted")
        new, baselined = Baseline.load(target).partition(
            [finding(), intruder]
        )
        assert [f.rule_id for f in new] == ["PROC002"]
        assert len(baselined) == 1

    def test_line_drift_still_matches(self, tmp_path):
        """Baseline keys carry no line numbers, so shifted code keeps
        matching its committed entry."""
        target = tmp_path / "baseline.json"
        write_baseline(target, [finding(line=10)])
        new, baselined = Baseline.load(target).partition([finding(line=99)])
        assert new == []
        assert len(baselined) == 1

    def test_duplicate_entries_absorb_counted(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_baseline(target, [finding(line=1), finding(line=2)])
        three = [finding(line=1), finding(line=2), finding(line=3)]
        new, baselined = Baseline.load(target).partition(three)
        assert len(baselined) == 2
        assert len(new) == 1

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "nope.json")
        assert len(baseline) == 0
        new, baselined = baseline.partition([finding()])
        assert len(new) == 1 and baselined == []


class TestRatchet:
    def test_stale_count_reports_paid_debt(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_baseline(target, [finding(), finding(rule="API001")])
        baseline = Baseline.load(target)
        assert baseline.stale_count([finding()]) == 1
        assert baseline.stale_count([]) == 2

    def test_stale_entries_identify_the_retired_keys(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_baseline(
            target,
            [finding(), finding(rule="API001", path="src/gone.py")],
        )
        baseline = Baseline.load(target)
        stale = baseline.stale_entries([finding()])
        assert stale == [(("API001", "src/gone.py", "m"), 1)]

    def test_stale_entries_count_dropped_duplicates(self, tmp_path):
        """Three committed copies, one left in the code -> surplus 2."""
        target = tmp_path / "baseline.json"
        write_baseline(target, [finding(), finding(), finding()])
        baseline = Baseline.load(target)
        stale = baseline.stale_entries([finding()])
        assert stale == [(("DET001", "src/repro/flow/x.py", "m"), 2)]

    def test_stale_entries_empty_when_debt_is_live(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_baseline(target, [finding()])
        baseline = Baseline.load(target)
        assert baseline.stale_entries([finding(), finding()]) == []

    def test_update_shrinks_after_fix(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_baseline(target, [finding(), finding(rule="API001")])
        write_baseline(target, [finding()])  # the API001 debt was fixed
        assert len(Baseline.load(target)) == 1


class TestDeterministicWrite:
    def test_rewrite_is_byte_identical(self, tmp_path):
        findings = [
            finding(rule="PROC001", path="src/b.py", message="z"),
            finding(rule="DET001", path="src/a.py", message="a"),
            finding(rule="API001", path="src/b.py", message="a"),
        ]
        first = tmp_path / "one.json"
        second = tmp_path / "two.json"
        write_baseline(first, findings)
        write_baseline(second, list(reversed(findings)))
        assert first.read_bytes() == second.read_bytes()

    def test_entries_sorted_by_path_rule_message(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_baseline(
            target,
            [
                finding(rule="PROC001", path="src/b.py"),
                finding(rule="DET001", path="src/a.py"),
                finding(rule="API001", path="src/b.py"),
            ],
        )
        payload = json.loads(target.read_text())
        keys = [(e["path"], e["rule"]) for e in payload["findings"]]
        assert keys == sorted(keys)
        assert payload["version"] == 1
        assert target.read_text().endswith("\n")


class TestMalformedBaselines:
    @pytest.mark.parametrize(
        "content",
        [
            "not json at all",
            json.dumps({"version": 1}),
            json.dumps({"findings": [{"rule": "DET001"}]}),
            json.dumps({"findings": ["just-a-string"]}),
        ],
    )
    def test_malformed_baseline_raises_lint_error(self, tmp_path, content):
        target = tmp_path / "baseline.json"
        target.write_text(content)
        with pytest.raises(LintError):
            Baseline.load(target)
