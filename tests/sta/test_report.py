"""Timing/variation text reports."""

import pytest

from repro.sta.engine import analyze
from repro.sta.graph import TimingGraph
from repro.sta.paths import extract_worst_paths, worst_path
from repro.sta.report import (
    format_path,
    path_table,
    timing_summary,
    variation_summary,
)


@pytest.fixture()
def result(chain_netlist, statistical_library):
    graph = TimingGraph(chain_netlist, statistical_library)
    return analyze(graph, clock_period=2.0)


class TestReports:
    def test_format_path_lists_every_cell(self, result):
        path = worst_path(result)
        text = format_path(path)
        for step in path.steps:
            assert step.cell_name in text
        assert "slack" in text

    def test_timing_summary_flags_met(self, result):
        text = timing_summary(result)
        assert "MET" in text
        assert "WNS" in text
        assert f"{result.clock_period:.3f}" in text

    def test_timing_summary_flags_violated(self, chain_netlist, statistical_library):
        graph = TimingGraph(chain_netlist, statistical_library)
        tight = analyze(graph, clock_period=0.45)
        assert "VIOLATED" in timing_summary(tight)

    def test_variation_summary_reports_sigma(self, result, statistical_library):
        text = variation_summary(result, statistical_library)
        assert "design sigma" in text
        assert "mu+3sigma" in text

    def test_path_table_has_row_per_path(self, result, statistical_library):
        paths = extract_worst_paths(result)
        text = path_table(paths, statistical_library)
        assert len(text.splitlines()) == len(paths) + 1  # header + rows
