"""Known-good / known-bad snippets for every lint rule.

Each rule gets at least one snippet that must fire and several that
must stay silent — the silent cases pin down the false-positive
boundary (seeded RNG is fine, sorted iteration is fine, module-level
submissions are fine, ...).
"""

import textwrap

import pytest

from repro.lint import DEFAULT_RULES, LintEngine

ENGINE = LintEngine(DEFAULT_RULES)

#: A module path inside the DET001 deterministic zones.
ZONE = "src/repro/flow/fake_stage.py"
#: A module path outside them (observability is exempt).
OUTSIDE = "src/repro/observe/fake_sink.py"
#: The one module allowed to construct process pools (PROC003), used
#: by the PROC002 snippets so they exercise exactly one rule.
BACKENDS = "src/repro/parallel/backends.py"


def lint(code, path=ZONE):
    code = textwrap.dedent(code)
    return ENGINE.lint_source(code, path=path)


def rule_ids(code, path=ZONE):
    return [finding.rule_id for finding in lint(code, path=path)]


class TestDet001:
    def test_wall_clock_in_zone_fires(self):
        code = """
            import time

            def stage():
                return time.time()
        """
        findings = lint(code)
        assert [f.rule_id for f in findings] == ["DET001"]
        assert "time.time" in findings[0].message

    def test_from_import_wall_clock_fires(self):
        code = """
            from time import time

            def stage():
                return time()
        """
        assert rule_ids(code) == ["DET001"]

    def test_datetime_now_fires(self):
        code = """
            from datetime import datetime

            def stamp():
                return datetime.now()
        """
        assert rule_ids(code) == ["DET001"]

    def test_global_numpy_rng_fires(self):
        code = """
            import numpy as np

            def draw():
                return np.random.normal(0.0, 1.0)
        """
        assert rule_ids(code) == ["DET001"]

    def test_unseeded_default_rng_fires(self):
        code = """
            import numpy as np

            def draw():
                return np.random.default_rng().normal()
        """
        assert rule_ids(code) == ["DET001"]

    def test_global_random_module_fires(self):
        code = """
            import random

            def draw():
                return random.random()
        """
        assert rule_ids(code) == ["DET001"]

    def test_seeded_default_rng_is_clean(self):
        code = """
            import numpy as np

            def draw(seed):
                rng = np.random.default_rng(seed)
                return rng.normal()
        """
        assert rule_ids(code) == []

    def test_perf_counter_is_clean(self):
        # Measurement-only clocks never feed fingerprints.
        code = """
            import time

            def measure():
                return time.perf_counter()
        """
        assert rule_ids(code) == []

    def test_wall_clock_outside_zone_is_clean(self):
        code = """
            import time

            def span_start():
                return time.time()
        """
        assert rule_ids(code, path=OUTSIDE) == []

    def test_unrelated_attribute_chain_is_clean(self):
        # ``state.random.draw()`` is not the random module.
        code = """
            def draw(state):
                return state.random.choice([1, 2])
        """
        assert rule_ids(code) == []


class TestDet002:
    def test_set_arg_to_fingerprint_fires(self):
        code = """
            def stage_key(names):
                return fingerprint(set(names))
        """
        findings = lint(code)
        assert [f.rule_id for f in findings] == ["DET002"]

    def test_values_iteration_in_key_function_fires(self):
        code = """
            def cache_key(table):
                parts = []
                for value in table.values():
                    parts.append(value)
                return parts
        """
        assert rule_ids(code) == ["DET002"]

    def test_set_comprehension_iter_in_hash_scope_fires(self):
        code = """
            import hashlib

            def digest_names(names):
                h = hashlib.sha256()
                for name in {n.strip() for n in names}:
                    h.update(name.encode())
                return h.hexdigest()
        """
        assert rule_ids(code) == ["DET002"]

    def test_sorted_wrapping_is_clean(self):
        code = """
            def stage_key(names, table):
                a = fingerprint(sorted(set(names)))
                for value in sorted(table.values()):
                    a += value
                return a
        """
        assert rule_ids(code) == []

    def test_values_outside_hash_scope_is_clean(self):
        code = """
            def render(table):
                return [str(v) for v in table.values()]
        """
        assert rule_ids(code) == []


class TestProc001:
    def test_two_writes_in_append_block_fires(self):
        code = """
            def export(path, record):
                with open(path, "a") as handle:
                    handle.write(record)
                    handle.write("\\n")
        """
        findings = lint(code, path=OUTSIDE)
        assert [f.rule_id for f in findings] == ["PROC001"]
        assert "second write" in findings[0].message

    def test_write_in_loop_on_append_handle_fires(self):
        code = """
            def export(path, records):
                with open(path, mode="a") as handle:
                    for record in records:
                        handle.write(record + "\\n")
        """
        findings = lint(code, path=OUTSIDE)
        assert [f.rule_id for f in findings] == ["PROC001"]
        assert "loop" in findings[0].message

    def test_os_write_loop_on_append_fd_fires(self):
        code = """
            import os

            def export(path, records):
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND)
                for record in records:
                    os.write(fd, record)
        """
        assert rule_ids(code, path=OUTSIDE) == ["PROC001"]

    def test_single_shot_append_is_clean(self):
        code = """
            import os

            def export(path, record):
                line = record + "\\n"
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND)
                try:
                    os.write(fd, line.encode("utf-8"))
                finally:
                    os.close(fd)
        """
        assert rule_ids(code, path=OUTSIDE) == []

    def test_write_mode_file_is_exempt(self):
        # Truncate-mode files are single-owner; multi-write is fine.
        code = """
            def dump(path, records):
                with open(path, "w") as handle:
                    for record in records:
                        handle.write(record)
        """
        assert rule_ids(code, path=OUTSIDE) == []


class TestProc002:
    def test_lambda_submit_fires(self):
        code = """
            from concurrent.futures import ProcessPoolExecutor

            def run(items):
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(lambda x: x + 1, i) for i in items]
        """
        findings = lint(code, path=BACKENDS)
        assert [f.rule_id for f in findings] == ["PROC002"]
        assert "lambda" in findings[0].message

    def test_nested_function_submit_fires(self):
        code = """
            from concurrent.futures import ProcessPoolExecutor

            def run(items):
                def work(x):
                    return x + 1
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(work, i) for i in items]
        """
        assert rule_ids(code, path=BACKENDS) == ["PROC002"]

    def test_bound_method_submit_fires(self):
        code = """
            from concurrent.futures import ProcessPoolExecutor

            class Runner:
                def work(self, x):
                    return x + 1

                def run(self, items):
                    with ProcessPoolExecutor() as pool:
                        return [pool.submit(self.work, i) for i in items]
        """
        assert rule_ids(code, path=BACKENDS) == ["PROC002"]

    def test_executor_map_with_lambda_fires(self):
        code = """
            import concurrent.futures

            def run(items):
                pool = concurrent.futures.ProcessPoolExecutor(max_workers=2)
                return list(pool.map(lambda x: x * 2, items))
        """
        assert rule_ids(code, path=BACKENDS) == ["PROC002"]

    def test_module_level_function_is_clean(self):
        code = """
            from concurrent.futures import ProcessPoolExecutor

            def work(x):
                return x + 1

            def run(items):
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(work, i) for i in items]
        """
        assert rule_ids(code, path=BACKENDS) == []

    def test_partial_over_module_function_is_clean(self):
        code = """
            import functools
            from concurrent.futures import ProcessPoolExecutor

            def work(x, bias):
                return x + bias

            def run(items):
                with ProcessPoolExecutor() as pool:
                    task = functools.partial(work, bias=2)
                    return [pool.submit(task, i) for i in items]
        """
        # partial(...) bound to a name is opaque; the direct spelling
        # pool.submit(functools.partial(work, ...)) is checked instead.
        code2 = """
            import functools
            from concurrent.futures import ProcessPoolExecutor

            def work(x):
                return x

            def run(items):
                with ProcessPoolExecutor() as pool:
                    return [
                        pool.submit(functools.partial(work), i)
                        for i in items
                    ]
        """
        assert rule_ids(code, path=BACKENDS) == []
        assert rule_ids(code2, path=BACKENDS) == []

    def test_thread_pool_is_exempt(self):
        # ThreadPoolExecutor shares memory; closures are fine there.
        code = """
            from concurrent.futures import ThreadPoolExecutor

            def run(items):
                with ThreadPoolExecutor() as pool:
                    return [pool.submit(lambda x: x + 1, i) for i in items]
        """
        assert rule_ids(code, path=BACKENDS) == []


class TestProc003:
    def test_pool_in_flow_module_fires(self):
        code = """
            from concurrent.futures import ProcessPoolExecutor

            def fan_out(work, items):
                with ProcessPoolExecutor(max_workers=4) as pool:
                    futures = [pool.submit(work, i) for i in items]
                    return [f.result() for f in futures]
        """
        findings = lint(code)
        assert "PROC003" in [f.rule_id for f in findings]
        assert "ExecutorBackend" in findings[0].message

    def test_dotted_constructor_fires(self):
        code = """
            import concurrent.futures

            def fan_out(work, items):
                pool = concurrent.futures.ProcessPoolExecutor(2)
                return list(pool.map(work, items))
        """
        assert "PROC003" in rule_ids(code, path=OUTSIDE)

    def test_backends_module_is_exempt(self):
        code = """
            from concurrent.futures import ProcessPoolExecutor

            def fan_out(work, items):
                with ProcessPoolExecutor(max_workers=4) as pool:
                    futures = [pool.submit(work, i) for i in items]
                    return [f.result() for f in futures]
        """
        assert rule_ids(code, path=BACKENDS) == []

    def test_thread_pool_is_exempt(self):
        code = """
            from concurrent.futures import ThreadPoolExecutor

            def fan_out(work, items):
                with ThreadPoolExecutor() as pool:
                    return list(pool.map(work, items))
        """
        assert rule_ids(code, path=OUTSIDE) == []

    def test_code_outside_repro_is_exempt(self):
        code = """
            from concurrent.futures import ProcessPoolExecutor

            def fan_out(work, items):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(work, items))
        """
        import textwrap
        assert ENGINE.lint_source(
            textwrap.dedent(code), path="tools/helper.py", module="tools.helper"
        ) == []


class TestApi001:
    def test_assert_in_library_fires(self):
        code = """
            def check(value):
                assert value is not None
                return value
        """
        assert rule_ids(code) == ["API001"]

    def test_raise_bare_exception_fires(self):
        code = """
            def fail():
                raise Exception("boom")
        """
        findings = lint(code)
        assert [f.rule_id for f in findings] == ["API001"]
        assert "Exception" in findings[0].message

    def test_repro_error_is_clean(self):
        code = """
            from repro.errors import TuningError

            def fail():
                raise TuningError("threshold must be positive")
        """
        assert rule_ids(code) == []

    def test_bare_reraise_is_clean(self):
        code = """
            def forward():
                try:
                    risky()
                except ValueError:
                    raise
        """
        assert rule_ids(code) == []

    def test_code_outside_repro_is_exempt(self):
        code = """
            def check(value):
                assert value
        """
        assert ENGINE.lint_source(
            textwrap.dedent(code), path="tools/helper.py", module="tools.helper"
        ) == []


class TestObs001:
    def test_counter_outside_catalog_fires(self):
        code = """
            from repro.observe.metrics import get_metrics

            REQUESTS = get_metrics().counter(
                "repro_rogue_requests_total", "Rogue counter."
            )
        """
        findings = lint(code, path=ZONE)
        assert [f.rule_id for f in findings] == ["OBS001"]
        assert "repro_rogue_requests_total" in findings[0].message

    def test_gauge_and_histogram_fire_too(self):
        code = """
            from repro.observe.metrics import get_metrics

            G = get_metrics().gauge("repro_rogue_depth", "Rogue gauge.")
            H = get_metrics().histogram(
                "repro_rogue_seconds", "Rogue histogram.", buckets=(1.0,)
            )
        """
        assert rule_ids(code, path=OUTSIDE) == ["OBS001", "OBS001"]

    def test_catalog_module_is_exempt(self):
        code = """
            from repro.observe.metrics import get_metrics

            REQUESTS = get_metrics().counter(
                "repro_serve_requests_total", "Requests served."
            )
        """
        assert rule_ids(code, path="src/repro/observe/catalog.py") == []

    def test_non_repro_prefixed_names_are_clean(self):
        code = """
            def record(tracer, registry):
                tracer.gauge("workers", 4)
                registry.counter("custom_total", "Not ours.")
        """
        assert rule_ids(code, path=ZONE) == []

    def test_code_outside_repro_is_exempt(self):
        code = """
            REQUESTS = registry.counter("repro_test_total", "Test-only.")
        """
        assert ENGINE.lint_source(
            textwrap.dedent(code), path="tools/helper.py", module="tools.helper"
        ) == []


@pytest.mark.parametrize(
    "rule_id",
    ["DET001", "DET002", "PROC001", "PROC002", "PROC003", "API001", "OBS001"],
)
def test_every_rule_has_metadata(rule_id):
    rule = next(r for r in DEFAULT_RULES if r.rule_id == rule_id)
    assert rule.title and rule.hint and rule.rationale
    assert rule.node_types
