"""Netlist builder helpers."""

import itertools
import random

import pytest

from repro.errors import NetlistError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.simulate import int_to_bus_inputs, simulate, simulate_sequence

random.seed(5)


def run(netlist, inputs):
    full = dict(inputs)
    for port in netlist.input_ports():
        full.setdefault(port, port == "tie1")
    return simulate(netlist, full)


class TestNaming:
    def test_fresh_names_unique(self):
        builder = NetlistBuilder("n")
        names = {builder.fresh("x") for _ in range(50)}
        assert len(names) == 50

    def test_scopes_prefix_names(self):
        builder = NetlistBuilder("n")
        with builder.scope("alu"):
            with builder.scope("add"):
                name = builder.fresh("fa")
        assert name.startswith("alu/add/fa")

    def test_scope_exits_cleanly(self):
        builder = NetlistBuilder("n")
        with builder.scope("alu"):
            pass
        assert "/" not in builder.fresh("x")


class TestGateEmitters:
    def test_every_emitter_builds_valid_netlist(self):
        builder = NetlistBuilder("all")
        builder.clock()
        rst = builder.input("rst_n")
        a, b, c, d = (builder.input(n) for n in "abcd")
        builder.inv(a)
        builder.buf(a)
        builder.nand(a, b); builder.nand3(a, b, c); builder.nand4(a, b, c, d)
        builder.nor(a, b); builder.nor3(a, b, c); builder.nor4(a, b, c, d)
        builder.nor2b(a, b)
        builder.or_(a, b); builder.or3(a, b, c); builder.or4(a, b, c, d)
        builder.and_(a, b); builder.and3(a, b, c); builder.and4(a, b, c, d)
        builder.xnor(a, b); builder.xnor3(a, b, c); builder.xor(a, b)
        builder.mux2(a, b, c); builder.mux4(a, b, c, d, a, b)
        builder.addh(a, b); builder.addf(a, b, c)
        q = builder.dff(a)
        builder.dff(a, reset_n=rst)
        builder.latch(a, b)
        builder.output("q", q)
        builder.netlist.validate()

    def test_and_is_nand_plus_inv(self):
        builder = NetlistBuilder("a")
        out = builder.and_(builder.input("a"), builder.input("b"))
        builder.output("y", out)
        assert builder.netlist.family_histogram() == {"ND2": 1, "INV": 1}

    def test_xor_is_xnor_plus_inv(self):
        builder = NetlistBuilder("x")
        out = builder.xor(builder.input("a"), builder.input("b"))
        builder.output("y", out)
        assert builder.netlist.family_histogram() == {"XNR2": 1, "INV": 1}

    def test_dff_requires_clock(self):
        builder = NetlistBuilder("d")
        a = builder.input("a")
        with pytest.raises(NetlistError):
            builder.dff(a)

    def test_tie_nets_lazy_and_shared(self):
        builder = NetlistBuilder("t")
        assert builder.tie(0) == builder.tie(0)
        assert builder.tie(0) != builder.tie(1)
        assert builder.tie_values == {"tie0": 0, "tie1": 1}

    def test_tie_invalid_value(self):
        with pytest.raises(NetlistError):
            NetlistBuilder("t").tie(2)


class TestWordHelpers:
    def test_reduce_and(self):
        for n in (1, 2, 3, 4, 5, 9):
            builder = NetlistBuilder("r")
            bits = builder.input_bus("x", n)
            builder.output("y", builder.reduce_and(bits))
            netlist = builder.netlist
            for value in range(1 << n):
                out = run(netlist, int_to_bus_inputs("x", n, value))
                assert out["y"] == (value == (1 << n) - 1)

    def test_reduce_or(self):
        for n in (1, 3, 6):
            builder = NetlistBuilder("r")
            bits = builder.input_bus("x", n)
            builder.output("y", builder.reduce_or(bits))
            netlist = builder.netlist
            for value in range(1 << n):
                out = run(netlist, int_to_bus_inputs("x", n, value))
                assert out["y"] == (value != 0)

    def test_equals(self):
        builder = NetlistBuilder("e")
        a = builder.input_bus("a", 5)
        b = builder.input_bus("b", 5)
        builder.output("eq", builder.equals(a, b))
        netlist = builder.netlist
        for _ in range(30):
            x, y = random.randrange(32), random.randrange(32)
            out = run(netlist, {**int_to_bus_inputs("a", 5, x),
                                **int_to_bus_inputs("b", 5, y)})
            assert out["eq"] == (x == y)

    def test_incrementer_wraps(self):
        builder = NetlistBuilder("i")
        a = builder.input_bus("a", 4)
        builder.output_bus("y", builder.incrementer(a))
        netlist = builder.netlist
        for value in range(16):
            out = run(netlist, int_to_bus_inputs("a", 4, value))
            got = sum(1 << i for i in range(4) if out[f"y[{i}]"])
            assert got == (value + 1) % 16

    def test_decoder_one_hot(self):
        builder = NetlistBuilder("d")
        sel = builder.input_bus("s", 3)
        outs = builder.decoder(sel)
        builder.output_bus("y", outs)
        netlist = builder.netlist
        for value in range(8):
            out = run(netlist, int_to_bus_inputs("s", 3, value))
            pattern = [out[f"y[{i}]"] for i in range(8)]
            assert pattern == [i == value for i in range(8)]

    def test_mux_tree(self):
        builder = NetlistBuilder("m")
        words = [builder.input_bus(f"w{i}", 4) for i in range(8)]
        sel = builder.input_bus("s", 3)
        builder.output_bus("y", builder.mux_tree(words, sel))
        netlist = builder.netlist
        values = [random.randrange(16) for _ in range(8)]
        for pick in range(8):
            inputs = {}
            for i, v in enumerate(values):
                inputs.update(int_to_bus_inputs(f"w{i}", 4, v))
            inputs.update(int_to_bus_inputs("s", 3, pick))
            out = run(netlist, inputs)
            got = sum(1 << i for i in range(4) if out[f"y[{i}]"])
            assert got == values[pick]

    def test_mux_tree_width_check(self):
        builder = NetlistBuilder("m")
        words = [builder.input_bus(f"w{i}", 2) for i in range(3)]
        sel = builder.input_bus("s", 2)
        with pytest.raises(NetlistError):
            builder.mux_tree(words, sel)

    def test_width_mismatch_rejected(self):
        builder = NetlistBuilder("w")
        a = builder.input_bus("a", 3)
        b = builder.input_bus("b", 4)
        with pytest.raises(NetlistError):
            builder.and_word(a, b)

    def test_register_en_holds(self):
        builder = NetlistBuilder("r")
        builder.clock()
        d = builder.input_bus("d", 3)
        en = builder.input("en")
        builder.output_bus("q", builder.register_en(d, en))
        netlist = builder.netlist

        def cycle(value, enable):
            inputs = {"clk": False, "en": enable, **int_to_bus_inputs("d", 3, value)}
            for port in netlist.input_ports():
                inputs.setdefault(port, False)
            return inputs

        observed = simulate_sequence(
            netlist, [cycle(5, True), cycle(2, False), cycle(2, True), cycle(0, False)]
        )
        values = [sum(1 << i for i in range(3) if o[f"q[{i}]"]) for o in observed]
        assert values == [0, 5, 5, 2]
