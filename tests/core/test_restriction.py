"""Per-pin LUT restriction (paper Sec. VI.C)."""

import numpy as np
import pytest

from repro.core.restriction import (
    SlewLoadWindow,
    full_window,
    pin_equivalent_sigma,
    restrict_cell,
    restrict_pin,
    window_from_rectangle,
)
from repro.core.rectangle import Rectangle
from repro.errors import TuningError


class TestSlewLoadWindow:
    def test_allows_inside(self):
        window = SlewLoadWindow(0.01, 0.5, 0.001, 0.01)
        assert window.allows(0.1, 0.005)

    def test_rejects_outside(self):
        window = SlewLoadWindow(0.01, 0.5, 0.001, 0.01)
        assert not window.allows(0.6, 0.005)   # slew too high
        assert not window.allows(0.1, 0.02)    # load too high
        assert not window.allows(0.001, 0.005)  # slew below minimum

    def test_boundary_tolerance(self):
        window = SlewLoadWindow(0.01, 0.5, 0.001, 0.01)
        assert window.allows(0.5 + 1e-12, 0.01)

    def test_invalid_ordering_rejected(self):
        with pytest.raises(TuningError):
            SlewLoadWindow(0.5, 0.01, 0.001, 0.01)

    def test_slack_sign(self):
        window = SlewLoadWindow(0.0, 0.5, 0.0, 0.01)
        assert window.slack_to(0.1, 0.005) > 0
        assert window.slack_to(0.9, 0.005) < 0


class TestPinRestriction:
    def test_huge_threshold_keeps_full_grid(self, statistical_library):
        pin = statistical_library.cell("INV_1").pin("Z")
        window = restrict_pin(pin, threshold=100.0)
        equivalent = pin_equivalent_sigma(pin)
        assert window == full_window(equivalent)

    def test_threshold_at_max_keeps_full_grid(self, statistical_library):
        """Values equal to the threshold stay acceptable (Sec. VI.C)."""
        pin = statistical_library.cell("INV_1").pin("Z")
        equivalent = pin_equivalent_sigma(pin)
        window = restrict_pin(pin, threshold=float(equivalent.values.max()))
        assert window == full_window(equivalent)

    def test_tiny_threshold_removes_pin(self, statistical_library):
        pin = statistical_library.cell("INV_1").pin("Z")
        assert restrict_pin(pin, threshold=1e-9) is None

    def test_moderate_threshold_shrinks_window(self, statistical_library):
        pin = statistical_library.cell("INV_1").pin("Z")
        equivalent = pin_equivalent_sigma(pin)
        mid = float(np.median(equivalent.values))
        window = restrict_pin(pin, threshold=mid)
        full = full_window(equivalent)
        assert window is not None
        assert (
            window.max_load < full.max_load or window.max_slew < full.max_slew
        )

    def test_window_region_sigma_within_threshold(self, statistical_library):
        """Everything inside the returned window is acceptable."""
        pin = statistical_library.cell("ND2_1").pin("Z")
        equivalent = pin_equivalent_sigma(pin)
        threshold = float(np.quantile(equivalent.values, 0.6))
        window = restrict_pin(pin, threshold)
        assert window is not None
        rows = (equivalent.index_1 >= window.min_slew) & (
            equivalent.index_1 <= window.max_slew
        )
        cols = (equivalent.index_2 >= window.min_load) & (
            equivalent.index_2 <= window.max_load
        )
        assert np.all(equivalent.values[np.ix_(rows, cols)] <= threshold + 1e-12)

    def test_high_drive_needs_no_restriction_at_moderate_threshold(
        self, statistical_library
    ):
        """Paper Fig. 4: strong cells stay fully usable where weak ones
        get cut — the selectivity tuning exploits."""
        strong_pin = statistical_library.cell("INV_8").pin("Z")
        threshold = float(pin_equivalent_sigma(strong_pin).values.max())
        strong = restrict_pin(strong_pin, threshold)
        weak = restrict_pin(statistical_library.cell("INV_1").pin("Z"), threshold)
        weak_full = full_window(
            pin_equivalent_sigma(statistical_library.cell("INV_1").pin("Z"))
        )
        assert strong == full_window(pin_equivalent_sigma(strong_pin))
        assert weak is None or (
            weak.max_load < weak_full.max_load or weak.max_slew < weak_full.max_slew
        )

    def test_invalid_threshold_rejected(self, statistical_library):
        pin = statistical_library.cell("INV_1").pin("Z")
        with pytest.raises(TuningError):
            restrict_pin(pin, threshold=0.0)

    def test_nominal_pin_rejected(self, nominal_library):
        with pytest.raises(TuningError):
            restrict_pin(nominal_library.cell("INV_1").pin("Z"), 0.02)


class TestCellRestriction:
    def test_all_output_pins_windowed(self, statistical_library):
        windows = restrict_cell(statistical_library.cell("ADDF_2"), 100.0)
        assert set(windows) == {"S", "CO"}

    def test_worst_case_across_arcs(self, statistical_library):
        """The pin equivalent must take the max over every arc's sigma
        tables (Sec. VI.C: "the worst case situation")."""
        pin = statistical_library.cell("ADDF_2").pin("S")
        equivalent = pin_equivalent_sigma(pin)
        stacked = np.stack(
            [t.values for arc in pin.timing for t in arc.sigma_tables()]
        )
        assert np.allclose(equivalent.values, stacked.max(axis=0))


class TestWindowFromRectangle:
    def test_maps_indices_to_axes(self, statistical_library):
        pin = statistical_library.cell("INV_1").pin("Z")
        equivalent = pin_equivalent_sigma(pin)
        window = window_from_rectangle(equivalent, Rectangle(0, 0, 2, 3))
        assert window.min_slew == equivalent.index_1[0]
        assert window.max_slew == equivalent.index_1[2]
        assert window.max_load == equivalent.index_2[3]
