"""Standard-cell substrate: naming, logic functions, the 304-cell catalog.

The catalog reproduces the census of the paper's Appendix A exactly
(19 inverters, 36 OR, 46 NAND, 43 NOR, 29 XNOR, 34 adders, 27
multiplexers, 51 flip-flops, 12 latches, 7 other = 304 cells) using the
paper's naming convention ``Function[NrInputs]_[Ability_]Strength``
with ``P`` as decimal separator (e.g. ``INV_0P5``, ``NR2B_2``).
"""

from repro.cells.naming import CellName, format_cell_name, parse_cell_name
from repro.cells.functions import CellFunction, FUNCTIONS, function_by_name
from repro.cells.catalog import (
    CellSpec,
    OutputDrive,
    build_catalog,
    catalog_census,
    spec_by_name,
)

__all__ = [
    "CellName",
    "format_cell_name",
    "parse_cell_name",
    "CellFunction",
    "FUNCTIONS",
    "function_by_name",
    "CellSpec",
    "OutputDrive",
    "build_catalog",
    "catalog_census",
    "spec_by_name",
]
