"""Fig. 6 — largest-rectangle extraction on a real binary LUT.

Shows Algorithm 1 running on the INV_1 sigma LUT binarized at a
mid-range threshold, including the marked far-corner entry the sigma
threshold is read from.
"""

from __future__ import annotations

import numpy as np

from repro.core.binary_lut import binarize_at_most
from repro.core.rectangle import largest_rectangle, largest_rectangle_paper
from repro.core.restriction import pin_equivalent_sigma
from repro.errors import TuningError
from repro.experiments.base import ExperimentContext, ExperimentResult


def run(context: ExperimentContext, cell: str = "INV_1") -> ExperimentResult:
    """Build this experiment's rows (see the module docstring)."""
    library = context.flow.statistical_library
    equivalent = pin_equivalent_sigma(library.cell(cell).pin("Z"))
    threshold = float(np.quantile(equivalent.values, 0.55))
    binary = binarize_at_most(equivalent.values, threshold)
    rect = largest_rectangle(binary)
    literal = largest_rectangle_paper(binary)
    if rect is None or rect != literal:
        raise TuningError(
            "optimized largest_rectangle diverged from the literal "
            f"Algorithm 1 on {cell}: optimized={rect}, literal={literal}"
        )

    rows = []
    for i in range(binary.shape[0]):
        rows.append({
            "slew_ns": float(equivalent.index_1[i]),
            "binary_row": "".join("1" if b else "0" for b in binary[i]),
            "in_rect": "".join(
                "#" if rect.contains(i, j) else "." for j in range(binary.shape[1])
            ),
        })
    row, col = rect.far_corner
    return ExperimentResult(
        experiment_id="fig06",
        title=f"Largest rectangle in the binary LUT of {cell}",
        rows=rows,
        notes=(
            f"threshold {threshold:.4f} ns; rectangle area {rect.area} of "
            f"{binary.size}; marked far corner ({row},{col}) -> sigma "
            f"{float(equivalent.values[row, col]):.4f} ns; optimized == "
            "literal Algorithm 1"
        ),
    )
