"""Tuning-as-a-service: the asyncio HTTP front of the pipeline.

The package turns the batch flow into a long-lived service without
adding a single dependency: a hand-rolled asyncio HTTP/1.1 server
(:mod:`~repro.serve.server`), a versioned typed request/response
schema (:mod:`~repro.serve.schema`), in-flight request coalescing
keyed on the pipeline's chained content fingerprints
(:mod:`~repro.serve.coalesce`), bounded dispatch onto the existing
execution backends (:class:`~repro.parallel.backends.AsyncDispatcher`)
and warm-hit streaming straight from the artifact store
(:mod:`~repro.serve.handlers`).  A blocking typed client and an async
load generator (:mod:`~repro.serve.client`,
:mod:`~repro.serve.loadgen`) complete the loop.

Start one from the CLI::

    python -m repro serve --port 8731

and talk to it with :class:`TuningClient` or plain ``curl``.
"""

from repro.serve.client import TuningClient, request_async
from repro.serve.coalesce import RequestCoalescer
from repro.serve.handlers import TuningService
from repro.serve.loadgen import LoadReport, run_burst, run_burst_sync
from repro.serve.schema import (
    SCHEMA_VERSION,
    ErrorResponse,
    StatusRequest,
    StatusResponse,
    SweepRequest,
    SweepResponse,
    TuneRequest,
    TuneResponse,
    error_from_payload,
    error_response,
    parse_request,
    parse_response,
)
from repro.serve.server import TuningServer

__all__ = [
    "ErrorResponse",
    "LoadReport",
    "RequestCoalescer",
    "SCHEMA_VERSION",
    "StatusRequest",
    "StatusResponse",
    "SweepRequest",
    "SweepResponse",
    "TuneRequest",
    "TuneResponse",
    "TuningClient",
    "TuningServer",
    "TuningService",
    "error_from_payload",
    "error_response",
    "parse_request",
    "parse_response",
    "request_async",
    "run_burst",
    "run_burst_sync",
]
