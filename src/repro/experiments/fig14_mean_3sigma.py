"""Fig. 14 — mean + 3 sigma path delay per depth, baseline vs tuned.

The paper's per-path scatter becomes per-depth aggregates: mean path
delay, worst mu+3sigma, and the count of paths whose mu+3sigma exceeds
the effective clock (the would-fail population); tuning makes the
population more homogeneous and lowers the worst case (2.23 -> 2.19 ns
in the paper).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.experiments.base import ExperimentContext, ExperimentResult


def run(
    context: ExperimentContext,
    method: str = "sigma_ceiling",
    parameter: float = 0.03,
    period: Optional[float] = None,
) -> ExperimentResult:
    """Build this experiment's rows (see the module docstring)."""
    flow = context.flow
    clock = period if period is not None else context.high_performance_period
    effective = clock - flow.config.guard_band
    rows: List[dict] = []
    summary = {}
    for label, run_at in (
        ("baseline", flow.baseline(clock)),
        ("tuned", flow.tuned(clock, method, parameter)),
    ):
        by_depth: Dict[int, List] = {}
        for stats in run_at.stats.path_stats:
            by_depth.setdefault(stats.depth, []).append(stats)
        for depth in sorted(by_depth):
            stats = by_depth[depth]
            rows.append({
                "design": label,
                "depth": depth,
                "mean_delay": float(np.mean([s.mean for s in stats])),
                "worst_mu_plus_3s": float(max(s.three_sigma for s in stats)),
            })
        three_sigmas = [s.three_sigma for s in run_at.stats.path_stats]
        summary[label] = {
            "worst": max(three_sigmas),
            "violating": sum(1 for v in three_sigmas if v > effective),
        }
    return ExperimentResult(
        experiment_id="fig14",
        title=f"mean + 3 sigma per path depth at {clock:g} ns "
              f"(effective {effective:g} ns)",
        rows=rows,
        notes=(
            f"worst mu+3sigma: baseline {summary['baseline']['worst']:.4f} ns "
            f"-> tuned {summary['tuned']['worst']:.4f} ns; paths above the "
            f"effective clock: baseline {summary['baseline']['violating']} -> "
            f"tuned {summary['tuned']['violating']} "
            "(paper: worst case 2.23 -> 2.19 ns)"
        ),
    )
