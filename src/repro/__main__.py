"""Command-line entry point: reproduce the paper's tables and figures.

Usage::

    python -m repro list                  # available experiments
    python -m repro run fig04 table2      # run a selection
    python -m repro run --all             # everything (synthesis-heavy)
    python -m repro run --all --jobs 0    # characterize on every CPU
    python -m repro run fig07 --no-cache  # bypass the on-disk caches
    python -m repro run fig10 --manifest  # print the stage manifest
    python -m repro cache stats           # cache location and size
    python -m repro cache clear           # drop libraries and artifacts
    REPRO_SCALE=paper python -m repro run table1   # full-scale flow

Every pipeline stage (characterized library, tuning, synthesis, worst
paths, design statistics, minimum-period search) is content-addressed
and memoized under ``$REPRO_CACHE_DIR`` (or ``~/.cache/repro``); a warm
store makes repeated runs skip synthesis entirely, ``--jobs`` fans both
characterization and the evaluation sweep out over worker processes
with bit-identical results, and ``--manifest`` prints what each run
served from the store versus computed.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.experiments.runner import (
    ALL_EXPERIMENTS,
    LIBRARY_ONLY,
    build_context,
    run_experiments,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce 'Standard Cell Library Tuning for "
        "Variability Tolerant Designs' (DATE 2014).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_parser = sub.add_parser("run", help="run experiments")
    run_parser.add_argument("ids", nargs="*", help="experiment ids (see list)")
    run_parser.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    run_parser.add_argument(
        "--library-only",
        action="store_true",
        help="run only the fast, synthesis-free experiments",
    )
    run_parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for characterization and the evaluation "
        "sweep (1 = serial, 0 = one per CPU; default from REPRO_JOBS)",
    )
    run_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the on-disk library cache and "
        "artifact store",
    )
    run_parser.add_argument(
        "--manifest",
        action="store_true",
        help="after each experiment, print the run manifest (stage "
        "fingerprints, cache hit/miss, wall time)",
    )
    cache_parser = sub.add_parser(
        "cache", help="inspect or clear the library cache and artifact store"
    )
    cache_parser.add_argument(
        "action", choices=("stats", "clear"), help="what to do with the cache"
    )
    return parser


def _run_cache_command(action: str) -> int:
    """Handle ``python -m repro cache stats|clear`` for both halves of
    the on-disk state: the ``.npz`` library cache and the staged
    artifact store."""
    from repro.parallel import ArtifactStore, LibraryCache

    cache = LibraryCache()
    store = ArtifactStore()
    if action == "stats":
        print(cache.stats().to_text())
        print(store.stats().to_text())
        return 0
    removed = cache.clear()
    print(f"removed {removed} cache entries from {cache.directory}")
    removed = store.clear()
    print(f"removed {removed} stage artifacts from {store.directory}")
    return 0


def main(argv: List[str]) -> int:
    """Parse arguments and dispatch to the selected subcommand."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id, fn in ALL_EXPERIMENTS.items():
            doc = (fn.__module__.split(".")[-1]).replace("_", " ")
            tag = " (library-only)" if experiment_id in LIBRARY_ONLY else ""
            print(f"{experiment_id:8s} {doc}{tag}")
        return 0
    if args.command == "cache":
        return _run_cache_command(args.action)

    if args.all:
        ids = list(ALL_EXPERIMENTS)
    elif args.library_only:
        ids = list(LIBRARY_ONLY)
    else:
        ids = args.ids
    unknown = [i for i in ids if i not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; try 'python -m repro list'")
        return 2
    if not ids:
        print("nothing to run; pass experiment ids, --all or --library-only")
        return 2

    context = build_context(
        jobs=args.jobs, cache=False if args.no_cache else None
    )
    for experiment_id in ids:
        start = time.time()
        result = run_experiments(context, ids=[experiment_id])[experiment_id]
        print(result.to_text())
        print(f"[{experiment_id} finished in {time.time() - start:.1f}s]\n")
    if args.manifest:
        print(context.flow.manifest.to_text())
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
