"""Process-variation substrate.

Models the two variation classes the paper separates (Sec. I):

* **global (inter-die)** variation — shared by every cell on a die;
  represented by :class:`~repro.variation.process.Corner` shifts plus a
  sampled :class:`~repro.variation.montecarlo.GlobalVariation`;
* **local (intra-die / mismatch)** variation — independent per device,
  following the Pelgrom law (:mod:`repro.variation.pelgrom`), sampled
  per cell arc by :class:`~repro.variation.montecarlo.MonteCarloSampler`.
"""

from repro.variation.process import (
    Corner,
    TechnologyParams,
    CORNERS,
    typical_corner,
    fast_corner,
    slow_corner,
)
from repro.variation.pelgrom import PelgromModel
from repro.variation.montecarlo import (
    ArcVariation,
    CellVariation,
    GlobalVariation,
    MonteCarloSampler,
)

__all__ = [
    "Corner",
    "TechnologyParams",
    "CORNERS",
    "typical_corner",
    "fast_corner",
    "slow_corner",
    "PelgromModel",
    "ArcVariation",
    "CellVariation",
    "GlobalVariation",
    "MonteCarloSampler",
]
