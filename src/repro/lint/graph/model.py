"""The whole-program model the graph rules run on.

One :class:`ProgramGraph` represents a parsed source tree: every
module, every class with its inferred attribute types, every function
(module-level, method, nested, async or not) with its resolved call
sites and state mutations, plus the module-level import edges the
layering rule checks.

Resolution keys are strings so the whole graph serializes to JSON for
the content-hash cache (:mod:`repro.lint.graph.cache`):

* ``"repro.flow.pipeline:run"`` — a module-level function;
* ``"repro.serve.handlers:TuningService.tune"`` — a method;
* ``"repro.serve.handlers:TuningService.tune.<locals>.probe"`` — a
  nested function (only reachable when called by name);
* ``"repro.parallel.artifacts:ArtifactStore"`` — a class (also the
  key format for inferred types);
* ``"ext:pathlib.Path.glob"`` — an external dotted name, fully
  alias-expanded;
* ``"?:<dotted>"`` — a name the builder could not ground (rules treat
  these as opaque: never blocking, never deterministic, never a sink).

Everything here is a value object: building happens in
:mod:`repro.lint.graph.builder`, judging in
:mod:`repro.lint.graph.rules`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

#: Serialization format version, stamped into cached graph files; bump
#: on any model change so stale caches are rebuilt, never misread.
GRAPH_SCHEMA_VERSION = 1

#: Prefix marking an external (non-tree) resolution key.
EXTERNAL = "ext:"

#: Prefix marking an unresolvable name (opaque to every rule).
UNKNOWN = "?:"


def external(dotted: str) -> str:
    """The resolution key of an external dotted name."""
    return EXTERNAL + dotted


def unknown(dotted: str) -> str:
    """The resolution key of a name that could not be grounded."""
    return UNKNOWN + dotted


def is_internal(key: str) -> bool:
    """Whether a resolution key points inside the analyzed tree."""
    return not (key.startswith(EXTERNAL) or key.startswith(UNKNOWN))


@dataclass
class CallSite:
    """One call expression inside a function body."""

    #: Resolution key of the call target (see the module docstring).
    callee: str
    line: int
    column: int
    #: The call appears inside a ``return`` expression — the channel
    #: DET003 propagates nondeterminism through.
    in_return: bool = False
    #: The call is lexically inside a ``with <...>.lock:`` block.
    under_lock: bool = False
    #: Resolution keys of arguments that are themselves direct calls
    #: (``sink(f(x))``), in positional order.
    arg_calls: List[str] = field(default_factory=list)
    #: Plain ``Name`` arguments (``sink(value)``), for local
    #: assignment tracking in DET003.
    arg_names: List[str] = field(default_factory=list)

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready rendering (compact: defaults omitted)."""
        payload: Dict[str, Any] = {
            "c": self.callee, "l": self.line, "o": self.column,
        }
        if self.in_return:
            payload["r"] = 1
        if self.under_lock:
            payload["k"] = 1
        if self.arg_calls:
            payload["ac"] = self.arg_calls
        if self.arg_names:
            payload["an"] = self.arg_names
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "CallSite":
        """Rebuild from :meth:`to_payload` output."""
        return cls(
            callee=payload["c"],
            line=payload["l"],
            column=payload["o"],
            in_return=bool(payload.get("r")),
            under_lock=bool(payload.get("k")),
            arg_calls=list(payload.get("ac", [])),
            arg_names=list(payload.get("an", [])),
        )


@dataclass
class Mutation:
    """One write to attribute state (``recv.attr = ...``, ``recv.attr
    += ...``, ``recv.attr[k] = ...`` or ``recv.attr.append(...)``)."""

    #: Root receiver: ``"self"`` or the local/parameter name.
    receiver: str
    #: Inferred type key of the receiver (``""`` when unknown; for
    #: ``self`` this is the enclosing class key).
    receiver_type: str
    #: The attribute written through.
    attr: str
    line: int
    column: int
    under_lock: bool = False

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready rendering."""
        payload: Dict[str, Any] = {
            "r": self.receiver, "t": self.receiver_type, "a": self.attr,
            "l": self.line, "o": self.column,
        }
        if self.under_lock:
            payload["k"] = 1
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Mutation":
        """Rebuild from :meth:`to_payload` output."""
        return cls(
            receiver=payload["r"],
            receiver_type=payload["t"],
            attr=payload["a"],
            line=payload["l"],
            column=payload["o"],
            under_lock=bool(payload.get("k")),
        )


@dataclass
class FunctionNode:
    """One function/method/nested def in the program."""

    #: Full resolution key (``module:qualname``).
    key: str
    module: str
    #: Dotted name inside the module (``Class.method``,
    #: ``outer.<locals>.inner``).
    qualname: str
    line: int
    is_async: bool = False
    #: Not a module-level def and not a class method — only reachable
    #: when called by name inside its enclosing function.
    is_nested: bool = False
    #: Key of the enclosing class for methods, else ``""``.
    class_key: str = ""
    #: Resolved key of the annotated return type (``Optional[X]`` and
    #: ``X | None`` unwrap to ``X``); ``""`` when unannotated.
    return_type: str = ""
    calls: List[CallSite] = field(default_factory=list)
    mutations: List[Mutation] = field(default_factory=list)
    #: Local names assigned from a single direct call
    #: (``x = f(...)`` -> ``{"x": key_of_f}``); best-effort, last
    #: assignment wins.
    var_sources: Dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        """The bare function name (last qualname segment)."""
        return self.qualname.rpartition(".")[2]

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready rendering."""
        payload: Dict[str, Any] = {
            "key": self.key,
            "module": self.module,
            "qualname": self.qualname,
            "line": self.line,
        }
        if self.is_async:
            payload["async"] = 1
        if self.is_nested:
            payload["nested"] = 1
        if self.class_key:
            payload["class"] = self.class_key
        if self.return_type:
            payload["ret"] = self.return_type
        if self.calls:
            payload["calls"] = [c.to_payload() for c in self.calls]
        if self.mutations:
            payload["mutations"] = [m.to_payload() for m in self.mutations]
        if self.var_sources:
            payload["vars"] = dict(sorted(self.var_sources.items()))
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "FunctionNode":
        """Rebuild from :meth:`to_payload` output."""
        return cls(
            key=payload["key"],
            module=payload["module"],
            qualname=payload["qualname"],
            line=payload["line"],
            is_async=bool(payload.get("async")),
            is_nested=bool(payload.get("nested")),
            class_key=payload.get("class", ""),
            return_type=payload.get("ret", ""),
            calls=[CallSite.from_payload(c) for c in payload.get("calls", [])],
            mutations=[
                Mutation.from_payload(m) for m in payload.get("mutations", [])
            ],
            var_sources=dict(payload.get("vars", {})),
        )


@dataclass
class ClassNode:
    """One class definition with its inferred attribute types."""

    #: Full resolution key (``module:Name``).
    key: str
    module: str
    name: str
    line: int
    #: Method name -> function key.
    methods: Dict[str, str] = field(default_factory=dict)
    #: ``self.attr`` -> inferred type key (class key or external).
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: Attributes assigned a ``threading.Lock()``/``RLock()``.
    lock_attrs: List[str] = field(default_factory=list)

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready rendering."""
        return {
            "key": self.key,
            "module": self.module,
            "name": self.name,
            "line": self.line,
            "methods": dict(sorted(self.methods.items())),
            "attr_types": dict(sorted(self.attr_types.items())),
            "lock_attrs": sorted(self.lock_attrs),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ClassNode":
        """Rebuild from :meth:`to_payload` output."""
        return cls(
            key=payload["key"],
            module=payload["module"],
            name=payload["name"],
            line=payload["line"],
            methods=dict(payload.get("methods", {})),
            attr_types=dict(payload.get("attr_types", {})),
            lock_attrs=list(payload.get("lock_attrs", [])),
        )


@dataclass
class ImportEdge:
    """One module-level ``import``/``from ... import`` of a tree module."""

    target: str
    line: int

    def to_payload(self) -> List[Any]:
        """JSON-ready rendering."""
        return [self.target, self.line]

    @classmethod
    def from_payload(cls, payload: List[Any]) -> "ImportEdge":
        """Rebuild from :meth:`to_payload` output."""
        return cls(target=str(payload[0]), line=int(payload[1]))


@dataclass
class ModuleNode:
    """One parsed source file."""

    name: str
    #: Repo-relative posix path (what findings report).
    path: str
    #: Module-level imports of other tree modules (ARCH001's graph).
    imports: List[ImportEdge] = field(default_factory=list)
    #: Line -> suppressed rule ids (``# repro: noqa[...]``).
    noqa: Dict[int, List[str]] = field(default_factory=dict)
    #: Whole-file suppressions (``# repro: noqa-file[...]``).
    noqa_file: List[str] = field(default_factory=list)
    #: Module-level names with inferrable types (annotated constants).
    var_types: Dict[str, str] = field(default_factory=dict)

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready rendering."""
        return {
            "name": self.name,
            "path": self.path,
            "imports": [e.to_payload() for e in self.imports],
            "noqa": {str(k): v for k, v in sorted(self.noqa.items())},
            "noqa_file": sorted(self.noqa_file),
            "var_types": dict(sorted(self.var_types.items())),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ModuleNode":
        """Rebuild from :meth:`to_payload` output."""
        return cls(
            name=payload["name"],
            path=payload["path"],
            imports=[
                ImportEdge.from_payload(e) for e in payload.get("imports", [])
            ],
            noqa={
                int(k): list(v) for k, v in payload.get("noqa", {}).items()
            },
            noqa_file=list(payload.get("noqa_file", [])),
            var_types=dict(payload.get("var_types", {})),
        )


@dataclass
class ProgramGraph:
    """The whole analyzed tree, ready for the graph rules."""

    modules: Dict[str, ModuleNode] = field(default_factory=dict)
    functions: Dict[str, FunctionNode] = field(default_factory=dict)
    classes: Dict[str, ClassNode] = field(default_factory=dict)
    #: Files that failed to parse: path -> (line, message).
    syntax_errors: Dict[str, Tuple[int, str]] = field(default_factory=dict)

    # -- lookups -------------------------------------------------------

    def module_of_path(self, path: str) -> Optional[ModuleNode]:
        """The module at a repo-relative path, if parsed."""
        for node in self.modules.values():
            if node.path == path:
                return node
        return None

    def functions_of(self, module: str) -> List[FunctionNode]:
        """Every function defined in ``module``, in line order."""
        nodes = [f for f in self.functions.values() if f.module == module]
        return sorted(nodes, key=lambda f: f.line)

    def callers_of(self, key: str) -> List[Tuple[FunctionNode, CallSite]]:
        """Every call site in the graph resolving to ``key``."""
        sites: List[Tuple[FunctionNode, CallSite]] = []
        for function in self.functions.values():
            for site in function.calls:
                if site.callee == key:
                    sites.append((function, site))
        return sites

    def import_graph(self) -> Dict[str, Set[str]]:
        """Module-level edges between tree modules."""
        graph: Dict[str, Set[str]] = {}
        for name, node in self.modules.items():
            graph[name] = {
                edge.target
                for edge in node.imports
                if edge.target in self.modules
            }
        return graph

    # -- serialization -------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready rendering of the whole graph (cache format)."""
        return {
            "schema": GRAPH_SCHEMA_VERSION,
            "modules": [
                self.modules[name].to_payload()
                for name in sorted(self.modules)
            ],
            "functions": [
                self.functions[key].to_payload()
                for key in sorted(self.functions)
            ],
            "classes": [
                self.classes[key].to_payload()
                for key in sorted(self.classes)
            ],
            "syntax_errors": {
                path: [line, message]
                for path, (line, message) in sorted(
                    self.syntax_errors.items()
                )
            },
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ProgramGraph":
        """Rebuild a graph from :meth:`to_payload` output."""
        graph = cls()
        for entry in payload.get("modules", []):
            node = ModuleNode.from_payload(entry)
            graph.modules[node.name] = node
        for entry in payload.get("functions", []):
            function = FunctionNode.from_payload(entry)
            graph.functions[function.key] = function
        for entry in payload.get("classes", []):
            klass = ClassNode.from_payload(entry)
            graph.classes[klass.key] = klass
        for path, (line, message) in payload.get("syntax_errors", {}).items():
            graph.syntax_errors[path] = (int(line), str(message))
        return graph
