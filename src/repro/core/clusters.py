"""Cell clustering for threshold extraction (paper Sec. VI.A).

"One part denotes if the population of cells is considered on an
individual basis or rather grouped per drive strength."  The paper
motivates the drive-strength grouping from Fig. 4 (higher strength =
larger devices = lower, flatter sigma) and contrasts it with treating
every cell on its own.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.cells.naming import parse_cell_name
from repro.errors import TuningError
from repro.liberty.model import Cell, Library


def strength_key(strength: float) -> str:
    """Stable cluster key for a drive strength (e.g. ``strength_6``)."""
    return f"strength_{strength:g}"


def cell_strength(cell: Cell) -> float:
    """Drive strength encoded in the cell's name (Appendix A naming)."""
    return parse_cell_name(cell.name).strength


def cluster_by_strength(library: Library) -> Dict[str, List[Cell]]:
    """Group the library's cells by drive strength.

    Returns a mapping from :func:`strength_key` to the cells sharing
    that strength, e.g. the drive-strength-6 cluster of paper Fig. 5.
    """
    clusters: Dict[str, List[Cell]] = {}
    for cell in library:
        clusters.setdefault(strength_key(cell_strength(cell)), []).append(cell)
    if not clusters:
        raise TuningError(f"library {library.name} has no cells to cluster")
    return clusters


def cluster_individually(library: Library) -> Dict[str, List[Cell]]:
    """Each cell forms its own cluster (the paper's per-cell methods)."""
    clusters = {cell.name: [cell] for cell in library}
    if not clusters:
        raise TuningError(f"library {library.name} has no cells to cluster")
    return clusters


def cluster_of(clusters: Dict[str, List[Cell]], cell: Cell) -> str:
    """Find the cluster key containing ``cell``."""
    for key, members in clusters.items():
        if any(member.name == cell.name for member in members):
            return key
    raise TuningError(f"cell {cell.name} is in no cluster")


def sigma_tables_of(cells: Iterable[Cell]):
    """Yield every delay-sigma LUT of the given cells (all arcs)."""
    for cell in cells:
        for _pin, arc in cell.arcs():
            for table in arc.sigma_tables():
                yield table
