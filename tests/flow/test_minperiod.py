"""Minimum-period search and the period/area sweep."""

import pytest

from repro.errors import ReproError
from repro.flow.minperiod import (
    find_relaxed_period,
    minimum_clock_period,
    period_area_sweep,
)


def synthetic_probe(true_minimum=2.41, area0=40000.0):
    """A probe behaving like a synthesis: fails below the minimum,
    area decays towards relaxed clocks."""
    calls = []

    def probe(period):
        calls.append(period)
        met = period >= true_minimum
        area = area0 * (1.0 + max(0.0, 3.0 / period - 0.3))
        return met, area

    return probe, calls


class TestMinimumSearch:
    def test_converges_to_true_minimum(self):
        probe, _ = synthetic_probe(true_minimum=2.41)
        found = minimum_clock_period(probe, lower=1.0, upper=5.0, resolution=0.01)
        assert 2.41 <= found <= 2.43

    def test_result_is_always_feasible(self):
        probe, _ = synthetic_probe(true_minimum=3.333)
        found = minimum_clock_period(probe, lower=1.0, upper=8.0, resolution=0.05)
        assert probe(found)[0]

    def test_resolution_controls_probe_count(self):
        probe, calls = synthetic_probe()
        minimum_clock_period(probe, lower=1.0, upper=5.0, resolution=0.5)
        coarse = len(calls)
        probe2, calls2 = synthetic_probe()
        minimum_clock_period(probe2, lower=1.0, upper=5.0, resolution=0.01)
        assert len(calls2) > coarse

    def test_feasible_lower_bound_rejected(self):
        probe, _ = synthetic_probe(true_minimum=1.0)
        with pytest.raises(ReproError):
            minimum_clock_period(probe, lower=2.0, upper=5.0)

    def test_infeasible_upper_bound_rejected(self):
        probe, _ = synthetic_probe(true_minimum=10.0)
        with pytest.raises(ReproError):
            minimum_clock_period(probe, lower=1.0, upper=5.0)

    def test_inverted_bracket_rejected(self):
        probe, _ = synthetic_probe()
        with pytest.raises(ReproError):
            minimum_clock_period(probe, lower=5.0, upper=1.0)


class TestSweepAndKnee:
    def test_sweep_rows(self):
        probe, _ = synthetic_probe()
        rows = period_area_sweep(probe, [2.0, 3.0, 4.0, 10.0])
        assert [r["clock_period"] for r in rows] == [2.0, 3.0, 4.0, 10.0]
        assert rows[0]["met"] == 0.0 and rows[-1]["met"] == 1.0

    def test_knee_detection(self):
        probe, _ = synthetic_probe(true_minimum=2.41)
        rows = period_area_sweep(probe, [2.5, 3.0, 4.0, 6.0, 10.0, 14.0])
        knee = find_relaxed_period(rows, flatness=0.05)
        assert 4.0 <= knee <= 14.0
        # the knee area must be near the fully relaxed area
        knee_area = next(r["area"] for r in rows if r["clock_period"] == knee)
        assert knee_area <= rows[-1]["area"] * 1.05

    def test_knee_needs_feasible_points(self):
        probe, _ = synthetic_probe(true_minimum=99.0)
        rows = period_area_sweep(probe, [2.0, 3.0])
        with pytest.raises(ReproError):
            find_relaxed_period(rows)
