"""Pluggable execution backends behind every fan-out site.

One abstraction — :class:`ExecutorBackend` — carries all the process
topology the repo needs: characterization chunks
(:mod:`repro.parallel.executor`), evaluation sweep points
(:mod:`repro.flow.pipeline`) and the multi-design sweep harness
(:mod:`repro.sweep`) all dispatch through :meth:`ExecutorBackend.
map_tasks` instead of constructing pools themselves (the PROC003 lint
rule keeps it that way).

Three implementations ship:

* ``serial`` — runs every task in the calling process, in task order,
  with zero copies.  This is also the automatic fallback whenever the
  resolved worker count is 1, so a single-worker run never pays a
  process spawn.
* ``process`` — today's :class:`concurrent.futures.
  ProcessPoolExecutor` semantics: tasks are pickled to worker
  processes and results collected in submission order, bit-identical
  to serial execution for every workload in this repo (each task is a
  pure function of its arguments).
* ``queue`` — a multi-host work-queue **stub**: tasks are serialized
  into a spooled task directory (``task-NNNNN.pkl``), workers drain
  their assigned slice of the spool and write ``result-NNNNN.pkl``
  files, and the parent collects results in task order.  The payloads
  cross the same serialize/dispatch/collect boundary a real multi-host
  queue would impose — only the transport (a shared directory and a
  local process pool standing in for remote workers) is stubbed, so
  everything scheduled through it is proven shippable.

The contract every backend honors:

* **Task order** — ``map_tasks(fn, tasks)`` returns one result per
  task, in ``tasks`` order, whatever the execution interleaving.
* **Module-level callables** — ``fn`` must be picklable by qualified
  name (PROC002); each task is a tuple of positional arguments.
* **Worker tracing** — out-of-process backends capture the active
  tracer's :class:`~repro.observe.TraceHandle` in the *submitting*
  thread and append it as ``fn``'s final argument, so worker spans
  merge into the parent's trace; the serial backend leaves the
  caller's tracer active and lets ``fn``'s default ``trace=None``
  plumbing find it.
* **Determinism** — a backend never changes results, so the choice
  (like the kernel choice, see :mod:`repro.kernels`) must never enter
  stage fingerprints or cache keys.
"""

from __future__ import annotations

import asyncio
import pickle
import shutil
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError, ServerBusyError
from repro.observe import TraceHandle, get_tracer, install_worker_tracer
from repro.observe.catalog import (
    BACKEND_TASK_SECONDS,
    BACKEND_TASKS,
    DISPATCH_CAPACITY,
    DISPATCH_PENDING,
)
from repro.observe.metrics import flush_worker_metrics, install_worker_metrics

#: The recognized backend names, in documentation order.
BACKEND_NAMES: Tuple[str, ...] = ("serial", "process", "queue")

#: The backend used when nothing selects one (``FlowConfig`` default).
DEFAULT_BACKEND = "process"

#: One unit of work: the positional arguments of the task callable.
Task = Tuple[Any, ...]


def validate_backend(name: str) -> str:
    """Validate a backend name, raising :class:`~repro.errors.
    ConfigError` on anything unrecognized (a typo'd ``--backend`` or
    ``REPRO_BACKEND`` must fail loudly, not fall back silently)."""
    if name not in BACKEND_NAMES:
        raise ConfigError(
            f"unknown backend {name!r} (use one of {', '.join(BACKEND_NAMES)})"
        )
    return name


def chunk_indices(n_items: int, n_chunks: int) -> List[range]:
    """Split ``range(n_items)`` into at most ``n_chunks`` balanced,
    contiguous ranges (earlier chunks at most one element larger).

    The one chunking helper every fan-out site shares: cell chunks and
    sample blocks in :mod:`repro.parallel.executor`, spool-slice
    assignment in :class:`QueueBackend`.
    """
    n_chunks = max(1, min(n_chunks, n_items))
    base, extra = divmod(n_items, n_chunks)
    ranges: List[range] = []
    start = 0
    for chunk in range(n_chunks):
        size = base + (1 if chunk < extra else 0)
        ranges.append(range(start, start + size))
        start += size
    return ranges


class ExecutorBackend:
    """The dispatch surface every fan-out site goes through.

    Subclasses set the capability flags and implement
    :meth:`map_tasks`; callers may use the flags to pick a schedule
    (e.g. skip pre-serialization work when ``in_process``) but must
    produce bit-identical results on every backend.
    """

    #: Stable identifier (``serial`` / ``process`` / ``queue``).
    name: str = "abstract"
    #: Tasks run in the calling process — arguments are never copied,
    #: and the caller's tracer/kernel state is visible to the task.
    in_process: bool = False
    #: Tasks cross a serialized dispatch boundary that could span
    #: hosts (nothing may rely on shared memory or process identity).
    distributed: bool = False
    #: Concrete worker count this backend schedules onto.
    n_workers: int = 1

    def map_tasks(
        self, fn: Callable[..., Any], tasks: Sequence[Task]
    ) -> List[Any]:
        """Run ``fn(*task)`` for every task; results in task order."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} workers={self.n_workers}>"


class SerialBackend(ExecutorBackend):
    """In-process execution in task order — the zero-copy baseline."""

    name = "serial"
    in_process = True
    distributed = False

    def map_tasks(
        self, fn: Callable[..., Any], tasks: Sequence[Task]
    ) -> List[Any]:
        """Run every task inline; the caller's tracer stays active."""
        BACKEND_TASKS.labels(backend=self.name, event="dispatched").inc(
            len(tasks)
        )
        results: List[Any] = []
        for task in tasks:
            started = time.perf_counter()
            results.append(fn(*task))
            BACKEND_TASK_SECONDS.labels(self.name).observe(
                time.perf_counter() - started
            )
        BACKEND_TASKS.labels(backend=self.name, event="completed").inc(
            len(tasks)
        )
        return results


class ProcessBackend(ExecutorBackend):
    """``ProcessPoolExecutor`` fan-out with in-order collection."""

    name = "process"
    in_process = False
    distributed = False

    def __init__(self, n_workers: int):
        if n_workers < 1:
            raise ConfigError(
                f"process backend needs >= 1 worker, got {n_workers}"
            )
        self.n_workers = n_workers

    def map_tasks(
        self, fn: Callable[..., Any], tasks: Sequence[Task]
    ) -> List[Any]:
        """Submit every task, collect results in submission order.

        The worker trace handle is captured *here*, in the submitting
        thread, while the caller's span is still open — the executor
        pickles arguments from its queue-feeder thread, where the
        thread-local span stack is empty and the parent link would be
        lost.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        trace = get_tracer().handle()
        BACKEND_TASKS.labels(backend=self.name, event="dispatched").inc(
            len(tasks)
        )
        with ProcessPoolExecutor(
            max_workers=min(self.n_workers, len(tasks))
        ) as pool:
            futures = [
                pool.submit(_run_worker_task, fn, tuple(task), trace, self.name)
                for task in tasks
            ]
            results = [future.result() for future in futures]
        BACKEND_TASKS.labels(backend=self.name, event="completed").inc(
            len(tasks)
        )
        return results


def _run_worker_task(
    fn: Callable[..., Any],
    args: Task,
    trace: Optional[TraceHandle],
    backend_name: str,
) -> Any:
    """Worker shim: run one task with metrics plumbing around it.

    Module-level (PROC002) so the pool can pickle it by name.  The
    fork-inherited registry is re-based before the task runs
    (:func:`~repro.observe.metrics.install_worker_metrics`) and this
    process's growth — including the task wall-time observation — is
    flushed to the spool afterwards, win or lose.  The task callable
    keeps its existing ``fn(*args, trace)`` contract.
    """
    install_worker_metrics()
    started = time.perf_counter()
    try:
        return fn(*args, trace)
    finally:
        BACKEND_TASK_SECONDS.labels(backend_name).observe(
            time.perf_counter() - started
        )
        flush_worker_metrics()


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write ``payload`` via a temp sibling + ``os.replace`` so a
    concurrent reader can never observe a torn spool file."""
    handle = tempfile.NamedTemporaryFile(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp",
        delete=False,
    )
    try:
        handle.write(payload)
    finally:
        handle.close()
    Path(handle.name).replace(path)


def _drain_spool(
    spool: str, indices: Sequence[int], trace: Optional[TraceHandle] = None
) -> int:
    """Worker: execute one slice of a spooled task directory.

    Reads ``task-NNNNN.pkl``, runs the pickled ``(fn, args)`` pair and
    writes ``result-NNNNN.pkl`` — the collect half of the round trip.
    Returns the number of tasks drained (a liveness check for the
    parent; the results themselves travel through the spool).
    """
    install_worker_tracer(trace)
    install_worker_metrics()
    directory = Path(spool)
    try:
        for index in indices:
            with open(directory / f"task-{index:05d}.pkl", "rb") as handle:
                fn, args = pickle.loads(handle.read())
            started = time.perf_counter()
            result = fn(*args, trace)
            BACKEND_TASK_SECONDS.labels("queue").observe(
                time.perf_counter() - started
            )
            _atomic_write_bytes(
                directory / f"result-{index:05d}.pkl",
                pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL),
            )
    finally:
        flush_worker_metrics()
    return len(indices)


class QueueBackend(ExecutorBackend):
    """Multi-host work-queue stub over a spooled task directory.

    Dispatch is a file-system hand-off: every task is serialized into
    the spool, workers claim contiguous slices (``chunk_indices`` over
    the task ids), and results come back as spool files the parent
    collects in task order.  The worker pool is local — the *stub*
    part — but every payload crosses the full serialize/dispatch/
    collect boundary, which is what keeps the workloads shippable to
    real remote workers.
    """

    name = "queue"
    in_process = False
    distributed = True

    def __init__(self, n_workers: int, spool_dir: Optional[str] = None):
        if n_workers < 1:
            raise ConfigError(
                f"queue backend needs >= 1 worker, got {n_workers}"
            )
        self.n_workers = n_workers
        #: Parent directory the per-``map_tasks`` spools are created
        #: under (a shared filesystem in the multi-host picture);
        #: ``None`` uses the system temp directory.
        self.spool_dir = spool_dir

    def map_tasks(
        self, fn: Callable[..., Any], tasks: Sequence[Task]
    ) -> List[Any]:
        """Spool, dispatch, collect — results in task order."""
        tasks = list(tasks)
        if not tasks:
            return []
        trace = get_tracer().handle()
        BACKEND_TASKS.labels(backend=self.name, event="dispatched").inc(
            len(tasks)
        )
        spool = Path(
            tempfile.mkdtemp(prefix="repro-spool-", dir=self.spool_dir)
        )
        try:
            for index, task in enumerate(tasks):
                _atomic_write_bytes(
                    spool / f"task-{index:05d}.pkl",
                    pickle.dumps(
                        (fn, tuple(task)), protocol=pickle.HIGHEST_PROTOCOL
                    ),
                )
            slices = chunk_indices(len(tasks), self.n_workers)
            with ProcessPoolExecutor(max_workers=len(slices)) as pool:
                futures = [
                    pool.submit(_drain_spool, str(spool), list(chunk), trace)
                    for chunk in slices
                ]
                for future in futures:
                    future.result()
            results: List[Any] = []
            for index in range(len(tasks)):
                with open(spool / f"result-{index:05d}.pkl", "rb") as handle:
                    results.append(pickle.loads(handle.read()))
            BACKEND_TASKS.labels(backend=self.name, event="completed").inc(
                len(tasks)
            )
            return results
        finally:
            shutil.rmtree(spool, ignore_errors=True)


class AsyncDispatcher:
    """Bounded async adapter over an :class:`ExecutorBackend`.

    The serve-side bridge between the event loop and the worker pool:
    coroutines submit blocking work, each submission runs in a worker
    thread (so the loop stays responsive) and the backend underneath
    decides the process topology exactly as it does for batch fan-outs.

    The bound is the backpressure contract: at most ``max_pending``
    submissions may be in flight, and one more raises
    :class:`~repro.errors.ServerBusyError` *immediately* — the server
    maps it to a 429 so clients shed load instead of queueing
    unboundedly.  All accounting happens on the event-loop thread, so
    no locks are needed.
    """

    def __init__(self, backend: ExecutorBackend, max_pending: int = 8):
        if max_pending < 1:
            raise ConfigError(
                f"async dispatcher needs max_pending >= 1, got {max_pending}"
            )
        self.backend = backend
        self.max_pending = max_pending
        self._pending = 0
        DISPATCH_CAPACITY.set(max_pending)

    @property
    def pending(self) -> int:
        """Submissions currently in flight."""
        return self._pending

    async def call(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run blocking ``fn(*args)`` in a thread, under the bound.

        The escape hatch for work that orchestrates its *own* backend
        fan-out (e.g. :func:`repro.sweep.run_sweep`): it counts against
        the same pending budget as :meth:`dispatch`, so a saturated
        server rejects every expensive request kind alike.
        """
        if self._pending >= self.max_pending:
            raise ServerBusyError(
                f"dispatch queue full ({self._pending} of "
                f"{self.max_pending} submissions in flight); retry later"
            )
        self._pending += 1
        DISPATCH_PENDING.set(self._pending)
        try:
            return await asyncio.to_thread(fn, *args)
        finally:
            self._pending -= 1
            DISPATCH_PENDING.set(self._pending)

    async def dispatch(self, fn: Callable[..., Any], task: Task) -> Any:
        """Run one task through the backend, under the bound.

        ``fn`` must be a module-level callable (PROC002: out-of-process
        backends pickle it by qualified name); the single task travels
        through :meth:`ExecutorBackend.map_tasks` so worker-trace
        plumbing and result ordering behave exactly as in batch mode.
        """
        results = await self.call(self.backend.map_tasks, fn, [task])
        return results[0]


def resolve_backend(
    backend: Union[str, ExecutorBackend, None],
    n_workers: int = 1,
) -> ExecutorBackend:
    """Normalize a backend knob plus a worker count to an instance.

    ``backend`` may be an :class:`ExecutorBackend` (returned as-is), a
    name, or ``None`` (meaning :data:`DEFAULT_BACKEND`).  ``n_workers``
    follows :func:`repro.parallel.resolve_jobs` semantics (1 = serial,
    0 = one per CPU).

    The single-worker fallback lives here: a ``process`` selection
    whose worker count resolves to 1 degrades to :class:`SerialBackend`
    — results are identical and the process spawn (interpreter start,
    argument pickling) is pure overhead.  An explicit ``queue``
    selection keeps its spool semantics even at one worker; exercising
    the dispatch round trip is the point of choosing it.
    """
    from repro.parallel import resolve_jobs

    if isinstance(backend, ExecutorBackend):
        return backend
    name = DEFAULT_BACKEND if backend is None else validate_backend(backend)
    jobs = resolve_jobs(n_workers)
    if name == "serial" or (name == "process" and jobs <= 1):
        return SerialBackend()
    if name == "process":
        return ProcessBackend(jobs)
    return QueueBackend(jobs)
