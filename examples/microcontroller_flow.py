"""The paper's evaluation flow on the microcontroller design.

Synthesizes the gate-level microcontroller baseline and under the
sigma-ceiling tuning at a tight and a relaxed clock, and prints the
Fig. 10/11-style comparison: sigma reduction vs area increase.

Scale: defaults to the quick flow (a few seconds per synthesis); set
REPRO_SCALE=paper for the full ~18k-gate design.

Run:  python examples/microcontroller_flow.py
"""

from __future__ import annotations

from repro.experiments.base import ExperimentContext
from repro.sta.report import timing_summary, variation_summary


def main() -> None:
    context = ExperimentContext()
    flow = context.flow
    design = flow.build_design()
    stats = design.stats()
    print(
        f"design: {design.name}, {stats['instances']} instances "
        f"({stats['sequential']} flip-flops), "
        f"{max(design.levelize().values())} logic levels"
    )

    minimum = context.minimum_period()
    periods = context.standard_periods()
    print(f"minimum clock period (failing-slack search): {minimum:g} ns")
    print(f"operating points (paper-ratio derived): {periods}")

    for point in ("high", "medium"):
        period = periods[point]
        print(f"\n--- {point} performance: {period:g} ns ---")
        baseline = flow.baseline(period)
        print(
            f"baseline: area {baseline.area:.0f} um^2, "
            f"design sigma {baseline.design_sigma:.4f} ns, met={baseline.met}"
        )
        for ceiling in (0.04, 0.03):
            comparison = flow.compare(period, "sigma_ceiling", ceiling)
            print(f"  {comparison.summary()}")

    print("\nworst path of the high-performance baseline:")
    run = flow.baseline(periods["high"])
    if run.result is not None:
        print(timing_summary(run.timing))
        print()
        print(
            variation_summary(run.timing, flow.statistical_library, paths=run.paths)
        )
    else:
        # served from the artifact store: no live timing graph, but the
        # measurements are all there
        worst = max(run.paths, key=lambda p: p.arrival)
        print(
            f"(warm artifact store; run `python -m repro cache clear` for a "
            f"live timing graph)\n"
            f"worst arrival {worst.arrival:.4f} ns over {len(run.paths)} "
            f"endpoint paths, design sigma {run.design_sigma:.4f} ns"
        )


if __name__ == "__main__":
    main()
