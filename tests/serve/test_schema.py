"""Schema contract: round-trips, strict validation, error mapping."""

from __future__ import annotations

import pytest

from repro.errors import (
    ConfigError,
    ReproError,
    RequestError,
    ServeError,
    ServerBusyError,
    TuningError,
)
from repro.serve.schema import (
    SCHEMA_VERSION,
    ErrorResponse,
    StatusRequest,
    StatusResponse,
    SweepRequest,
    SweepResponse,
    TuneRequest,
    TuneResponse,
    error_from_payload,
    error_response,
    parse_request,
    parse_response,
)


class TestRequestRoundTrips:
    """Every request type survives to_payload -> parse_request."""

    def test_tune_round_trip(self):
        request = TuneRequest(
            method="cell_load_slope",
            parameter=0.2,
            clock_period=3.0,
            design="dsp",
            scale="tiny",
        )
        assert parse_request(request.to_payload()) == request

    def test_tune_defaults_round_trip(self):
        request = TuneRequest(
            method="sigma_ceiling", parameter=0.1, clock_period=2.5
        )
        rebuilt = parse_request(request.to_payload())
        assert rebuilt == request
        assert rebuilt.design == "microcontroller"
        assert rebuilt.scale is None

    def test_sweep_round_trip(self):
        request = SweepRequest(
            designs=("microcontroller", "dsp"),
            methods=("cell_load_slope",),
            parameters=(0.1, 0.2),
            clock_periods=(3.0, 4.0),
            scale="tiny",
        )
        assert parse_request(request.to_payload()) == request

    def test_sweep_none_axes_round_trip(self):
        """None axes (all methods / Table 2 params) survive the wire."""
        request = SweepRequest()
        rebuilt = parse_request(request.to_payload())
        assert rebuilt.methods is None
        assert rebuilt.parameters is None

    def test_status_round_trip(self):
        request = StatusRequest()
        assert parse_request(request.to_payload()) == request

    def test_integers_coerce_to_float(self):
        """JSON integers are valid numbers for float fields."""
        payload = TuneRequest(
            method="m", parameter=1, clock_period=3
        ).to_payload()
        rebuilt = parse_request(payload)
        assert rebuilt.parameter == 1.0
        assert isinstance(rebuilt.clock_period, float)


class TestStrictValidation:
    """Malformed payloads raise RequestError, naming the problem."""

    def _tune_payload(self, **overrides):
        payload = TuneRequest(
            method="cell_load_slope", parameter=0.2, clock_period=3.0
        ).to_payload()
        payload.update(overrides)
        return payload

    def test_non_object_payload(self):
        with pytest.raises(RequestError, match="JSON object"):
            parse_request([1, 2, 3])

    def test_wrong_schema_version(self):
        with pytest.raises(RequestError, match="schema version"):
            parse_request(self._tune_payload(schema=SCHEMA_VERSION + 1))

    def test_missing_schema_version(self):
        payload = self._tune_payload()
        del payload["schema"]
        with pytest.raises(RequestError, match="schema version"):
            parse_request(payload)

    def test_unknown_kind(self):
        with pytest.raises(RequestError, match="unknown request kind"):
            parse_request(self._tune_payload(kind="tunee"))

    def test_unknown_field_rejected(self):
        with pytest.raises(RequestError, match="unknown fields"):
            parse_request(self._tune_payload(surprise=1))

    def test_missing_required_field(self):
        payload = self._tune_payload()
        del payload["method"]
        with pytest.raises(RequestError, match="misses required field"):
            parse_request(payload)

    def test_wrong_type_method(self):
        with pytest.raises(RequestError, match="'method' must be str"):
            parse_request(self._tune_payload(method=7))

    def test_boolean_is_not_a_number(self):
        """JSON true must not pass as a parameter via bool/int subtyping."""
        with pytest.raises(RequestError, match="boolean"):
            parse_request(self._tune_payload(parameter=True))

    def test_nonpositive_clock_rejected(self):
        with pytest.raises(RequestError, match="clock_period"):
            parse_request(self._tune_payload(clock_period=0))

    def test_sweep_empty_designs(self):
        payload = SweepRequest().to_payload()
        payload["designs"] = []
        with pytest.raises(RequestError, match="designs"):
            parse_request(payload)

    def test_sweep_mixed_type_parameters(self):
        payload = SweepRequest().to_payload()
        payload["parameters"] = [0.1, "x"]
        with pytest.raises(RequestError, match="parameters"):
            parse_request(payload)

    def test_sweep_nonpositive_clock(self):
        payload = SweepRequest().to_payload()
        payload["clock_periods"] = [3.0, -1.0]
        with pytest.raises(RequestError, match="clock periods"):
            parse_request(payload)

    def test_status_rejects_extra_fields(self):
        payload = StatusRequest().to_payload()
        payload["verbose"] = True
        with pytest.raises(RequestError, match="unknown fields"):
            parse_request(payload)

    def test_request_error_is_a_serve_error(self):
        assert issubclass(RequestError, ServeError)
        assert issubclass(ServerBusyError, ServeError)
        assert issubclass(ServeError, ReproError)


class TestResponseRoundTrips:
    """Every response type survives to_payload -> parse_response."""

    def test_tune_response_round_trip(self):
        response = TuneResponse(
            method="cell_load_slope",
            parameter=0.2,
            clock_period=3.0,
            design="microcontroller",
            baseline_sigma=0.1,
            tuned_sigma=0.05,
            baseline_area=100.0,
            tuned_area=104.0,
            tuned_met=True,
            sigma_reduction=50.0,
            area_increase=4.0,
            outcome="computed",
            trace_id="abc123",
            wall_ms=12.5,
        )
        assert parse_response(response.to_payload()) == response

    def test_sweep_response_round_trip(self):
        response = SweepResponse(
            points=(
                {
                    "label": "microcontroller/cell_load_slope/0.2@3",
                    "status": "hit",
                    "sigma_reduction": 10.0,
                    "area_increase": 1.0,
                    "tuned_met": True,
                },
            ),
            counts={"hit": 1, "skip": 0, "run": 0},
            scheduled=0,
            backend="serial",
            outcome="warm",
            trace_id="t",
            wall_ms=1.0,
        )
        assert parse_response(response.to_payload()) == response

    def test_status_response_round_trip(self):
        response = StatusResponse(status={"uptime_s": 1.5}, trace_id="t")
        assert parse_response(response.to_payload()) == response

    def test_error_response_round_trip(self):
        response = ErrorResponse(
            error_type="TuningError", message="nope", trace_id="t"
        )
        assert parse_response(response.to_payload()) == response

    def test_unknown_response_kind(self):
        with pytest.raises(RequestError, match="unknown response kind"):
            parse_response({"schema": SCHEMA_VERSION, "kind": "mystery"})

    def test_truncated_response_payload(self):
        payload = StatusResponse(status={}).to_payload()
        del payload["status"]
        with pytest.raises(RequestError, match="malformed"):
            parse_response(payload)


class TestErrorMapping:
    """Exceptions render structurally and rebuild as typed errors."""

    @pytest.mark.parametrize(
        "error",
        [
            RequestError("bad field"),
            ConfigError("bad scale"),
            TuningError("unknown method"),
            ServerBusyError("queue full"),
        ],
    )
    def test_repro_errors_keep_their_type(self, error):
        response = error_response(error, trace_id="tid")
        assert response.error_type == type(error).__name__
        rebuilt = error_from_payload(response)
        assert type(rebuilt) is type(error)
        assert str(rebuilt) == str(error)
        assert rebuilt.trace_id == "tid"

    def test_foreign_exception_becomes_internal_error(self):
        """Non-repro exceptions cross the wire opaquely, no traceback."""
        response = error_response(ValueError("secret internals"), "tid")
        assert response.error_type == "InternalError"
        assert "ValueError" in response.message
        rebuilt = error_from_payload(response)
        assert type(rebuilt) is ServeError

    def test_hostile_type_name_degrades_to_serve_error(self):
        """A payload cannot name arbitrary classes to instantiate."""
        response = ErrorResponse(
            error_type="SystemExit", message="boom", trace_id=""
        )
        rebuilt = error_from_payload(response)
        assert type(rebuilt) is ServeError

    def test_error_payload_shape(self):
        """The wire shape is {error: {type, message}, trace_id}."""
        payload = error_response(RequestError("x"), "tid").to_payload()
        assert payload["error"] == {"type": "RequestError", "message": "x"}
        assert payload["trace_id"] == "tid"
        assert payload["schema"] == SCHEMA_VERSION
