"""Load generation against a running tuning server.

:func:`run_burst` fans a list of typed requests out over concurrent
connections (bounded by a semaphore), measures per-request latency,
and folds everything into a :class:`LoadReport` — status counts,
outcome counts (``warm`` / ``computed`` / ``coalesced`` / errors) and
latency percentiles.  The serve benchmark
(``benchmarks/test_serve.py``) and the CI ``serve-smoke`` job both
drive the service through this module, so "does a cold burst coalesce
to one synthesis pass" and "does a warm burst stay store-only" are
asserted against the same traffic shape a real client fleet produces.

Percentiles use the nearest-rank method on the sorted latency list —
deterministic, dependency-free, and exact for the burst sizes used
here (no interpolation surprises at p99 with 1 000 samples).
"""

from __future__ import annotations

import asyncio
import math
import time
import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.serve.client import request_async
from repro.serve.schema import ErrorResponse, Request


@dataclass(frozen=True)
class LoadReport:
    """What one burst did: counts, outcomes and latency percentiles."""

    #: Requests sent.
    requests: int
    #: Whole-burst wall time, seconds.
    wall_s: float
    #: Responses per HTTP status code.
    statuses: Dict[int, int]
    #: Responses per outcome (``warm``/``computed``/``coalesced``/
    #: error type names for failures).
    outcomes: Dict[str, int]
    #: Per-request latencies, milliseconds, in completion order.
    latencies_ms: Tuple[float, ...]

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the latencies, in milliseconds.

        A degenerate report (no latencies at all — an empty or fully
        failed burst) yields 0.0 with a :class:`RuntimeWarning` instead
        of crashing, so report plumbing survives a dead server.  The
        rank is clamped into the sample range, so any ``q`` in
        ``(0, 100]`` — and even a slightly out-of-range one — indexes
        a real sample.
        """
        if not self.latencies_ms:
            warnings.warn(
                "percentile of an empty latency set (no requests "
                "completed); reporting 0.0",
                RuntimeWarning,
                stacklevel=2,
            )
            return 0.0
        ordered = sorted(self.latencies_ms)
        rank = max(1, min(len(ordered), math.ceil(q / 100.0 * len(ordered))))
        return ordered[rank - 1]

    @property
    def p50(self) -> float:
        """Median latency, milliseconds."""
        return self.percentile(50)

    @property
    def p95(self) -> float:
        """95th-percentile latency, milliseconds."""
        return self.percentile(95)

    @property
    def p99(self) -> float:
        """99th-percentile latency, milliseconds."""
        return self.percentile(99)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second over the burst."""
        if self.wall_s <= 0:
            return 0.0
        return self.requests / self.wall_s

    def ok(self) -> int:
        """Number of 200 responses."""
        return self.statuses.get(200, 0)

    def to_row(self, phase: str) -> Dict[str, object]:
        """One benchmark-table row summarizing the burst."""
        return {
            "phase": phase,
            "requests": self.requests,
            "ok": self.ok(),
            "p50_ms": round(self.p50, 3),
            "p95_ms": round(self.p95, 3),
            "p99_ms": round(self.p99, 3),
            "throughput_rps": round(self.throughput_rps, 1),
        }

    def summary(self) -> str:
        """One human-readable line for logs."""
        outcomes = ", ".join(
            f"{name}={count}" for name, count in sorted(self.outcomes.items())
        )
        return (
            f"{self.requests} requests in {self.wall_s:.2f}s "
            f"({self.throughput_rps:.0f} rps): "
            f"p50={self.p50:.1f}ms p95={self.p95:.1f}ms "
            f"p99={self.p99:.1f}ms [{outcomes}]"
        )


async def run_burst(
    requests: Sequence[Request],
    host: str = "127.0.0.1",
    port: int = 8731,
    concurrency: int = 64,
    timeout: float = 120.0,
) -> LoadReport:
    """Fire every request concurrently (bounded) and report.

    Each request rides its own connection; ``concurrency`` bounds how
    many are in flight at once.  Error responses (including 429
    backpressure rejections) are tallied as outcomes, not raised.
    """
    semaphore = asyncio.Semaphore(concurrency)

    async def one(request: Request) -> Tuple[int, str, float]:
        async with semaphore:
            begin = time.perf_counter()
            status, response = await request_async(
                request, host=host, port=port, timeout=timeout
            )
            elapsed_ms = (time.perf_counter() - begin) * 1e3
        if isinstance(response, ErrorResponse):
            outcome = response.error_type
        else:
            outcome = getattr(response, "outcome", response.kind)
        return status, outcome, elapsed_ms

    begin = time.perf_counter()
    results = await asyncio.gather(*(one(request) for request in requests))
    wall = time.perf_counter() - begin
    statuses: Dict[int, int] = {}
    outcomes: Dict[str, int] = {}
    latencies = []
    for status, outcome, elapsed_ms in results:
        statuses[status] = statuses.get(status, 0) + 1
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
        latencies.append(elapsed_ms)
    if results and not statuses.get(200):
        warnings.warn(
            f"burst of {len(results)} requests produced no 200 responses "
            f"(statuses: {dict(sorted(statuses.items()))}); latency "
            "percentiles describe failures only",
            RuntimeWarning,
            stacklevel=2,
        )
    return LoadReport(
        requests=len(results),
        wall_s=wall,
        statuses=statuses,
        outcomes=outcomes,
        latencies_ms=tuple(latencies),
    )


def run_burst_sync(
    requests: Sequence[Request],
    host: str = "127.0.0.1",
    port: int = 8731,
    concurrency: int = 64,
    timeout: float = 120.0,
) -> LoadReport:
    """Blocking wrapper of :func:`run_burst` for non-async callers."""
    return asyncio.run(
        run_burst(
            requests,
            host=host,
            port=port,
            concurrency=concurrency,
            timeout=timeout,
        )
    )


def tune_burst(
    n: int,
    method: str,
    parameter: float,
    clock_period: float,
    design: str = "microcontroller",
    scale: Optional[str] = None,
) -> Tuple[Request, ...]:
    """``n`` identical tune requests — the coalescing workload."""
    from repro.serve.schema import TuneRequest

    return tuple(
        TuneRequest(
            method=method,
            parameter=parameter,
            clock_period=clock_period,
            design=design,
            scale=scale,
        )
        for _ in range(n)
    )
