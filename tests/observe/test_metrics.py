"""The live-metrics registry: exactness, exposition, worker spooling.

Three layers under test.  The registry itself must deliver *exact*
totals under concurrency (threads share one registry; worker processes
flush deltas through the spool and the parent folds them in).  The
Prometheus exposition must be byte-deterministic — sorted families,
sorted samples, escaped labels, cumulative buckets — so the golden
text below and the CI greps never flap.  And the snapshot round-trips
(payload JSON, Prometheus text) must be lossless, because the CLI and
the dashboard rebuild snapshots from both.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import ConfigError
from repro.observe.metrics import (
    DEFAULT_TIME_BUCKETS,
    METRICS_SPOOL_ENV,
    HistogramValue,
    MetricsRegistry,
    MetricsSnapshot,
    get_metrics,
    histogram_quantile,
    load_metrics,
    log_buckets,
    parse_prometheus,
    render_prometheus,
    set_metrics_enabled,
)


@pytest.fixture
def registry():
    """A private registry — tests never pollute the process-wide one."""
    return MetricsRegistry()


class TestRegistration:
    def test_reregistration_is_idempotent(self, registry):
        first = registry.counter("repro_test_total", "Help.", ("kind",))
        second = registry.counter("repro_test_total", "Help.", ("kind",))
        assert first is second

    def test_kind_mismatch_fails_loudly(self, registry):
        registry.counter("repro_test_total", "Help.")
        with pytest.raises(ConfigError, match="already registered"):
            registry.gauge("repro_test_total", "Help.")

    def test_label_mismatch_fails_loudly(self, registry):
        registry.counter("repro_test_total", "Help.", ("kind",))
        with pytest.raises(ConfigError, match="already registered"):
            registry.counter("repro_test_total", "Help.", ("outcome",))

    def test_bucket_mismatch_fails_loudly(self, registry):
        registry.histogram("repro_test_seconds", "Help.", buckets=(1.0, 2.0))
        with pytest.raises(ConfigError, match="already registered"):
            registry.histogram(
                "repro_test_seconds", "Help.", buckets=(1.0, 3.0)
            )

    def test_invalid_metric_name_rejected(self, registry):
        with pytest.raises(ConfigError, match="invalid metric name"):
            registry.counter("0bad-name", "Help.")

    def test_le_label_reserved_for_histograms(self, registry):
        with pytest.raises(ConfigError, match="invalid label name"):
            registry.histogram("repro_test_seconds", "Help.", ("le",))

    def test_unsorted_buckets_rejected(self, registry):
        with pytest.raises(ConfigError, match="strictly increasing"):
            registry.histogram(
                "repro_test_seconds", "Help.", buckets=(2.0, 1.0)
            )


class TestInstrumentSemantics:
    def test_counter_is_monotonic(self, registry):
        counter = registry.counter("repro_test_total", "Help.")
        counter.inc()
        counter.inc(2.5)
        with pytest.raises(ConfigError, match="only increase"):
            counter.inc(-1)
        assert registry.snapshot().value("repro_test_total") == 3.5

    def test_labeled_children_are_independent(self, registry):
        counter = registry.counter("repro_test_total", "Help.", ("kind",))
        counter.labels(kind="a").inc(3)
        counter.labels("b").inc(4)  # positional spelling, same family
        snapshot = registry.snapshot()
        assert snapshot.value("repro_test_total", kind="a") == 3
        assert snapshot.value("repro_test_total", kind="b") == 4

    def test_label_validation(self, registry):
        counter = registry.counter("repro_test_total", "Help.", ("kind",))
        with pytest.raises(ConfigError, match="expects labels"):
            counter.labels(flavor="a")
        with pytest.raises(ConfigError, match="label value"):
            counter.labels("a", "b")
        with pytest.raises(ConfigError, match="no labels"):
            registry.gauge("repro_test_depth", "Help.").labels("x")
        with pytest.raises(ConfigError, match="call .labels"):
            counter.inc()

    def test_gauge_moves_both_ways(self, registry):
        gauge = registry.gauge("repro_test_depth", "Help.")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(4)
        assert registry.snapshot().value("repro_test_depth") == 3

    def test_histogram_buckets_are_le_inclusive(self, registry):
        histogram = registry.histogram(
            "repro_test_seconds", "Help.", buckets=(1.0, 2.0)
        )
        for value in (0.5, 1.0, 1.5, 9.0):
            histogram.observe(value)
        sample = registry.snapshot().value("repro_test_seconds")
        assert isinstance(sample, HistogramValue)
        # 1.0 lands in the le="1.0" bucket (<=), 9.0 overflows to +Inf.
        assert sample.counts == (2, 1, 1)
        assert sample.count == 4
        assert sample.total == pytest.approx(12.0)

    def test_disabled_registry_is_a_noop(self, registry):
        counter = registry.counter("repro_test_total", "Help.")
        registry.enabled = False
        counter.inc(7)
        registry.enabled = True
        assert registry.snapshot().value("repro_test_total") == 0

    def test_reset_zeroes_but_keeps_families(self, registry):
        counter = registry.counter("repro_test_total", "Help.")
        counter.inc(9)
        registry.reset()
        assert registry.snapshot().value("repro_test_total") == 0
        counter.inc()  # the pre-reset handle still feeds the family
        assert registry.snapshot().value("repro_test_total") == 1

    def test_global_toggle_returns_previous(self):
        previous = set_metrics_enabled(False)
        try:
            assert set_metrics_enabled(True) is False
        finally:
            set_metrics_enabled(previous if previous is not None else True)
        assert get_metrics().enabled


class TestBucketsAndQuantiles:
    def test_default_time_buckets_are_log_spaced(self):
        assert DEFAULT_TIME_BUCKETS == log_buckets(-4, 2)
        assert len(DEFAULT_TIME_BUCKETS) == 19
        assert DEFAULT_TIME_BUCKETS[0] == pytest.approx(1e-4)
        assert DEFAULT_TIME_BUCKETS[-1] == pytest.approx(100.0)
        assert all(
            b > a
            for a, b in zip(DEFAULT_TIME_BUCKETS, DEFAULT_TIME_BUCKETS[1:])
        )

    def test_quantile_nearest_rank_upper_edge(self):
        buckets = (1.0, 2.0, 4.0)
        # 10 observations: 5 in le=1, 3 in le=2, 2 in le=4.
        value = HistogramValue(counts=(5, 3, 2, 0), total=0.0, count=10)
        assert histogram_quantile(value, buckets, 0.5) == 1.0
        assert histogram_quantile(value, buckets, 0.8) == 2.0
        assert histogram_quantile(value, buckets, 0.99) == 4.0

    def test_quantile_overflow_clamps_to_last_edge(self):
        value = HistogramValue(counts=(0, 0, 0, 3), total=0.0, count=3)
        assert histogram_quantile(value, (1.0, 2.0, 4.0), 0.5) == 4.0

    def test_quantile_empty_histogram_is_zero(self):
        value = HistogramValue(counts=(0, 0), total=0.0, count=0)
        assert histogram_quantile(value, (1.0,), 0.5) == 0.0

    def test_quantile_validates_q(self):
        value = HistogramValue(counts=(1, 0), total=0.5, count=1)
        with pytest.raises(ConfigError):
            histogram_quantile(value, (1.0,), 0.0)
        with pytest.raises(ConfigError):
            histogram_quantile(value, (1.0,), 1.5)


GOLDEN_EXPOSITION = """\
# HELP repro_test_depth Queue depth.
# TYPE repro_test_depth gauge
repro_test_depth 3
# HELP repro_test_seconds Latency.
# TYPE repro_test_seconds histogram
repro_test_seconds_bucket{kind="tune",le="1"} 2
repro_test_seconds_bucket{kind="tune",le="2"} 3
repro_test_seconds_bucket{kind="tune",le="+Inf"} 4
repro_test_seconds_sum{kind="tune"} 12.5
repro_test_seconds_count{kind="tune"} 4
# HELP repro_test_total A label with "quotes", back\\\\slash, new\\nline.
# TYPE repro_test_total counter
repro_test_total{kind="a",who="plain"} 2
repro_test_total{kind="b\\"quoted\\"",who="esc\\\\aped\\n"} 1
"""


def golden_registry() -> MetricsRegistry:
    """The registry whose exposition is pinned byte-for-byte above."""
    registry = MetricsRegistry()
    counter = registry.counter(
        "repro_test_total",
        'A label with "quotes", back\\slash, new\nline.',
        ("kind", "who"),
    )
    counter.labels(kind="a", who="plain").inc(2)
    counter.labels(kind='b"quoted"', who="esc\\aped\n").inc()
    registry.gauge("repro_test_depth", "Queue depth.").set(3)
    histogram = registry.histogram(
        "repro_test_seconds", "Latency.", ("kind",), buckets=(1.0, 2.0)
    )
    for value in (0.5, 1.0, 2.0, 9.0):
        histogram.labels(kind="tune").observe(value)
    return registry


class TestExposition:
    def test_golden_text(self):
        text = render_prometheus(golden_registry().snapshot())
        assert text == GOLDEN_EXPOSITION

    def test_buckets_are_cumulative_and_inf_equals_count(self):
        text = render_prometheus(golden_registry().snapshot())
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_test_seconds_bucket")
        ]
        assert counts == sorted(counts)
        count_line = next(
            line
            for line in text.splitlines()
            if line.startswith("repro_test_seconds_count")
        )
        assert counts[-1] == int(count_line.rsplit(" ", 1)[1])

    def test_parse_round_trips_byte_identically(self):
        snapshot = golden_registry().snapshot()
        reparsed = parse_prometheus(render_prometheus(snapshot))
        assert render_prometheus(reparsed) == GOLDEN_EXPOSITION

    def test_rendering_is_deterministic_across_insert_order(self):
        forward = golden_registry().snapshot()
        backward = MetricsRegistry()
        histogram = backward.histogram(
            "repro_test_seconds", "Latency.", ("kind",), buckets=(1.0, 2.0)
        )
        for value in (0.5, 1.0, 2.0, 9.0):
            histogram.labels(kind="tune").observe(value)
        backward.gauge("repro_test_depth", "Queue depth.").set(3)
        counter = backward.counter(
            "repro_test_total",
            'A label with "quotes", back\\slash, new\nline.',
            ("kind", "who"),
        )
        counter.labels(kind='b"quoted"', who="esc\\aped\n").inc()
        counter.labels(kind="a", who="plain").inc(2)
        assert render_prometheus(backward.snapshot()) == render_prometheus(
            forward
        )


class TestSnapshots:
    def test_merge_sums_counters_and_histograms(self):
        a = golden_registry().snapshot()
        b = golden_registry().snapshot()
        merged = a.merge(b)
        assert merged.value("repro_test_total", kind="a", who="plain") == 4
        sample = merged.value("repro_test_seconds", kind="tune")
        assert sample.count == 8
        # Gauges are level readings: last write wins, no summing.
        assert merged.value("repro_test_depth") == 3

    def test_merge_rejects_kind_conflicts(self):
        a = MetricsRegistry()
        a.counter("repro_test_total", "Help.").inc()
        b = MetricsRegistry()
        b.gauge("repro_test_total", "Help.").set(1)
        with pytest.raises(ConfigError, match="kind"):
            a.snapshot().merge(b.snapshot())

    def test_payload_round_trip(self):
        snapshot = golden_registry().snapshot()
        rebuilt = MetricsSnapshot.from_payload(
            json.loads(json.dumps(snapshot.to_payload()))
        )
        assert render_prometheus(rebuilt) == GOLDEN_EXPOSITION

    def test_counter_totals_flatten_for_the_ledger(self):
        totals = golden_registry().snapshot().counter_totals()
        assert totals['repro_test_total{kind="a",who="plain"}'] == 2
        # Gauges and histograms stay out of the ledger counters.
        assert not any("depth" in name for name in totals)

    def test_load_metrics_merges_files(self, tmp_path):
        document = tmp_path / "snap.json"
        document.write_text(
            json.dumps(golden_registry().snapshot().to_payload(), indent=2)
        )
        spool = tmp_path / "spool.jsonl"
        payload = golden_registry().snapshot().to_payload()
        payload["type"] = "metrics"
        spool.write_text(json.dumps(payload) + "\n")
        merged = load_metrics([document, spool])
        assert merged.value("repro_test_total", kind="a", who="plain") == 4


class TestThreadExactness:
    def test_hammered_registry_keeps_exact_totals(self, registry):
        counter = registry.counter("repro_test_total", "Help.", ("worker",))
        histogram = registry.histogram(
            "repro_test_seconds", "Help.", buckets=(0.5, 1.0)
        )
        n_threads, n_iterations = 8, 2_000

        def hammer(index: int) -> None:
            child = counter.labels(worker=str(index))
            for i in range(n_iterations):
                child.inc()
                histogram.observe((i % 3) * 0.4)

        threads = [
            threading.Thread(target=hammer, args=(index,))
            for index in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = registry.snapshot()
        for index in range(n_threads):
            assert (
                snapshot.value("repro_test_total", worker=str(index))
                == n_iterations
            )
        sample = snapshot.value("repro_test_seconds")
        assert sample.count == n_threads * n_iterations
        assert sum(sample.counts) == sample.count


def _worker_bump(amount, trace=None):
    """Module-level (PROC002) worker: grow a counter, return the pid.

    The process backend's task wrapper installs worker metrics before
    the call and flushes the delta spool after — this body only has to
    do the counting.
    """
    import os

    from repro.observe.metrics import get_metrics

    get_metrics().counter(
        "repro_test_worker_total", "Spool-exactness probe."
    ).inc(amount)
    return os.getpid()


class TestWorkerSpool:
    def test_process_backend_deltas_merge_exactly(self, tmp_path, monkeypatch):
        from repro.parallel.backends import ProcessBackend

        spool = tmp_path / "metrics-spool.jsonl"
        monkeypatch.setenv(METRICS_SPOOL_ENV, str(spool))
        registry = get_metrics()
        before = registry.snapshot().value("repro_test_worker_total") or 0.0
        amounts = list(range(1, 9))
        pids = ProcessBackend(n_workers=2).map_tasks(
            _worker_bump, [(amount,) for amount in amounts]
        )
        after = registry.snapshot().value("repro_test_worker_total")
        assert after - before == sum(amounts)
        assert spool.is_file()
        # Workers really were separate processes, not in-process calls.
        import os

        assert os.getpid() not in pids

    def test_snapshot_consumes_spool_incrementally(
        self, tmp_path, monkeypatch
    ):
        spool = tmp_path / "metrics-spool.jsonl"
        monkeypatch.setenv(METRICS_SPOOL_ENV, str(spool))
        registry = MetricsRegistry()
        record = {
            "type": "metrics",
            "pid": 1,
            "families": {
                "repro_test_worker_total": {
                    "kind": "counter",
                    "help": "",
                    "labelnames": [],
                    "buckets": [],
                    "samples": [{"labels": [], "value": 5.0}],
                }
            },
        }
        line = json.dumps(record)
        spool.write_text(line + "\n")
        assert (
            registry.snapshot().value("repro_test_worker_total") == 5.0
        )
        # A torn (unterminated) trailing line is not consumed ...
        with spool.open("a") as handle:
            handle.write(line)
        assert (
            registry.snapshot().value("repro_test_worker_total") == 5.0
        )
        # ... until its newline lands; then it merges exactly once.
        with spool.open("a") as handle:
            handle.write("\n")
        assert (
            registry.snapshot().value("repro_test_worker_total") == 10.0
        )


class TestCliSurface:
    def test_metrics_command_renders_snapshot_files(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "snap.json"
        path.write_text(
            json.dumps(golden_registry().snapshot().to_payload())
        )
        assert main(["metrics", str(path), "--format", "prom"]) == 0
        assert capsys.readouterr().out == GOLDEN_EXPOSITION
        assert main(["metrics", str(path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "repro_test_total" in payload["families"]
        assert main(["metrics", str(path)]) == 0
        assert "repro_test_total" in capsys.readouterr().out

    def test_metrics_command_unreachable_server_exits_two(self, capsys):
        from repro.__main__ import main

        # A port from the dynamic range nothing in CI listens on.
        assert main(["metrics", "--port", "1", "--host", "127.0.0.1"]) == 2
        assert "cannot read metrics" in capsys.readouterr().err

    def test_metrics_command_bad_file_exits_two(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["metrics", str(path)]) == 2
        assert "cannot read metrics" in capsys.readouterr().err
