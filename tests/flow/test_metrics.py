"""Comparison metrics and the Fig. 10 selection rule."""

import pytest

from repro.errors import ReproError
from repro.flow.metrics import TuningComparison, best_under_area_cap


def make(method="m", parameter=0.02, sigma_red=0.3, area_inc=0.05, met=True):
    baseline_sigma, baseline_area = 1.0, 100.0
    return TuningComparison(
        method=method,
        parameter=parameter,
        clock_period=2.0,
        baseline_sigma=baseline_sigma,
        tuned_sigma=baseline_sigma * (1 - sigma_red),
        baseline_area=baseline_area,
        tuned_area=baseline_area * (1 + area_inc),
        tuned_met=met,
    )


class TestComparison:
    def test_sigma_reduction_sign(self):
        assert make(sigma_red=0.3).sigma_reduction == pytest.approx(0.3)
        assert make(sigma_red=-0.1).sigma_reduction == pytest.approx(-0.1)

    def test_area_increase_sign(self):
        assert make(area_inc=0.07).area_increase == pytest.approx(0.07)
        assert make(area_inc=-0.02).area_increase == pytest.approx(-0.02)

    def test_summary_contains_percentages(self):
        text = make().summary()
        assert "%" in text and "m(param=0.02)" in text


class TestSelectionRule:
    def test_picks_highest_reduction_under_cap(self):
        comparisons = [
            make(parameter=0.04, sigma_red=0.2, area_inc=0.02),
            make(parameter=0.02, sigma_red=0.4, area_inc=0.08),
            make(parameter=0.01, sigma_red=0.6, area_inc=0.25),  # over cap
        ]
        best = best_under_area_cap(comparisons, area_cap=0.10)
        assert best is not None and best.parameter == 0.02

    def test_infeasible_runs_excluded(self):
        comparisons = [
            make(parameter=0.02, sigma_red=0.5, area_inc=0.05, met=False),
            make(parameter=0.04, sigma_red=0.2, area_inc=0.02, met=True),
        ]
        best = best_under_area_cap(comparisons)
        assert best is not None and best.parameter == 0.04

    def test_none_when_everything_over_cap(self):
        comparisons = [make(area_inc=0.2), make(area_inc=0.5)]
        assert best_under_area_cap(comparisons, area_cap=0.10) is None

    def test_cap_boundary_is_exclusive(self):
        assert best_under_area_cap([make(area_inc=0.10)], area_cap=0.10) is None


class TestCompareRuns:
    def test_period_mismatch_rejected(self):
        class FakeRun:
            clock_period = 2.0
            design_sigma = 1.0
            area = 100.0
            met = True

        class OtherRun(FakeRun):
            clock_period = 3.0

        from repro.flow.metrics import compare_runs

        with pytest.raises(ReproError):
            compare_runs(FakeRun(), OtherRun(), "m", 0.02)
