"""repro — reproduction of "Standard Cell Library Tuning for Variability
Tolerant Designs" (Fabrie, DATE 2014 / TU/e 2013).

The package implements the paper's full flow from scratch:

* a Liberty (.lib) substrate (:mod:`repro.liberty`);
* a 304-cell standard-cell catalog with a SPICE-surrogate
  characterization engine (:mod:`repro.cells`,
  :mod:`repro.characterization`) and Pelgrom-law local variation
  (:mod:`repro.variation`);
* statistical-library construction (:mod:`repro.statlib`);
* the library-tuning contribution — slope/ceiling threshold extraction,
  largest-rectangle LUT restriction, five tuning methods
  (:mod:`repro.core`);
* a gate-level netlist substrate with a ~20k-gate microcontroller
  generator (:mod:`repro.netlist`), an STA engine with statistical path
  analysis (:mod:`repro.sta`) and a timing-driven synthesizer honoring
  per-pin slew/load windows (:mod:`repro.synth`);
* end-to-end flows and every table/figure of the evaluation
  (:mod:`repro.flow`, :mod:`repro.experiments`);
* a batched NumPy kernel layer behind characterization and STA, with a
  bit-identical scalar reference implementation selectable at runtime
  (:mod:`repro.kernels`);
* an observability layer — spans, counters, profiling, an append-only
  run ledger with trend reports and a metrics regression gate — over
  all of it (:mod:`repro.observe`);
* live operational telemetry — a process-wide metrics registry
  (counters, gauges, histograms) with Prometheus exposition on the
  serve API's ``/metrics`` and a live console dashboard
  (:mod:`repro.observe.metrics`, ``python -m repro metrics``);
* a static-analysis layer enforcing the determinism, process-safety
  and picklability contracts the execution layer depends on
  (:mod:`repro.lint`, ``python -m repro lint``);
* tuning-as-a-service: an asyncio HTTP API with typed request/response
  schemas, in-flight request coalescing on content fingerprints,
  bounded backpressure and a first-class client
  (:mod:`repro.serve`, ``python -m repro serve``).

The names below are the curated public surface, re-exported lazily
(PEP 562) so ``import repro`` stays fast and dependency-free — nothing
heavier than the standard library loads until an attribute is touched.

Quickstart::

    from repro import Characterizer, FlowConfig, TuningFlow, build_catalog

    specs = build_catalog()
    stat_lib = Characterizer().statistical_library(specs, n_samples=50, seed=0)

    flow = TuningFlow(FlowConfig.tiny())
    comparison = flow.compare(1.5, "cell_strength_slew_slope", 0.03)

Profiling the same run::

    from dataclasses import replace

    from repro import Tracer
    from repro.observe import JsonlExporter, load_trace, render_trace

    tracer = Tracer(JsonlExporter("run.jsonl", truncate=True))
    flow = TuningFlow(replace(FlowConfig.tiny(), tracer=tracer))
    flow.compare(1.5, "cell_strength_slew_slope", 0.03)
    tracer.finish()
    print(render_trace(load_trace("run.jsonl")))
"""

from typing import List

__version__ = "1.1.0"

#: Public name -> defining module, resolved lazily on first access.
_EXPORTS = {
    "ArtifactPipeline": "repro.flow.pipeline",
    "Characterizer": "repro.characterization.characterize",
    "Finding": "repro.lint.findings",
    "FlowConfig": "repro.flow.experiment",
    "KERNEL_NAMES": "repro.kernels",
    "LintEngine": "repro.lint.engine",
    "MetricsRegistry": "repro.observe.metrics",
    "MetricsSnapshot": "repro.observe.metrics",
    "RunLedger": "repro.observe.ledger",
    "RunRecord": "repro.observe.ledger",
    "StatusRequest": "repro.serve.schema",
    "SweepRequest": "repro.serve.schema",
    "SynthesisRun": "repro.flow.experiment",
    "Tracer": "repro.observe.tracer",
    "TuneRequest": "repro.serve.schema",
    "TuningClient": "repro.serve.client",
    "TuningFlow": "repro.flow.experiment",
    "TuningServer": "repro.serve.server",
    "TuningService": "repro.serve.handlers",
    "build_catalog": "repro.cells.catalog",
    "get_kernel": "repro.kernels",
    "get_metrics": "repro.observe.metrics",
    "render_prometheus": "repro.observe.metrics",
    "set_kernel": "repro.kernels",
    "use_kernel": "repro.kernels",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    """Resolve a curated re-export on first access (PEP 562).

    Keeps ``import repro`` light: the heavy numerical stack behind the
    flow only loads when one of the public names is actually used.
    """
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> List[str]:
    """Advertise the lazy exports alongside the module globals."""
    return sorted(set(globals()) | set(_EXPORTS))
