"""Trace analytics and the ledger report/check layer.

Pure-function coverage: span-path aggregation, the trace diff's
regression thresholds, the markdown trend report, and the baseline
gate's tolerance arithmetic.  The CLI wiring over these lives in
``test_cli_analytics.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.observe.export import Trace
from repro.observe.analyze import (
    aggregate_paths,
    baseline_from_record,
    check_record,
    diff_traces,
    load_baseline,
    render_report,
    summarize_trace,
)
from repro.observe.ledger import RunRecord


def _span(name, span_id, parent=None, wall=1.0):
    """A minimal span record; ``wall=None`` models an unfinished span."""
    record = {"type": "span", "name": name, "id": span_id, "parent": parent}
    if wall is not None:
        record["wall"] = wall
        record["cpu"] = wall
    return record


def _trace(*spans, counters=None, trace_ids=("t1",)):
    return Trace(
        spans=list(spans),
        counters=dict(counters or {}),
        trace_ids=list(trace_ids),
    )


def _record(run_id="r1", metrics=None, stages=None, **overrides):
    fields = dict(
        run_id=run_id,
        timestamp=1000.0,
        experiment="fake",
        scale="tiny",
        metrics=metrics if metrics is not None else {"sigma[vt]": 2.0},
        stages=stages or {},
    )
    fields.update(overrides)
    return RunRecord(**fields)


class TestAggregatePaths:
    """Root-to-name paths, sibling merge, orphan promotion."""

    def test_nested_spans_join_with_slashes(self):
        spans = [
            _span("run", "r", wall=5.0),
            _span("step", "s", parent="r", wall=2.0),
            _span("leaf", "l", parent="s", wall=1.0),
        ]
        paths = aggregate_paths(spans)
        assert set(paths) == {"run", "run/step", "run/step/leaf"}
        assert paths["run/step/leaf"].wall == 1.0

    def test_same_name_siblings_merge(self):
        """Two workers' ``characterize`` spans share one path."""
        spans = [
            _span("run", "r", wall=5.0),
            _span("work", "w1", parent="r", wall=2.0),
            _span("work", "w2", parent="r", wall=3.0),
        ]
        stats = aggregate_paths(spans)["run/work"]
        assert stats.count == 2
        assert stats.wall == 5.0

    def test_orphans_root_their_own_path(self):
        """A span whose parent record never made it to the file (killed
        writer) aggregates from itself, not under ``?``."""
        paths = aggregate_paths([_span("lonely", "x", parent="gone")])
        assert set(paths) == {"lonely"}

    def test_unfinished_spans_counted_not_summed(self):
        spans = [_span("run", "r", wall=2.0), _span("run", "r2", wall=None)]
        stats = aggregate_paths(spans)["run"]
        assert stats.count == 2
        assert stats.wall == 2.0
        assert stats.unfinished == 1

    def test_parent_cycle_terminates(self):
        """A malformed file with a parent cycle must not spin."""
        spans = [
            _span("a", "1", parent="2", wall=1.0),
            _span("b", "2", parent="1", wall=1.0),
        ]
        assert len(aggregate_paths(spans)) == 2


class TestSummarizeTrace:
    """The flat per-path table."""

    def test_table_holds_paths_and_counters(self):
        trace = _trace(
            _span("run", "r", wall=3.0),
            _span("step", "s", parent="r", wall=1.0),
            counters={"cache.hits": 7},
        )
        text = summarize_trace(trace)
        assert "run/step" in text
        assert "2 spans over 2 paths" in text
        assert "cache.hits" in text

    def test_unfinished_paths_marked(self):
        text = summarize_trace(_trace(_span("run", "r", wall=None)))
        assert "[unfinished]" in text

    def test_multiple_trace_ids_flagged(self):
        """An appending exporter on a recycled path leaves several
        trace ids in one file — summed silently would be a lie."""
        text = summarize_trace(
            _trace(_span("run", "r"), trace_ids=("t1", "t2"))
        )
        assert "2 interleaved traces" in text

    def test_top_truncates(self):
        spans = [_span(f"s{i}", str(i), wall=float(i)) for i in range(6)]
        text = summarize_trace(_trace(*spans), top=2)
        assert "4 more paths" in text


class TestDiffTraces:
    """Regression = relative growth beyond rtol AND beyond the floor."""

    def test_identical_traces_have_no_regressions(self):
        a = _trace(_span("run", "r", wall=2.0))
        b = _trace(_span("run", "r", wall=2.0))
        assert diff_traces(a, b).regressions == []

    def test_growth_beyond_both_thresholds_flagged(self):
        a = _trace(_span("run", "r", wall=1.0))
        b = _trace(_span("run", "r", wall=2.0))
        diff = diff_traces(a, b, rtol=0.25, min_seconds=0.05)
        assert [d.path for d in diff.regressions] == ["run"]
        assert "<< regression" in diff.to_text()

    def test_small_absolute_growth_is_jitter(self):
        """3x growth on a 10ms span stays under the absolute floor."""
        a = _trace(_span("run", "r", wall=0.01))
        b = _trace(_span("run", "r", wall=0.03))
        assert diff_traces(a, b, min_seconds=0.05).regressions == []

    def test_large_absolute_growth_within_rtol_tolerated(self):
        """+0.1s on a 10s span is well inside the relative tolerance."""
        a = _trace(_span("run", "r", wall=10.0))
        b = _trace(_span("run", "r", wall=10.1))
        assert diff_traces(a, b, rtol=0.25).regressions == []

    def test_new_path_over_the_floor_regresses(self):
        a = _trace(_span("run", "r", wall=1.0))
        b = _trace(
            _span("run", "r", wall=1.0), _span("extra", "e", wall=0.5)
        )
        diff = diff_traces(a, b)
        assert [d.path for d in diff.regressions] == ["extra"]
        assert diff.regressions[0].ratio == float("inf")

    def test_disappeared_path_never_regresses(self):
        a = _trace(_span("run", "r", wall=1.0), _span("gone", "g", wall=5.0))
        b = _trace(_span("run", "r", wall=1.0))
        assert diff_traces(a, b).regressions == []


class TestRenderReport:
    """The markdown dashboard over ledger records."""

    def test_empty_ledger_renders_placeholder(self):
        assert "empty" in render_report([])

    def test_single_run_renders_table_only(self):
        text = render_report([_record("r1")])
        assert "## fake @ tiny — 1 runs" in text
        assert "| r1 |" in text
        assert "metric movement" not in text

    def test_two_runs_render_movement(self):
        first = _record("r1", metrics={"sigma[vt]": 2.0, "area[vt]": 1.0})
        latest = _record("r2", metrics={"sigma[vt]": 3.0, "area[vt]": 1.0})
        text = render_report([first, latest])
        assert "metric movement, run r1 -> r2" in text
        assert "1 unchanged, 1 moved" in text
        assert "`sigma[vt]`: 2 -> 3" in text

    def test_groups_by_experiment_and_scale(self):
        records = [
            _record("r1"),
            _record("r2", experiment="other"),
            _record("r3", scale="quick"),
        ]
        text = render_report(records)
        assert "## fake @ tiny" in text
        assert "## other @ tiny" in text
        assert "## fake @ quick" in text

    def test_stage_movement_line(self):
        first = _record("r1", stages={"synth": {"count": 1, "seconds": 4.0}})
        latest = _record("r2", stages={"synth": {"count": 1, "seconds": 1.0}})
        text = render_report([first, latest])
        assert "stage seconds: synth 4.00s->1.00s" in text


class TestBaselineGate:
    """baseline_from_record / check_record tolerance arithmetic."""

    def test_round_trip_passes(self):
        """A record always satisfies the baseline derived from it."""
        record = _record(
            stages={"synth": {"count": 1, "seconds": 2.0, "hit": 1}}
        )
        baseline = baseline_from_record(record, stage_budget_factor=2.0)
        assert check_record(record, baseline) == []

    def test_drift_beyond_rtol_fails(self):
        record = _record(metrics={"sigma[vt]": 2.0})
        baseline = baseline_from_record(record, rtol=0.05)
        drifted = _record(metrics={"sigma[vt]": 2.2})
        violations = check_record(drifted, baseline)
        assert len(violations) == 1
        assert "metric drift: sigma[vt]" in violations[0]

    def test_drift_within_rtol_passes(self):
        baseline = baseline_from_record(
            _record(metrics={"sigma[vt]": 2.0}), rtol=0.05
        )
        assert check_record(_record(metrics={"sigma[vt]": 2.05}), baseline) == []

    def test_atol_absorbs_last_digit_flips(self):
        """Tiny rounded metrics need the absolute tolerance: 0.002 ->
        0.003 is a 50% relative change but one rounding step."""
        baseline = baseline_from_record(
            _record(metrics={"area[vt]": 0.002}), rtol=0.05, atol=0.005
        )
        assert check_record(_record(metrics={"area[vt]": 0.003}), baseline) == []
        assert check_record(_record(metrics={"area[vt]": 0.009}), baseline) != []

    def test_missing_metric_fails(self):
        baseline = baseline_from_record(_record(metrics={"sigma[vt]": 2.0}))
        violations = check_record(_record(metrics={}), baseline)
        assert violations == ["metric missing from run: sigma[vt]"]

    def test_extra_run_metrics_ignored(self):
        """New columns must not fail old baselines."""
        baseline = baseline_from_record(_record(metrics={"sigma[vt]": 2.0}))
        run = _record(metrics={"sigma[vt]": 2.0, "brand_new": 9.0})
        assert check_record(run, baseline) == []

    def test_stage_budget_violation(self):
        baseline = baseline_from_record(
            _record(stages={"synth": {"count": 1, "seconds": 2.0}}),
            stage_budget_factor=2.0,
        )
        slow = _record(stages={"synth": {"count": 1, "seconds": 9.0}})
        violations = check_record(slow, baseline)
        assert len(violations) == 1
        assert "stage over budget: synth" in violations[0]

    def test_cli_override_beats_baseline_tolerance(self):
        """An explicit rtol argument wins over the file's rtol."""
        baseline = baseline_from_record(
            _record(metrics={"sigma[vt]": 2.0}), rtol=0.5
        )
        drifted = _record(metrics={"sigma[vt]": 2.4})
        assert check_record(drifted, baseline) == []
        assert check_record(drifted, baseline, rtol=0.05) != []

    def test_load_baseline_rejects_non_baselines(self, tmp_path):
        path = tmp_path / "not-a-baseline.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError, match="no 'metrics'"):
            load_baseline(path)
