"""Synthesis-backed experiments on the miniature context.

These validate the experiment *plumbing* (row structure, selection
rules, derived periods); the paper-shape assertions live in the
benchmark suite, which runs at the larger scales.
"""

import pytest

from repro.experiments import (
    fig09_cell_usage,
    fig10_method_comparison,
    fig11_tradeoff,
    fig12_path_depth,
    fig13_sigma_vs_depth,
    fig14_mean_3sigma,
    fig15_corners,
    fig16_local_share,
    table1_clock_periods,
    table3_winning_params,
)


@pytest.fixture(scope="module")
def periods(tiny_context):
    """Two operating points only, to keep the sweeps quick."""
    standard = tiny_context.standard_periods()
    return [standard["high"], standard["low"]]


class TestTable1:
    def test_four_increasing_periods(self, tiny_context):
        result = table1_clock_periods.run(tiny_context)
        ours = result.column("ours_ns")
        assert len(ours) == 4
        assert ours == sorted(ours)
        assert all(result.column("met"))

    def test_minimum_is_cached(self, tiny_context):
        assert tiny_context.minimum_period() == tiny_context.minimum_period()

    def test_ratios_follow_paper(self, tiny_context):
        standard = tiny_context.standard_periods()
        assert standard["low"] / standard["high"] == pytest.approx(4.15, rel=0.05)


class TestFig10AndTable3:
    def test_selection_rule_and_rows(self, tiny_context, periods):
        result = fig10_method_comparison.run(tiny_context, periods=periods)
        assert len(result.rows) == 5 * len(periods)
        for row in result.rows:
            if row["sigma_reduction"] is None:
                continue
            assert row["area_increase"] < 0.10

    def test_table3_winners_come_from_sweeps(self, tiny_context, periods):
        result = table3_winning_params.run(tiny_context, periods=periods)
        assert len(result.rows) == 5
        for row in result.rows:
            winners = [v for k, v in row.items() if k.startswith("@")]
            assert len(winners) == len(periods)


class TestFig11:
    def test_rows_per_ceiling(self, tiny_context):
        result = fig11_tradeoff.run(
            tiny_context, ceilings=[0.04, 0.02],
        )
        assert result.column("ceiling_ns") == [0.04, 0.02]


class TestFig09:
    def test_usage_rows_above_cut(self, tiny_context):
        result = fig09_cell_usage.run(tiny_context, tuned_parameter=0.04)
        for row in result.rows:
            assert max(row["baseline_uses"], row["tuned_uses"]) > tiny_context.usage_cut


class TestPathPopulations:
    def test_fig12_totals_match(self, tiny_context):
        result = fig12_path_depth.run(tiny_context, parameter=0.04)
        assert sum(result.column("baseline_paths")) == sum(
            result.column("tuned_paths")
        )

    def test_fig13_rows_grouped_by_design(self, tiny_context):
        result = fig13_sigma_vs_depth.run(tiny_context, parameter=0.04)
        designs = set(result.column("design"))
        assert designs == {"baseline", "tuned"}
        eps = 1e-12
        for row in result.rows:
            assert row["sigma_min"] - eps <= row["sigma_mean"] <= row["sigma_max"] + eps

    def test_fig14_three_sigma_above_mean(self, tiny_context):
        result = fig14_mean_3sigma.run(tiny_context, parameter=0.04)
        for row in result.rows:
            assert row["worst_mu_plus_3s"] >= row["mean_delay"]


class TestMonteCarloExperiments:
    def test_fig15_corner_ordering(self, tiny_context):
        result = fig15_corners.run(tiny_context, n_samples=80)
        by_key = {(r["path"], r["corner"]): r for r in result.rows}
        for path in ("short", "medium", "long"):
            assert (
                by_key[(path, "fast")]["mean_ns"]
                < by_key[(path, "typical")]["mean_ns"]
                < by_key[(path, "slow")]["mean_ns"]
            )

    def test_fig15_typical_is_reference(self, tiny_context):
        result = fig15_corners.run(tiny_context, n_samples=80)
        for row in result.rows:
            if row["corner"] == "typical":
                assert row["mean_rel"] == pytest.approx(1.0)
                assert row["sigma_rel"] == pytest.approx(1.0)

    def test_fig16_local_share_decays(self, tiny_context):
        result = fig16_local_share.run(tiny_context, n_samples=120)
        rows = {r["path"]: r for r in result.rows}
        assert rows["short"]["local_share"] > rows["long"]["local_share"]
        for row in result.rows:
            assert 0 < row["local_share"] <= 1.0 + 1e-9
