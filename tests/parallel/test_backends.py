"""The pluggable execution backends: registry, chunking, dispatch.

Three contracts under test: the chunking helper's partition properties
(hypothesis), the backend registry's validation and single-worker
serial fallback, and the headline determinism guarantee — serial,
process and queue backends produce bit-identical libraries.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.characterization.characterize import Characterizer
from repro.errors import ConfigError
from repro.parallel.backends import (
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    ExecutorBackend,
    ProcessBackend,
    QueueBackend,
    SerialBackend,
    chunk_indices,
    resolve_backend,
    validate_backend,
)
from tests.parallel.test_equivalence import assert_libraries_bit_identical


def _echo(index, payload, trace=None):
    """Module-level worker (PROC002): picklable by qualified name."""
    return (index, payload)


class TestChunkIndices:
    @given(
        n_items=st.integers(min_value=0, max_value=500),
        n_chunks=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=200, deadline=None)
    def test_partition_properties(self, n_items, n_chunks):
        """Chunks cover every item exactly once, contiguously, in
        order, balanced to within one element."""
        chunks = chunk_indices(n_items, n_chunks)
        flattened = [index for chunk in chunks for index in chunk]
        assert flattened == list(range(n_items))
        sizes = [len(chunk) for chunk in chunks]
        assert max(sizes) - min(sizes) <= 1
        assert len(chunks) <= max(1, min(n_chunks, n_items))
        for previous, current in zip(chunks, chunks[1:]):
            assert current.start == previous.stop

    def test_zero_items_is_one_empty_chunk(self):
        assert chunk_indices(0, 4) == [range(0, 0)]

    def test_more_chunks_than_items_degrades(self):
        assert chunk_indices(3, 10) == [range(0, 1), range(1, 2), range(2, 3)]


class TestRegistry:
    def test_names_and_default(self):
        assert BACKEND_NAMES == ("serial", "process", "queue")
        assert DEFAULT_BACKEND in BACKEND_NAMES

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_validate_accepts_known(self, name):
        assert validate_backend(name) == name

    def test_validate_rejects_typo(self):
        with pytest.raises(ConfigError, match="unknown backend"):
            validate_backend("proces")

    def test_resolve_default_is_serial_at_one_worker(self):
        """Satellite fix: n_workers=1 must never spawn a process pool."""
        assert isinstance(resolve_backend(None, 1), SerialBackend)
        assert isinstance(resolve_backend("process", 1), SerialBackend)

    def test_resolve_process_at_many_workers(self):
        backend = resolve_backend("process", 4)
        assert isinstance(backend, ProcessBackend)
        assert backend.n_workers == 4

    def test_explicit_queue_keeps_spool_semantics_at_one_worker(self):
        assert isinstance(resolve_backend("queue", 1), QueueBackend)

    def test_instance_passes_through(self):
        backend = SerialBackend()
        assert resolve_backend(backend, 8) is backend

    def test_capability_flags(self):
        assert SerialBackend.in_process and not SerialBackend.distributed
        assert not ProcessBackend.in_process and not ProcessBackend.distributed
        assert not QueueBackend.in_process and QueueBackend.distributed

    def test_characterizer_validates_backend_eagerly(self):
        with pytest.raises(ConfigError, match="unknown backend"):
            Characterizer(backend="quue")

    def test_repro_backend_env_selects(self, monkeypatch):
        from repro.flow.experiment import FlowConfig

        monkeypatch.setenv("REPRO_BACKEND", "queue")
        assert FlowConfig.from_environment().backend == "queue"

    def test_repro_backend_env_typo_fails_loudly(self, monkeypatch):
        from repro.flow.experiment import FlowConfig

        monkeypatch.setenv("REPRO_BACKEND", "pool")
        with pytest.raises(ConfigError, match="unknown backend"):
            FlowConfig.from_environment()


class TestMapTasks:
    @pytest.mark.parametrize(
        "backend",
        [SerialBackend(), ProcessBackend(3), QueueBackend(3)],
        ids=["serial", "process", "queue"],
    )
    def test_results_in_task_order(self, backend):
        tasks = [(index, f"payload-{index}") for index in range(7)]
        assert backend.map_tasks(_echo, tasks) == [
            (index, f"payload-{index}") for index in range(7)
        ]

    @pytest.mark.parametrize(
        "backend",
        [SerialBackend(), ProcessBackend(2), QueueBackend(2)],
        ids=["serial", "process", "queue"],
    )
    def test_empty_task_list(self, backend):
        assert backend.map_tasks(_echo, []) == []

    def test_queue_spool_cleaned_up(self, tmp_path):
        backend = QueueBackend(2, spool_dir=str(tmp_path))
        backend.map_tasks(_echo, [(0, "a"), (1, "b")])
        assert list(tmp_path.iterdir()) == []

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            ExecutorBackend().map_tasks(_echo, [(0, "a")])


class TestSerialFallbackSkipsPoolSpawn:
    def test_single_worker_characterization_spawns_no_pool(
        self, characterizer, small_specs, monkeypatch
    ):
        """The satellite regression: with the worker count resolved to
        1, the characterization drivers must not construct a process
        pool at all — not merely use it lightly."""
        import repro.parallel.backends as backends

        def _forbidden(*args, **kwargs):
            raise AssertionError("ProcessPoolExecutor constructed")

        monkeypatch.setattr(backends, "ProcessPoolExecutor", _forbidden)
        library = characterizer.statistical_library(
            small_specs[:6], n_samples=4, seed=1, n_workers=1
        )
        assert library.is_statistical


class TestBackendEquivalence:
    """serial vs process vs queue: bit-identical libraries."""

    def test_statistical_library_identical_across_backends(
        self, small_specs
    ):
        specs = small_specs[:12]
        serial = Characterizer(backend="serial").statistical_library(
            specs, n_samples=6, seed=5, n_workers=2
        )
        for name in ("process", "queue"):
            other = Characterizer(backend=name).statistical_library(
                specs, n_samples=6, seed=5, n_workers=2
            )
            assert_libraries_bit_identical(serial, other)

    def test_sample_libraries_identical_across_backends(self, small_specs):
        specs = small_specs[:6]
        serial = Characterizer(backend="serial").sample_libraries(
            specs, n_samples=4, seed=9, include_global=True, n_workers=2
        )
        for name in ("process", "queue"):
            other = Characterizer(backend=name).sample_libraries(
                specs, n_samples=4, seed=9, include_global=True, n_workers=2
            )
            assert len(serial) == len(other)
            for library_a, library_b in zip(serial, other):
                assert library_a.name == library_b.name
                assert_libraries_bit_identical(library_a, library_b)

    def test_worker_count_invariance_on_queue(self, small_specs):
        specs = small_specs[:8]
        one = Characterizer(backend="queue").statistical_library(
            specs, n_samples=5, seed=3, n_workers=1
        )
        three = Characterizer(backend="queue").statistical_library(
            specs, n_samples=5, seed=3, n_workers=3
        )
        assert_libraries_bit_identical(one, three)


class TestFingerprintInvariance:
    """The backend choice must never enter fingerprints or cache keys;
    the design family always does."""

    def test_characterization_key_ignores_backend(self, small_specs):
        from repro.parallel.cache import characterization_key

        keys = {
            characterization_key(
                Characterizer(backend=name),
                small_specs[:4],
                n_samples=4,
                seed=0,
                include_global=False,
                kind="stat",
            )
            for name in BACKEND_NAMES
        }
        assert len(keys) == 1

    def test_flow_keys_ignore_backend_and_workers(self):
        from dataclasses import replace

        from repro.flow.experiment import FlowConfig, TuningFlow

        base = FlowConfig.tiny()
        flows = [
            TuningFlow(replace(base, backend=name, n_workers=workers))
            for name, workers in (("serial", 1), ("process", 4), ("queue", 2))
        ]
        assert len({flow.statlib_key for flow in flows}) == 1
        assert len({flow.design_key for flow in flows}) == 1

    def test_design_family_always_fingerprints(self):
        from repro.flow.experiment import FlowConfig
        from repro.flow.pipeline import design_fingerprint
        from repro.netlist.generators.family import design_family, design_spec

        base = FlowConfig.tiny().design
        keys = {
            name: design_fingerprint(design_spec(name).params(base))
            for name in design_family()
        }
        assert len(set(keys.values())) == len(keys)
        assert keys["microcontroller"] == design_fingerprint(base)
