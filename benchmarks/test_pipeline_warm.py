"""Bench: cold vs warm artifact-pipeline evaluation (smoke).

Runs one (baseline + tuned) comparison of the tiny flow cold, then warm
from the artifact store, records both wall times (and their ratio) into
the bench JSON via ``benchmark.extra_info``, and asserts the warm run
performs zero synthesis calls and returns a bit-identical comparison.
"""

from __future__ import annotations

import time

from repro.flow.experiment import FlowConfig, TuningFlow
from repro.synth.synthesizer import (
    reset_synthesis_call_count,
    synthesis_call_count,
)

PERIOD = 2.0
METHOD = "sigma_ceiling"
PARAMETER = 0.03


def _compare(config):
    return TuningFlow(config).compare(PERIOD, METHOD, PARAMETER)


def test_pipeline_warm_speedup(benchmark, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    config = FlowConfig.tiny()

    start = time.perf_counter()
    cold = _compare(config)
    cold_s = time.perf_counter() - start

    reset_synthesis_call_count()
    start = time.perf_counter()
    warm = _compare(config)
    warm_s = time.perf_counter() - start

    assert warm == cold
    assert synthesis_call_count() == 0  # warm runs never synthesize

    benchmark.extra_info["cold_s"] = round(cold_s, 4)
    benchmark.extra_info["warm_s"] = round(warm_s, 4)
    benchmark.extra_info["speedup"] = round(cold_s / warm_s, 1)
    print(
        f"\ncold {cold_s:.2f}s  warm {warm_s:.3f}s  "
        f"speedup {cold_s / warm_s:.0f}x (zero synthesis warm)"
    )

    # timed leg for the bench JSON: one warm evaluation
    benchmark.pedantic(_compare, args=(config,), rounds=3, iterations=1)
