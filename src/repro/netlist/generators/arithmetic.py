"""Adders and comparators.

Provides both in-builder emitters (``carry_select_adder(builder, ...)``)
used by larger generators, and standalone ``build_*`` designs for the
unit tests and examples.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import NetlistError
from repro.netlist.builder import Bus, NetlistBuilder
from repro.netlist.model import Netlist


def carry_select_adder(
    builder: NetlistBuilder, a: Bus, b: Bus, block: int = 4
) -> Tuple[Bus, str]:
    """Carry-select adder: ripple blocks computed for ci=0 and ci=1,
    selected by the incoming block carry.  Shallower carry chain than a
    plain ripple adder at roughly twice the adder area — the classic
    speed/area trade synthesis plays with.
    """
    if len(a) != len(b):
        raise NetlistError(f"bus width mismatch: {len(a)} vs {len(b)}")
    if block < 1:
        raise NetlistError("block size must be >= 1")
    with builder.scope(builder.fresh("csa")):
        carry = builder.tie(0)
        total: Bus = []
        for start in range(0, len(a), block):
            a_blk = a[start : start + block]
            b_blk = b[start : start + block]
            if start == 0:
                sum_blk, carry = builder.ripple_adder(a_blk, b_blk, carry_in=carry)
                total.extend(sum_blk)
                continue
            sum0, carry0 = builder.ripple_adder(a_blk, b_blk, carry_in=builder.tie(0))
            sum1, carry1 = builder.ripple_adder(a_blk, b_blk, carry_in=builder.tie(1))
            total.extend(builder.mux_word(sum0, sum1, carry))
            carry = builder.mux2(carry0, carry1, carry)
        return total, carry


def less_than(builder: NetlistBuilder, a: Bus, b: Bus) -> str:
    """Unsigned a < b via the subtractor borrow (carry-out low)."""
    _diff, carry = builder.subtractor(a, b)
    return builder.inv(carry)


def build_ripple_adder(width: int, name: str = "") -> Netlist:
    """Standalone ripple-carry adder design with ports a, b, s, co."""
    builder = NetlistBuilder(name or f"ripple_adder{width}")
    a = builder.input_bus("a", width)
    b = builder.input_bus("b", width)
    total, carry = builder.ripple_adder(a, b)
    builder.output_bus("s", total)
    builder.output("co", carry)
    builder.netlist.validate()
    return builder.netlist


def build_carry_select_adder(width: int, block: int = 4, name: str = "") -> Netlist:
    """Standalone carry-select adder design with ports a, b, s, co."""
    builder = NetlistBuilder(name or f"csel_adder{width}")
    a = builder.input_bus("a", width)
    b = builder.input_bus("b", width)
    total, carry = carry_select_adder(builder, a, b, block=block)
    builder.output_bus("s", total)
    builder.output("co", carry)
    builder.netlist.validate()
    return builder.netlist
