"""The committed lint baseline: existing debt, ratcheted down.

The baseline is a JSON file listing findings the repository has
accepted *for now*.  A finding matching a baseline entry passes; a
finding not in the baseline fails the run — so new debt cannot enter,
while the committed list can only shrink (``--update-baseline``
rewrites it from what the code actually contains today).

Entries are keyed ``(rule, path, message)`` — deliberately without
line numbers, so unrelated edits that shift a file do not invalidate
the committed debt.  Duplicate keys are counted: two identical
violations in one file need two entries, and fixing one of them drops
the count on the next update.  The file is written deterministically
(sorted entries, sorted keys, trailing newline) so updates diff
cleanly and repeated updates are byte-identical.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.errors import LintError
from repro.lint.findings import Finding

#: Schema version stamped into the baseline file.
BASELINE_VERSION = 1

#: Default baseline file name, looked up beside the linted tree.
BASELINE_FILENAME = "lint-baseline.json"

_Key = Tuple[str, str, str]


class Baseline:
    """The parsed contents of a baseline file (or an empty one)."""

    def __init__(self, entries: Counter):
        self.entries: Counter = entries

    def __len__(self) -> int:
        return sum(self.entries.values())

    @classmethod
    def empty(cls) -> "Baseline":
        """A baseline accepting nothing."""
        return cls(Counter())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        """Read a baseline file; a missing file means an empty baseline."""
        path = Path(path)
        if not path.is_file():
            return cls.empty()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise LintError(f"unreadable baseline {path}: {error}") from error
        if not isinstance(payload, dict) or not isinstance(
            payload.get("findings"), list
        ):
            raise LintError(
                f"not a lint baseline (no 'findings' list): {path}"
            )
        entries: Counter = Counter()
        for entry in payload["findings"]:
            if not isinstance(entry, dict):
                raise LintError(f"malformed baseline entry in {path}: {entry!r}")
            try:
                key = (
                    str(entry["rule"]),
                    str(entry["path"]),
                    str(entry["message"]),
                )
            except KeyError as error:
                raise LintError(
                    f"baseline entry in {path} misses key {error}"
                ) from error
            entries[key] += 1
        return cls(entries)

    def partition(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Split findings into ``(new, baselined)``.

        Each baseline entry absorbs at most its counted number of
        matching findings; anything beyond that is new debt.
        """
        remaining = Counter(self.entries)
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in sorted(findings):
            key = finding.baseline_key()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        return new, baselined

    def stale_entries(
        self, findings: Sequence[Finding]
    ) -> List[Tuple[_Key, int]]:
        """Entries no current finding matches, with surplus counts.

        An entry goes stale when its file was deleted, the violation
        was fixed, or fewer duplicates remain than the baseline
        counts.  ``--update-baseline`` reports and prunes these.
        """
        current = Counter(f.baseline_key() for f in findings)
        stale: List[Tuple[_Key, int]] = []
        for key in sorted(self.entries):
            surplus = self.entries[key] - current.get(key, 0)
            if surplus > 0:
                stale.append((key, surplus))
        return stale

    def stale_count(self, findings: Sequence[Finding]) -> int:
        """Entries no current finding matches — debt already paid off.

        A nonzero count means ``--update-baseline`` would shrink the
        file (the ratchet clicking down).
        """
        return sum(count for _key, count in self.stale_entries(findings))


def write_baseline(
    path: Union[str, Path], findings: Sequence[Finding]
) -> Dict[str, int]:
    """Rewrite the baseline file from the current findings.

    The output is deterministic — entries sorted by (path, rule,
    message), stable JSON — so two updates over identical findings are
    byte-identical.  Returns a small summary (entry count).
    """
    entries = sorted(
        (
            {
                "rule": finding.rule_id,
                "path": finding.path,
                "message": finding.message,
            }
            for finding in findings
        ),
        key=lambda entry: (entry["path"], entry["rule"], entry["message"]),
    )
    payload = {"version": BASELINE_VERSION, "findings": entries}
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    Path(path).write_text(text, encoding="utf-8")
    return {"entries": len(entries)}
