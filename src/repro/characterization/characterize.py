"""Library characterization driver (paper Sec. II + IV).

Three products, all from the same underlying Monte-Carlo draws:

* :meth:`Characterizer.nominal_library` — one library with zero
  variation (the classic .lib);
* :meth:`Characterizer.sample_libraries` — the N distinct libraries of
  paper Sec. IV ("assume that N distinct libraries are created from a
  Monte Carlo sampling"), to be combined by
  :mod:`repro.statlib.builder` exactly as Fig. 2 describes;
* :meth:`Characterizer.statistical_library` — the combined statistical
  library computed directly (vectorized across samples).  This is the
  fast path; the test-suite asserts it matches the Fig. 2 combine of
  :meth:`sample_libraries` bit-for-bit.

Determinism: every cell draws from its own RNG stream keyed by
``(seed, sha256(cell name))``, so the draws of a cell depend only on the
seed and the cell itself — not on which other cells are characterized
alongside it, nor on which process characterizes it.  That per-cell
keying is what makes the :mod:`repro.parallel` fan-out bit-identical to
the serial path: a worker handed any chunk of cells regenerates exactly
the draws the serial loop would have used.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.catalog import SEQUENTIAL_SETUP_TIME, CellSpec
from repro.characterization.delaymodel import GateDelayModel
from repro.characterization.devices import CellElectricalView, network_geometry
from repro.characterization.grids import GridConfig, load_grid, slew_grid
from repro.errors import CharacterizationError, ReproError
from repro.kernels.dispatch import resolve_kernel
from repro.observe import get_tracer
from repro.observe.catalog import (
    CHARACTERIZE_CELLS,
    CHARACTERIZE_MC_SAMPLES,
)
from repro.liberty.model import (
    Cell,
    Library,
    Lut,
    LutTemplate,
    OperatingConditions,
    Pin,
    PinDirection,
    TimingArc,
)
from repro.variation.montecarlo import GlobalSigmas
from repro.variation.pelgrom import PelgromModel
from repro.variation.process import Corner, TechnologyParams, typical_corner

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.backends import ExecutorBackend
    from repro.parallel.cache import LibraryCache

#: Per-arc local draws: array of shape (4, N) holding
#: (dvth_rise, dbeta_rise, dvth_fall, dbeta_fall) for N samples.
ArcDraws = np.ndarray
#: Per-cell draws keyed by (input_pin, output_pin).
CellDraws = Dict[Tuple[str, str], ArcDraws]

#: Cells characterized in this process (all modes).  Worker processes
#: count their own work; a cache hit performs zero characterizations.
_characterize_calls = 0


def characterization_call_count() -> int:
    """Number of :meth:`Characterizer.characterize_cell` calls so far.

    The counter is per-process and cumulative; tests use it (after
    :func:`reset_characterization_call_count`) to assert that a warm
    cache performs zero re-characterization.
    """
    return _characterize_calls


def reset_characterization_call_count() -> None:
    """Reset the per-process characterization call counter to zero."""
    global _characterize_calls
    _characterize_calls = 0


def cell_rng(seed: int, cell_name: str) -> np.random.Generator:
    """The dedicated RNG stream of one cell.

    Streams are keyed by ``(seed, sha256(cell name))``, making each
    cell's draws independent of catalog slicing, ordering and of the
    process that generates them — the determinism contract of the
    parallel characterization layer.
    """
    digest = hashlib.sha256(cell_name.encode("utf-8")).digest()[:8]
    name_key = int.from_bytes(digest, "little")
    return np.random.default_rng(np.random.SeedSequence([seed, name_key]))


@dataclass(frozen=True)
class GlobalDraws:
    """Die-level draws shared by all cells, one entry per sample."""

    dvth: np.ndarray
    dbeta: np.ndarray
    dlength_rel: np.ndarray

    @staticmethod
    def zeros(n_samples: int) -> "GlobalDraws":
        """All-zero draws (no inter-die variation) for N samples."""
        zero = np.zeros(n_samples)
        return GlobalDraws(zero, zero.copy(), zero.copy())

    def sample(self, k: int) -> "GlobalDraws":
        """The length-1 slice holding only sample ``k``."""
        return GlobalDraws(
            dvth=self.dvth[k : k + 1],
            dbeta=self.dbeta[k : k + 1],
            dlength_rel=self.dlength_rel[k : k + 1],
        )


class Characterizer:
    """Characterizes catalog cells into Liberty libraries."""

    def __init__(
        self,
        tech: Optional[TechnologyParams] = None,
        corner: Optional[Corner] = None,
        pelgrom: Optional[PelgromModel] = None,
        grid: Optional[GridConfig] = None,
        global_sigmas: Optional[GlobalSigmas] = None,
        include_power: bool = False,
        cache: Optional["LibraryCache"] = None,
        n_workers: int = 1,
        kernel: Optional[str] = None,
        backend: Optional[str] = None,
    ):
        self.base_tech = tech or TechnologyParams()
        self.corner = corner or typical_corner()
        self.tech = self.corner.apply(self.base_tech)
        self.pelgrom = pelgrom or PelgromModel()
        self.grid = grid or GridConfig()
        self.global_sigmas = global_sigmas or GlobalSigmas()
        self.model = GateDelayModel(self.tech)
        #: When set, arcs also get switching-energy (and, for the
        #: statistical library, energy-sigma) tables.
        self.include_power = include_power
        #: Optional :class:`~repro.parallel.cache.LibraryCache`; when
        #: set, library-level drivers memoize their results on disk.
        self.cache = cache
        #: Default worker count of the library-level drivers
        #: (1 = serial, 0 = one per CPU; see ``repro.parallel``).
        #: Validated eagerly so a bad ``--jobs`` fails even when the
        #: cache would otherwise short-circuit all characterization.
        if n_workers < 0:
            raise ReproError(f"n_workers must be >= 0, got {n_workers}")
        self.n_workers = n_workers
        #: Execution backend of the library-level drivers (``serial``,
        #: ``process`` or ``queue``; ``None`` = the default backend —
        #: see :mod:`repro.parallel.backends`).  Results are
        #: bit-identical on every backend, so the choice never enters
        #: cache keys.  Validated eagerly so a bad ``--backend`` fails
        #: even when the cache short-circuits all characterization.
        if backend is not None:
            from repro.parallel.backends import validate_backend

            validate_backend(backend)
        self.backend = backend
        #: Evaluation kernel (see :mod:`repro.kernels`): ``"vectorized"``
        #: batches all samples and grid points per arc, ``"scalar"`` is
        #: the per-point reference.  Bit-identical results either way,
        #: so the choice never enters the characterization cache key.
        #: ``None`` adopts the process-wide active kernel; validated
        #: eagerly so a bad ``--kernel`` fails loudly.
        self.kernel = resolve_kernel(kernel)
        if include_power:
            from repro.characterization.power import PowerModel

            self.power_model = PowerModel(self.tech)

    # ------------------------------------------------------------------
    # Monte-Carlo draws
    # ------------------------------------------------------------------

    def sample_arc_draws(
        self, specs: Sequence[CellSpec], n_samples: int, seed: int
    ) -> Dict[str, CellDraws]:
        """Draw the local-mismatch samples for every cell arc.

        The returned structure is the single source of randomness for
        both the per-sample libraries and the direct statistical
        library, which is what makes the two paths agree exactly.  Each
        cell draws from its own :func:`cell_rng` stream, so any subset
        of cells — in any process — reproduces the same draws.
        """
        if n_samples < 2:
            raise CharacterizationError("need at least 2 Monte-Carlo samples")
        get_tracer().add("characterize.mc_samples", n_samples * len(specs))
        CHARACTERIZE_MC_SAMPLES.inc(n_samples * len(specs))
        draws: Dict[str, CellDraws] = {}
        for spec in specs:
            rng = cell_rng(seed, spec.name)
            cell_draws: CellDraws = {}
            for input_pin, output_pin in spec.function.arcs():
                drive = spec.drive(output_pin)
                geo_up = network_geometry(self.tech, spec, drive, rise=True)
                geo_down = network_geometry(self.tech, spec, drive, rise=False)
                sigma = np.array([
                    self.pelgrom.sigma_vth_stack(geo_up.width, geo_up.length, geo_up.stack),
                    self.pelgrom.sigma_beta_rel_stack(geo_up.width, geo_up.length, geo_up.stack),
                    self.pelgrom.sigma_vth_stack(
                        geo_down.width, geo_down.length, geo_down.stack
                    ),
                    self.pelgrom.sigma_beta_rel_stack(
                        geo_down.width, geo_down.length, geo_down.stack
                    ),
                ])
                cell_draws[(input_pin, output_pin)] = (
                    rng.standard_normal((4, n_samples)) * sigma[:, None]
                )
            draws[spec.name] = cell_draws
        return draws

    def sample_global_draws(self, n_samples: int, seed: int) -> GlobalDraws:
        """Draw die-level (inter-die) variation, one per sample."""
        rng = np.random.default_rng(seed)
        sigmas = self.global_sigmas
        return GlobalDraws(
            dvth=rng.normal(0.0, sigmas.vth, n_samples),
            dbeta=rng.normal(0.0, sigmas.beta_rel, n_samples),
            dlength_rel=rng.normal(0.0, sigmas.length_rel, n_samples),
        )

    # ------------------------------------------------------------------
    # Cell-level characterization
    # ------------------------------------------------------------------

    def _arc_tensors(
        self,
        spec: CellSpec,
        output_pin: str,
        draws: Optional[ArcDraws],
        global_draws: Optional[GlobalDraws],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(rise delay, fall delay, rise transition, fall transition).

        With draws of N samples the tensors have shape (N, n_s, n_l);
        with ``draws=None`` (nominal) they are (n_s, n_l).  The
        ``"vectorized"`` kernel evaluates each tensor as one broadcast
        surrogate call; the ``"scalar"`` reference evaluates per
        (sample, grid point) — bit-identical by IEEE-754 elementwise
        semantics (see :mod:`repro.kernels`).
        """
        slew_axis = slew_grid(self.grid)
        load_axis = load_grid(self.grid, spec)
        dvth_r: np.ndarray | float
        dbeta_r: np.ndarray | float
        dvth_f: np.ndarray | float
        dbeta_f: np.ndarray | float
        dlen: np.ndarray | float
        if draws is None:
            dvth_r = dbeta_r = dvth_f = dbeta_f = 0.0
            dlen = 0.0
        else:
            dvth_r, dbeta_r = draws[0], draws[1]
            dvth_f, dbeta_f = draws[2], draws[3]
            dlen = 0.0
            if global_draws is not None:
                dvth_r = dvth_r + global_draws.dvth
                dvth_f = dvth_f + global_draws.dvth
                dbeta_r = dbeta_r + global_draws.dbeta
                dbeta_f = dbeta_f + global_draws.dbeta
                dlen = global_draws.dlength_rel
        if self.kernel == "scalar":
            # Deferred: kernels.characterization imports this package's
            # delay/power models, so a module-level import would cycle.
            from repro.kernels.characterization import scalar_arc_tables

            rise = scalar_arc_tables(
                self.model, spec, output_pin, True, slew_axis, load_axis,
                dvth=dvth_r, dbeta=dbeta_r, dlength_rel=dlen,
            )
            fall = scalar_arc_tables(
                self.model, spec, output_pin, False, slew_axis, load_axis,
                dvth=dvth_f, dbeta=dbeta_f, dlength_rel=dlen,
            )
            return rise.delay, fall.delay, rise.transition, fall.transition

        def lift(value: np.ndarray | float) -> np.ndarray | float:
            """Scalars pass through; (N,) vectors gain the grid axes."""
            return value if np.ndim(value) == 0 else np.asarray(value)[:, None, None]

        rise = self.model.arc_tables(
            spec, output_pin, rise=True,
            slews=slew_axis[:, None], loads=load_axis[None, :],
            dvth=lift(dvth_r), dbeta=lift(dbeta_r), dlength_rel=lift(dlen),
        )
        fall = self.model.arc_tables(
            spec, output_pin, rise=False,
            slews=slew_axis[:, None], loads=load_axis[None, :],
            dvth=lift(dvth_f), dbeta=lift(dbeta_f), dlength_rel=lift(dlen),
        )
        return rise.delay, fall.delay, rise.transition, fall.transition

    def _make_cell_shell(self, spec: CellSpec) -> Cell:
        """Cell with pins/areas/metadata but no timing tables yet."""
        cell = Cell(
            name=spec.name,
            area=spec.area,
            is_sequential=spec.is_sequential,
            is_latch=spec.function.is_latch,
            clock_pin=spec.function.clock_pin,
            setup_time=SEQUENTIAL_SETUP_TIME if spec.is_sequential else 0.0,
        )
        view = CellElectricalView(spec, self.tech)
        for pin_name in spec.function.input_pins:
            cell.add_pin(Pin(
                name=pin_name,
                direction=PinDirection.INPUT,
                capacitance=view.input_capacitance(pin_name),
                is_clock=pin_name == spec.function.clock_pin,
            ))
        for pin_name in spec.function.output_pins:
            cell.add_pin(Pin(
                name=pin_name,
                direction=PinDirection.OUTPUT,
                function=spec.function.expressions.get(pin_name, ""),
                max_capacitance=spec.max_load,
            ))
        return cell

    def characterize_cell(
        self,
        spec: CellSpec,
        draws: Optional[CellDraws] = None,
        sample_index: Optional[int] = None,
        global_draws: Optional[GlobalDraws] = None,
        statistical: bool = False,
    ) -> Cell:
        """Characterize one cell.

        * ``draws=None`` — nominal tables.
        * ``draws + sample_index`` — tables of one Monte-Carlo sample.
        * ``draws + statistical=True`` — mean tables in cell_rise/fall,
          per-entry standard deviation in sigma_rise/fall (paper Fig. 2).
        """
        global _characterize_calls
        _characterize_calls += 1
        tracer = get_tracer()
        tracer.add("characterize.cells", 1)
        CHARACTERIZE_CELLS.inc()
        with tracer.span("characterize.cell", cell=spec.name):
            return self._characterize_cell(
                spec, draws, sample_index, global_draws, statistical
            )

    def _characterize_cell(
        self,
        spec: CellSpec,
        draws: Optional[CellDraws],
        sample_index: Optional[int],
        global_draws: Optional[GlobalDraws],
        statistical: bool,
    ) -> Cell:
        cell = self._make_cell_shell(spec)
        slews = slew_grid(self.grid)
        loads = load_grid(self.grid, spec)
        template = f"tmpl_{self.grid.n_slew}x{self.grid.n_load}"

        def lut(values: np.ndarray) -> Lut:
            return Lut(slews, loads, values, template=template)

        for input_pin, output_pin in spec.function.arcs():
            arc_draws = None if draws is None else draws[(input_pin, output_pin)]
            if arc_draws is not None and sample_index is not None:
                arc_draws = arc_draws[:, sample_index : sample_index + 1]
            rise_d, fall_d, rise_t, fall_t = self._arc_tensors(
                spec, output_pin, arc_draws, global_draws
            )
            arc = TimingArc(
                related_pin=input_pin,
                timing_sense=spec.function.sense(input_pin, output_pin),
            )
            if draws is None:
                arc.cell_rise = lut(rise_d)
                arc.cell_fall = lut(fall_d)
                arc.rise_transition = lut(rise_t)
                arc.fall_transition = lut(fall_t)
            elif statistical:
                arc.cell_rise = lut(rise_d.mean(axis=0))
                arc.cell_fall = lut(fall_d.mean(axis=0))
                arc.rise_transition = lut(rise_t.mean(axis=0))
                arc.fall_transition = lut(fall_t.mean(axis=0))
                arc.sigma_rise = lut(rise_d.std(axis=0, ddof=1))
                arc.sigma_fall = lut(fall_d.std(axis=0, ddof=1))
            else:
                if sample_index is None:
                    raise CharacterizationError(
                        "sample characterization needs a sample_index"
                    )
                arc.cell_rise = lut(rise_d[0])
                arc.cell_fall = lut(fall_d[0])
                arc.rise_transition = lut(rise_t[0])
                arc.fall_transition = lut(fall_t[0])
            if self.include_power:
                self._attach_power(
                    arc, spec, output_pin, arc_draws, statistical, lut
                )
            cell.pin(output_pin).timing.append(arc)
        return cell

    def _energy_tensors(
        self, spec: CellSpec, output_pin: str, arc_draws: Optional[ArcDraws]
    ) -> Dict[bool, np.ndarray]:
        """Switching-energy tensors keyed by rise/fall, kernel-dispatched.

        Shapes follow :meth:`_arc_tensors`: (n_s, n_l) nominal,
        (N, n_s, n_l) with draws.
        """
        slew_axis = slew_grid(self.grid)
        load_axis = load_grid(self.grid, spec)
        energies: Dict[bool, np.ndarray] = {}
        for rise, vth_row, beta_row in (
            (True, 0, 1),
            (False, 2, 3),
        ):
            if arc_draws is None:
                dvth: np.ndarray | float = 0.0
                dbeta: np.ndarray | float = 0.0
            else:
                dvth = arc_draws[vth_row]
                dbeta = arc_draws[beta_row]
            if self.kernel == "scalar":
                # Deferred for the same import-cycle reason as above.
                from repro.kernels.characterization import scalar_arc_energy

                energies[rise] = scalar_arc_energy(
                    self.power_model, spec, output_pin, rise,
                    slew_axis, load_axis, dvth=dvth, dbeta=dbeta,
                )
            else:
                energies[rise] = self.power_model.arc_energy(
                    spec, output_pin, rise,
                    slew_axis[:, None], load_axis[None, :],
                    dvth=dvth if np.ndim(dvth) == 0 else np.asarray(dvth)[:, None, None],
                    dbeta=dbeta if np.ndim(dbeta) == 0 else np.asarray(dbeta)[:, None, None],
                )
        return energies

    def _attach_power(
        self, arc, spec, output_pin, arc_draws, statistical, lut
    ) -> None:
        """Add switching-energy tables to an arc (see ``include_power``)."""
        energies = self._energy_tensors(spec, output_pin, arc_draws)
        if arc_draws is None:
            arc.power_rise = lut(energies[True])
            arc.power_fall = lut(energies[False])
        elif statistical:
            arc.power_rise = lut(energies[True].mean(axis=0))
            arc.power_fall = lut(energies[False].mean(axis=0))
            arc.sigma_power_rise = lut(energies[True].std(axis=0, ddof=1))
            arc.sigma_power_fall = lut(energies[False].std(axis=0, ddof=1))
        else:
            arc.power_rise = lut(energies[True][0])
            arc.power_fall = lut(energies[False][0])

    # ------------------------------------------------------------------
    # Library-level drivers
    # ------------------------------------------------------------------

    def _make_library_shell(self, name: str) -> Library:
        library = Library(
            name=name,
            operating_conditions=OperatingConditions(
                name=self.corner.name,
                voltage=self.corner.voltage,
                temperature=self.corner.temperature,
            ),
        )
        library.add_template(LutTemplate(name=f"tmpl_{self.grid.n_slew}x{self.grid.n_load}"))
        return library

    def nominal_library(
        self, specs: Sequence[CellSpec], name: Optional[str] = None
    ) -> Library:
        """The nominal (zero-variation) library at this corner."""
        library = self._make_library_shell(name or self.corner.name)
        for spec in specs:
            library.add_cell(self.characterize_cell(spec))
        return library

    def library_shell(self, name: str) -> Library:
        """Public access to the empty library skeleton (used by the
        on-disk cache to rebuild libraries from stored LUT arrays)."""
        return self._make_library_shell(name)

    def cell_from_tables(
        self,
        spec: CellSpec,
        tables: Dict[Tuple[str, str], Dict[str, np.ndarray]],
    ) -> Cell:
        """Rebuild a characterized cell from precomputed LUT values.

        ``tables`` maps each ``(input_pin, output_pin)`` arc to a dict
        of LUT-slot name (``cell_rise``, ``sigma_fall``, ...) to value
        array.  Used by :mod:`repro.parallel.cache` to reconstruct
        libraries without re-running the delay model; the cell shell
        (pins, capacitances, areas) is rebuilt from the spec, which is
        cheap and keeps the cache file down to the arrays themselves.
        """
        cell = self._make_cell_shell(spec)
        slews = slew_grid(self.grid)
        loads = load_grid(self.grid, spec)
        template = f"tmpl_{self.grid.n_slew}x{self.grid.n_load}"
        for input_pin, output_pin in spec.function.arcs():
            arc = TimingArc(
                related_pin=input_pin,
                timing_sense=spec.function.sense(input_pin, output_pin),
            )
            for slot, values in tables[(input_pin, output_pin)].items():
                setattr(arc, slot, Lut(slews, loads, values, template=template))
            cell.pin(output_pin).timing.append(arc)
        return cell

    def _sample_table_stacks(
        self,
        spec: CellSpec,
        draws: CellDraws,
        global_draws: Optional[GlobalDraws],
    ) -> Dict[Tuple[str, str], Dict[str, np.ndarray]]:
        """Per-arc LUT-slot stacks over the full sample axis.

        One tensor evaluation per arc covers every Monte-Carlo sample;
        slicing ``stack[k]`` reproduces the per-sample tables bit for
        bit (elementwise arithmetic is shape-independent).
        """
        stacks: Dict[Tuple[str, str], Dict[str, np.ndarray]] = {}
        for input_pin, output_pin in spec.function.arcs():
            arc_draws = draws[(input_pin, output_pin)]
            rise_d, fall_d, rise_t, fall_t = self._arc_tensors(
                spec, output_pin, arc_draws, global_draws
            )
            slots = {
                "cell_rise": rise_d,
                "cell_fall": fall_d,
                "rise_transition": rise_t,
                "fall_transition": fall_t,
            }
            if self.include_power:
                energies = self._energy_tensors(spec, output_pin, arc_draws)
                slots["power_rise"] = energies[True]
                slots["power_fall"] = energies[False]
            stacks[(input_pin, output_pin)] = slots
        return stacks

    def characterize_cell_samples(
        self,
        spec: CellSpec,
        draws: CellDraws,
        sample_indices: Sequence[int],
        global_draws: Optional[GlobalDraws] = None,
    ) -> List[Cell]:
        """One spec's cells for many Monte-Carlo samples at once.

        The vectorized kernel evaluates the full (N, slew, load) tensor
        of every arc once and slices per sample — the batched
        replacement for the per-``k`` :meth:`characterize_cell` loop,
        bit-identical to it (``tests/kernels``).  The scalar kernel
        keeps the honest per-sample loop.  ``sample_indices`` are
        absolute indices into the draws' sample axis.
        """
        if self.kernel != "vectorized":
            return [
                self.characterize_cell(
                    spec,
                    draws=draws,
                    sample_index=k,
                    global_draws=(
                        None if global_draws is None else global_draws.sample(k)
                    ),
                )
                for k in sample_indices
            ]
        global _characterize_calls
        _characterize_calls += len(sample_indices)
        tracer = get_tracer()
        tracer.add("characterize.cells", len(sample_indices))
        CHARACTERIZE_CELLS.inc(len(sample_indices))
        with tracer.span(
            "characterize.cell_samples",
            cell=spec.name,
            n_samples=len(sample_indices),
        ):
            stacks = self._sample_table_stacks(spec, draws, global_draws)
            return [
                self.cell_from_tables(
                    spec,
                    {
                        arc: {slot: stack[k] for slot, stack in slots.items()}
                        for arc, slots in stacks.items()
                    },
                )
                for k in sample_indices
            ]

    def sample_libraries(
        self,
        specs: Sequence[CellSpec],
        n_samples: int,
        seed: int = 0,
        include_global: bool = False,
        n_workers: Optional[int] = None,
        use_cache: bool = True,
    ) -> List[Library]:
        """The N distinct Monte-Carlo libraries of paper Sec. IV.

        ``n_workers`` overrides the characterizer's default worker
        count (1 = serial, 0 = one per CPU); any parallel schedule is
        bit-identical to the serial path because each cell's draws come
        from its own seeded stream.  With a cache attached and
        ``use_cache`` left on, results are memoized on disk.
        """
        tracer = get_tracer()
        with tracer.span(
            "characterize.samples", n_cells=len(specs), n_samples=n_samples
        ) as span:
            if use_cache and self.cache is not None:
                cached = self.cache.load_samples(
                    self, specs, n_samples, seed, include_global
                )
                if cached is not None:
                    span.set(status="hit")
                    tracer.add("store.library.hit", 1)
                    return cached
                tracer.add("store.library.miss", 1)
                span.set(status="miss")
            return self._compute_sample_libraries(
                specs, n_samples, seed, include_global, n_workers, use_cache
            )

    def _compute_sample_libraries(
        self,
        specs: Sequence[CellSpec],
        n_samples: int,
        seed: int,
        include_global: bool,
        n_workers: Optional[int],
        use_cache: bool,
    ) -> List[Library]:
        backend = self._resolve_backend(n_workers)
        global_draws = (
            self.sample_global_draws(n_samples, seed + 1) if include_global else None
        )
        if not backend.in_process:
            from repro.parallel.executor import characterize_sample_cells

            cells = characterize_sample_cells(
                self, specs, n_samples, seed, global_draws, backend=backend
            )
        else:
            draws = self.sample_arc_draws(specs, n_samples, seed)
            columns = [
                self.characterize_cell_samples(
                    spec, draws[spec.name], range(n_samples), global_draws
                )
                for spec in specs
            ]
            cells = [
                [column[k] for column in columns] for k in range(n_samples)
            ]
        libraries: List[Library] = []
        for k in range(n_samples):
            library = self._make_library_shell(f"{self.corner.name}_mc{k:03d}")
            for cell in cells[k]:
                library.add_cell(cell)
            libraries.append(library)
        if use_cache and self.cache is not None:
            self.cache.store_samples(self, specs, n_samples, seed, include_global, libraries)
        return libraries

    def statistical_library(
        self,
        specs: Sequence[CellSpec],
        n_samples: int = 50,
        seed: int = 0,
        include_global: bool = False,
        name: Optional[str] = None,
        n_workers: Optional[int] = None,
        use_cache: bool = True,
    ) -> Library:
        """The statistical library, computed directly (fast path).

        Numerically identical to running :meth:`sample_libraries` with
        the same arguments and combining them via
        :func:`repro.statlib.builder.build_statistical_library`.
        ``n_workers`` fans the per-cell work out over processes with
        bit-identical results; with a cache attached the combined
        mean/sigma arrays are memoized on disk and a warm hit skips
        characterization entirely.
        """
        tracer = get_tracer()
        with tracer.span(
            "characterize.statistical", n_cells=len(specs), n_samples=n_samples
        ) as span:
            if use_cache and self.cache is not None:
                cached = self.cache.load_statistical(
                    self, specs, n_samples, seed, include_global, name
                )
                if cached is not None:
                    span.set(status="hit")
                    tracer.add("store.library.hit", 1)
                    return cached
                tracer.add("store.library.miss", 1)
                span.set(status="miss")
            return self._compute_statistical_library(
                specs, n_samples, seed, include_global, name, n_workers, use_cache
            )

    def _compute_statistical_library(
        self,
        specs: Sequence[CellSpec],
        n_samples: int,
        seed: int,
        include_global: bool,
        name: Optional[str],
        n_workers: Optional[int],
        use_cache: bool,
    ) -> Library:
        backend = self._resolve_backend(n_workers)
        global_draws = (
            self.sample_global_draws(n_samples, seed + 1) if include_global else None
        )
        if not backend.in_process:
            from repro.parallel.executor import characterize_statistical_cells

            cells = characterize_statistical_cells(
                self, specs, n_samples, seed, global_draws, backend=backend
            )
        else:
            draws = self.sample_arc_draws(specs, n_samples, seed)
            cells = [
                self.characterize_cell(
                    spec,
                    draws=draws[spec.name],
                    global_draws=global_draws,
                    statistical=True,
                )
                for spec in specs
            ]
        library = self._make_library_shell(name or f"{self.corner.name}_stat")
        library.is_statistical = True
        for cell in cells:
            library.add_cell(cell)
        if use_cache and self.cache is not None:
            self.cache.store_statistical(
                self, specs, n_samples, seed, include_global, library
            )
        return library

    def _resolve_jobs(self, n_workers: Optional[int]) -> int:
        from repro.parallel import resolve_jobs

        return resolve_jobs(self.n_workers if n_workers is None else n_workers)

    def _resolve_backend(self, n_workers: Optional[int]) -> "ExecutorBackend":
        """The concrete backend of one library-level driver call.

        A single resolved worker on the default (process) backend
        degrades to the serial backend — no pool is ever spawned for
        one worker's worth of work (see :func:`repro.parallel.
        backends.resolve_backend`).
        """
        from repro.parallel.backends import resolve_backend

        return resolve_backend(self.backend, self._resolve_jobs(n_workers))
