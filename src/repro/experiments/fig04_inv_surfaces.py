"""Fig. 4 — sigma LUT surfaces of an inverter across drive strengths.

The paper's observations, reproduced quantitatively:

* the load range widens with drive strength;
* the slew range is identical for every strength;
* higher drive strength -> lower overall sigma ("the surface stays
  low") and a lower gradient.
"""

from __future__ import annotations

import numpy as np

from repro.core.slope import load_slope_table, slew_slope_table
from repro.experiments.base import ExperimentContext, ExperimentResult

#: Paper Fig. 4 shows INV_1 .. INV_32-class strengths.
STRENGTHS = ("INV_1", "INV_2", "INV_4", "INV_8", "INV_16", "INV_32")


def run(context: ExperimentContext) -> ExperimentResult:
    """Build this experiment's rows (see the module docstring)."""
    library = context.flow.statistical_library
    rows = []
    for name in STRENGTHS:
        arc = library.cell(name).pin("Z").arc_from("A")
        sigma = arc.sigma_fall
        gradient = np.maximum(
            np.abs(slew_slope_table(sigma.values)),
            np.abs(load_slope_table(sigma.values)),
        )
        rows.append({
            "cell": name,
            "load_max_pF": float(sigma.index_2[-1]),
            "slew_max_ns": float(sigma.index_1[-1]),
            "sigma_min": float(sigma.values.min()),
            "sigma_max": float(sigma.values.max()),
            "grad_max": float(gradient.max()),
        })
    sigma_drop = rows[0]["sigma_max"] / rows[-1]["sigma_max"]
    slew_shared = len({r["slew_max_ns"] for r in rows}) == 1
    return ExperimentResult(
        experiment_id="fig04",
        title="INV sigma surfaces vs drive strength",
        rows=rows,
        notes=(
            f"sigma_max(INV_1)/sigma_max(INV_32) = {sigma_drop:.1f}x; "
            f"shared slew axis: {slew_shared}; load range scales with strength"
        ),
    )
