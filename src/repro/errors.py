"""Exception hierarchy for the repro package.

Every error raised by the package derives from :class:`ReproError`, so
callers embedding the library can catch a single base class.  Subclasses
are scoped per subsystem and carry enough context in their message to be
actionable without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class LibertyError(ReproError):
    """Problems in the Liberty (.lib) substrate."""


class LibertyParseError(LibertyError):
    """Raised when a .lib file cannot be tokenized or parsed.

    Carries the 1-based ``line`` where the problem was detected.
    """

    def __init__(self, message: str, line: int = 0):
        self.line = line
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)


class LutError(LibertyError):
    """Raised for malformed look-up tables or invalid LUT operations."""


class CharacterizationError(ReproError):
    """Raised when cell characterization cannot proceed."""


class CatalogError(ReproError):
    """Raised for unknown cells or malformed cell names in the catalog."""


class NetlistError(ReproError):
    """Raised for structurally invalid netlists (dangling nets, cycles...)."""


class TimingError(ReproError):
    """Raised by the STA engine (unconstrained graphs, missing arcs...)."""


class SynthesisError(ReproError):
    """Raised when synthesis cannot map or legalize a design."""


class TuningError(ReproError):
    """Raised by the library-tuning core (bad thresholds, empty regions...)."""


class VariationError(ReproError):
    """Raised by the process-variation substrate."""


class ConfigError(ReproError):
    """Raised for invalid execution configuration.

    Covers malformed environment knobs (``REPRO_SCALE``, ``REPRO_JOBS``)
    and invalid :class:`~repro.flow.experiment.FlowConfig` values — a
    typo must fail loudly instead of silently falling back to defaults.
    """


class ObservabilityError(ReproError):
    """Raised by the tracing/metrics layer (:mod:`repro.observe`)."""


class ServeError(ReproError):
    """Raised by the tuning service (:mod:`repro.serve`).

    Covers transport and protocol failures — a malformed HTTP exchange,
    an unreachable server, a response the client cannot decode.  Request
    *validation* problems raise :class:`RequestError` instead.
    """


class RequestError(ServeError):
    """Raised for an invalid service request payload.

    The serve schema (:mod:`repro.serve.schema`) validates strictly —
    wrong schema version, unknown kind, missing or mistyped fields,
    unrecognized extra fields — and every violation raises this type so
    the server can map it to a structured 400 response (never a
    traceback).
    """


class ServerBusyError(ServeError):
    """Raised when the service's dispatch queue is full.

    The bounded backpressure signal: the server maps it to a 429
    response, and the client surfaces it so callers can retry later
    instead of piling more work onto a saturated worker pool.
    """


class LintError(ReproError):
    """Raised by the static-analysis layer (:mod:`repro.lint`).

    Covers unusable inputs — an unreadable or malformed baseline file,
    a scan root that does not exist — not findings: rule violations
    are reported as data, never as exceptions.
    """
